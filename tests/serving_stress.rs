//! Concurrency stress: many clients hammer one served engine with a mixed
//! ad-hoc/prepared workload while the catalog mutates mid-flight. The
//! correctness contract under test is snapshot isolation at the statement
//! level — every result equals the quotient of *some* complete catalog
//! state, never a mix of two.

use div_algebra::{Relation, Value};
use div_datagen::scenarios::{generate, ScenarioConfig, ScenarioFamily};
use div_server::{Client, ClientError, ErrorCode, RetryPolicy, Server, ServerConfig};
use div_sql::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const ITERATIONS: usize = 25;

fn sorted_rows(relation: &Relation) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = relation.tuples().map(|t| t.values().to_vec()).collect();
    rows.sort();
    rows
}

fn relation_rows(relation: &Relation) -> Vec<Vec<Value>> {
    relation.tuples().map(|t| t.values().to_vec()).collect()
}

/// Run one workload iteration, retrying the retryable wire errors (`BUSY`,
/// plus `STALE_PLAN` for the unlucky schedule where the catalog moves again
/// between a session's transparent re-prepare and its execution).
fn run_with_retry(
    mut attempt: impl FnMut() -> Result<Vec<Vec<Value>>, ClientError>,
) -> Vec<Vec<Value>> {
    for _ in 0..50 {
        match attempt() {
            Ok(rows) => return rows,
            Err(err) if err.is_retryable() => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(ClientError::Server {
                code: Some(div_server::ErrorCode::StalePlan),
                ..
            }) => {}
            Err(other) => panic!("workload failed: {other}"),
        }
    }
    panic!("no successful attempt in 50 tries");
}

#[test]
fn concurrent_clients_survive_catalog_mutations_without_torn_results() {
    let data = generate(&ScenarioConfig {
        family: ScenarioFamily::Rbac,
        entities: 60,
        items: 12,
        membership: 0.6,
        full_entities: 0.2,
        null_density: 0.0,
        ..ScenarioConfig::default()
    });
    let names = data.names();
    let sql = data.small_divide_sql();

    // The two catalog states the mutator flips between, and the exact
    // quotient each implies (computed against the reference algebra).
    let divisor_a = data.divisor.clone();
    let divisor_b = Relation::from_rows(
        [names.item_column],
        vec![vec![Value::from("role0")], vec![Value::from("role1")]],
    )
    .unwrap();
    let expected_a = sorted_rows(&data.dividend.divide(&divisor_a).unwrap());
    let expected_b = sorted_rows(&data.dividend.divide(&divisor_b).unwrap());
    assert_ne!(
        expected_a, expected_b,
        "the two states must be distinguishable for the test to mean anything"
    );

    let engine = Arc::new(Engine::new(data.catalog()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: CLIENTS + 4,
            queue_depth: CLIENTS * 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Mutator: flip the divisor table between the two known states through
    // the wire protocol, as fast as the server accepts it.
    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let stop = Arc::clone(&stop);
        let rows_a = relation_rows(&divisor_a);
        let rows_b = relation_rows(&divisor_b);
        let divisor_table = names.divisor_table;
        let item_column = names.item_column;
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("mutator connects");
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rows = if flips.is_multiple_of(2) {
                    &rows_b
                } else {
                    &rows_a
                };
                client
                    .register(divisor_table, &[item_column], rows)
                    .expect("mutation accepted");
                flips += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            // Leave the catalog in state A so post-join assertions are
            // deterministic.
            client
                .register(divisor_table, &[item_column], &rows_a)
                .expect("final mutation accepted");
            let _ = client.close();
            flips
        })
    };

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let sql = sql.clone();
            let (expected_a, expected_b) = (expected_a.clone(), expected_b.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let prepared = i % 2 == 1;
                if prepared {
                    client.prepare("workload", &sql).expect("prepare succeeds");
                }
                for _ in 0..ITERATIONS {
                    let rows = run_with_retry(|| {
                        let result = if prepared {
                            client.execute("workload", &[])?
                        } else {
                            client.query(&sql)?
                        };
                        let mut rows = result.rows;
                        rows.sort();
                        Ok(rows)
                    });
                    assert!(
                        rows == expected_a || rows == expected_b,
                        "torn result: {} rows matches neither state ({} / {} expected)",
                        rows.len(),
                        expected_a.len(),
                        expected_b.len()
                    );
                }
                let _ = client.close();
            })
        })
        .collect();

    for worker in workers {
        worker.join().expect("client thread");
    }
    stop.store(true, Ordering::Relaxed);
    let flips = mutator.join().expect("mutator thread");
    assert!(flips > 0, "the mutator actually ran");

    // Deterministic transparent-replan check: prepare, mutate, execute.
    let mut client = Client::connect(addr).unwrap();
    client.prepare("after", &sql).unwrap();
    client
        .register(
            names.divisor_table,
            &[names.item_column],
            &relation_rows(&divisor_b),
        )
        .unwrap();
    let result = client.execute("after", &[]).unwrap();
    let mut rows = result.rows;
    rows.sort();
    assert_eq!(
        rows, expected_b,
        "the session re-prepared against the mutated catalog"
    );
    let replans = server.metrics().stale_replans.load(Ordering::Relaxed);
    assert!(replans >= 1, "at least the deterministic replan: {replans}");

    // The engine saw real concurrency: every client iteration executed.
    let snapshot = engine.metrics();
    assert!(
        snapshot.queries_executed >= (CLIENTS * ITERATIONS) as u64,
        "queries_executed = {}",
        snapshot.queries_executed
    );
    client.close().unwrap();
    server.shutdown();
}

/// Two 1500-row tables whose cross product (2.25M rows) takes long enough
/// to stream that governance limits reliably trip mid-flight.
fn runaway_engine() -> Arc<Engine> {
    let mut catalog = div_expr::Catalog::new();
    let rows = |n: i64| (0..n).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>();
    catalog.register("l", Relation::from_rows(["a"], rows(1500)).unwrap());
    catalog.register("r", Relation::from_rows(["b"], rows(1500)).unwrap());
    Arc::new(Engine::new(catalog))
}

const RUNAWAY: &str = "SELECT a, b FROM l, r";

/// The headline acceptance scenario: a runaway cross product under a 50ms
/// server-default deadline aborts within one batch boundary with the typed
/// `DEADLINE` error, the worker is freed, and a follow-up query on the same
/// connection succeeds.
#[test]
fn runaway_cross_product_aborts_on_deadline_and_frees_the_worker() {
    let server = Server::bind(
        "127.0.0.1:0",
        runaway_engine(),
        ServerConfig {
            workers: 2,
            default_deadline: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let started = Instant::now();
    let err = client.query(RUNAWAY).unwrap_err();
    let elapsed = started.elapsed();
    match &err {
        ClientError::Server {
            code: Some(ErrorCode::Deadline),
            message,
            ..
        } => {
            assert!(message.contains("50ms"), "{message}");
            assert!(message.contains("at operator"), "{message}");
        }
        other => panic!("expected ERR DEADLINE, got {other}"),
    }
    assert!(!err.is_retryable(), "deadline aborts are not retryable");
    // "Within one batch boundary" at wire scale: the 2.25M-row product
    // takes far longer than this to stream in full.
    assert!(
        elapsed < Duration::from_secs(5),
        "aborted after {elapsed:?}"
    );

    // The session and its worker survived the abort: a statement that fits
    // the deadline runs fine on the very same connection.
    let small = client.query("SELECT a FROM l WHERE a = 7").unwrap();
    assert_eq!(small.rows, vec![vec![Value::Int(7)]]);

    let aborts = server.metrics().deadline_aborts.load(Ordering::Relaxed);
    assert!(aborts >= 1, "deadline abort counted: {aborts}");
    client.close().unwrap();
    server.shutdown();
}

/// `CANCEL <id>` from a second connection trips the first connection's
/// in-flight statement, which terminates with `ERR CANCELLED`; the victim
/// session stays healthy.
#[test]
fn cancel_from_another_connection_aborts_an_in_flight_statement() {
    let server = Server::bind("127.0.0.1:0", runaway_engine(), ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut victim = Client::connect(addr).unwrap();
    let session = victim.session_id().unwrap();

    let runner = std::thread::spawn(move || {
        let err = victim.query(RUNAWAY).unwrap_err();
        // After the abort the same connection keeps working.
        let follow_up = victim.query("SELECT a FROM l WHERE a = 3").unwrap();
        let _ = victim.close();
        (err, follow_up)
    });

    // Poke CANCEL until the victim's statement is registered in flight.
    let mut canceller = Client::connect(addr).unwrap();
    let mut tripped = false;
    for _ in 0..500 {
        if canceller.cancel(session).unwrap() {
            tripped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(tripped, "the statement was seen in flight");

    let (err, follow_up) = runner.join().expect("victim thread");
    match &err {
        ClientError::Server {
            code: Some(ErrorCode::Cancelled),
            message,
            ..
        } => assert!(message.contains("cancelled"), "{message}"),
        other => panic!("expected ERR CANCELLED, got {other}"),
    }
    assert_eq!(follow_up.rows, vec![vec![Value::Int(3)]]);

    // Cancelling the now-idle session reports idle (idempotent).
    assert!(!canceller.cancel(session).unwrap());
    let cancelled = server.metrics().queries_cancelled.load(Ordering::Relaxed);
    assert!(cancelled >= 1, "cancellation counted: {cancelled}");
    let _ = canceller.close();
    server.shutdown();
}

/// A server-default resident-row budget aborts the runaway statement with
/// the typed `MEMORY` error carrying budget and observed footprint.
#[test]
fn default_memory_budget_aborts_with_the_typed_wire_error() {
    let server = Server::bind(
        "127.0.0.1:0",
        runaway_engine(),
        ServerConfig {
            // Above one default batch (1024 rows), below the product's
            // retained build side — small statements pass, the runaway
            // trips.
            default_budget_rows: Some(2_000),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.query(RUNAWAY).unwrap_err();
    match &err {
        ClientError::Server {
            code: Some(ErrorCode::Memory),
            message,
            ..
        } => assert!(message.contains("2000 resident rows"), "{message}"),
        other => panic!("expected ERR MEMORY, got {other}"),
    }
    // Small statements stay under the budget and run normally.
    let ok = client.query("SELECT a FROM l WHERE a = 1").unwrap();
    assert_eq!(ok.rows.len(), 1);
    let aborts = server.metrics().budget_aborts.load(Ordering::Relaxed);
    assert!(aborts >= 1, "budget abort counted: {aborts}");
    client.close().unwrap();
    server.shutdown();
}

/// A client with a [`RetryPolicy`] rides out admission-control rejection:
/// it reconnects with backoff until the saturated server frees up.
#[test]
fn retry_client_rides_out_admission_rejection() {
    let data = generate(&ScenarioConfig {
        family: ScenarioFamily::Rbac,
        entities: 20,
        items: 6,
        ..ScenarioConfig::default()
    });
    let sql = data.small_divide_sql();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(Engine::new(data.catalog())),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Saturate: one served session plus one silent connection in the queue.
    let mut holder = Client::connect(addr).unwrap();
    holder.ping().unwrap();
    let _queued = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Free the worker shortly; the silent connection then occupies it until
    // the short read timeout expires.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let _ = holder.close();
    });

    let mut client = Client::connect(addr).unwrap().with_retry(RetryPolicy {
        attempts: 12,
        base_delay: Duration::from_millis(25),
    });
    let result = client.query(&sql).expect("retry eventually succeeds");
    assert!(!result.columns.is_empty());
    release.join().unwrap();
    let _ = client.close();
    server.shutdown();
}

/// The engine-level regression for the satellite contract: a prepared
/// statement crossing a mutation either recompiles (fresh prepare) or
/// surfaces `StalePlan` — it never silently serves pre-mutation rows.
#[test]
fn prepared_statements_never_serve_stale_rows_across_mutation() {
    let data = generate(&ScenarioConfig {
        family: ScenarioFamily::Courses,
        entities: 30,
        items: 8,
        ..ScenarioConfig::default()
    });
    let names = data.names();
    let engine = Engine::new(data.catalog());
    let sql = data.small_divide_sql();
    let stmt = engine.prepare(&sql).unwrap();
    let before = stmt
        .execute_collect(&engine, &div_sql::Params::new())
        .unwrap()
        .relation;

    // Shrink the divisor: the quotient can only grow.
    let shrunk = Relation::from_rows([names.item_column], vec![vec![Value::Int(100)]]).unwrap();
    engine.mutate_catalog(|c| {
        c.register(names.divisor_table, shrunk);
    });

    // The old handle refuses to run...
    let err = stmt
        .execute_collect(&engine, &div_sql::Params::new())
        .unwrap_err();
    assert!(matches!(err, div_sql::Error::StalePlan { .. }), "{err}");

    // ...and a fresh prepare sees exactly the post-mutation state.
    let fresh = engine.prepare(&sql).unwrap();
    let after = fresh
        .execute_collect(&engine, &div_sql::Params::new())
        .unwrap()
        .relation;
    let expected = data
        .dividend
        .divide(&Relation::from_rows([names.item_column], vec![vec![Value::Int(100)]]).unwrap())
        .unwrap();
    assert_eq!(after, expected);
    assert!(after.len() >= before.len(), "quotient grew or stayed");
}
