//! End-to-end tests of the rewrite engine and the cost-based optimizer on
//! generated workloads: every law in the default rule set fires somewhere,
//! rewrites always preserve semantics, and the cost model prefers the plans
//! the paper argues for.

use div_bench::suppliers_parts_catalog;
use div_rewrite::laws::examples::example3_derivation;
use div_rewrite::laws::small_divide_union::partition_dividend_for_law2;
use division::prelude::*;
use std::collections::BTreeSet;

fn figure_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "r1",
        relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
            [4, 1], [4, 3],
        },
    );
    c.register("r2", relation! { ["b"] => [1], [3] });
    c.register("r2_prime", relation! { ["b"] => [1] });
    c.register("r2_double", relation! { ["b"] => [3] });
    c.register(
        "r2_groups",
        relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
    );
    c.register("r2_groups_hi", relation! { ["b", "c"] => [1, 7], [3, 7] });
    c.register("r3", relation! { ["a"] => [2], [4] });
    c.register("outer", relation! { ["a1"] => [2], [3] });
    c.register("factor", relation! { ["d"] => [10], [20] });
    c.register(
        "r0_agg",
        relation! { ["a", "x"] => [1, 1], [1, 2], [2, 3], [3, 1] },
    );
    c.register("single_b", relation! { ["b"] => [4] });
    // Figure 8 relations (Law 9).
    c.register(
        "r_star8",
        relation! {
            ["a", "b1"] =>
            [1, 1], [1, 2], [1, 3],
            [2, 2], [2, 3],
            [3, 1], [3, 3], [3, 4],
        },
    );
    c.register("r_star_star8", relation! { ["b2"] => [1], [2] });
    c.register("r2_8", relation! { ["b1", "b2"] => [1, 2], [3, 1], [3, 2] });
    c
}

/// A collection of plans that together exercise every rule in the default set.
fn law_exercising_plans() -> Vec<LogicalPlan> {
    let divide = || PlanBuilder::scan("r1").divide(PlanBuilder::scan("r2"));
    vec![
        // Law 1 + Law 13: unions as divisors.
        PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2_prime").union(PlanBuilder::scan("r2_double")))
            .build(),
        PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_groups").union(PlanBuilder::scan("r2_groups_hi")))
            .build(),
        // Law 2: partitioned dividend (range partitions satisfy c2).
        PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 2))
            .union(PlanBuilder::scan("r1").select(Predicate::cmp_value("a", CompareOp::Gt, 2)))
            .divide(PlanBuilder::scan("r2"))
            .build(),
        // Laws 3, 4, 14, 15, 16: selections around divisions.
        divide().select(Predicate::eq_value("a", 2)).build(),
        PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2").select(Predicate::cmp_value("b", CompareOp::Lt, 3)))
            .build(),
        PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_groups"))
            .select(Predicate::eq_value("a", 2))
            .build(),
        PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_groups"))
            .select(Predicate::eq_value("c", 2))
            .build(),
        PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_groups").select(Predicate::cmp_value(
                "b",
                CompareOp::Lt,
                3,
            )))
            .build(),
        // Laws 5, 6, 7: set operations.
        PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 3))
            .intersect(PlanBuilder::scan("r1").select(Predicate::cmp_value(
                "b",
                CompareOp::LtEq,
                3,
            )))
            .divide(PlanBuilder::scan("r2"))
            .build(),
        PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::Gt, 1))
            .difference(PlanBuilder::scan("r1").select(
                Predicate::cmp_value("a", CompareOp::Gt, 1).and(Predicate::cmp_value(
                    "a",
                    CompareOp::Gt,
                    3,
                )),
            ))
            .divide(PlanBuilder::scan("r2"))
            .build(),
        PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 2))
            .divide(PlanBuilder::scan("r2"))
            .difference(
                PlanBuilder::scan("r1")
                    .select(Predicate::cmp_value("a", CompareOp::Gt, 2))
                    .divide(PlanBuilder::scan("r2")),
            )
            .build(),
        // Laws 8, 9, 17 and Example 2: products.
        PlanBuilder::scan("factor")
            .product(PlanBuilder::scan("r1"))
            .divide(PlanBuilder::scan("r2"))
            .build(),
        PlanBuilder::scan("r_star8")
            .product(PlanBuilder::scan("r_star_star8"))
            .divide(PlanBuilder::scan("r2_8"))
            .build(),
        PlanBuilder::scan("factor")
            .product(PlanBuilder::scan("r1"))
            .divide(PlanBuilder::scan("r2").product(PlanBuilder::scan("factor")))
            .build(),
        PlanBuilder::scan("factor")
            .product(PlanBuilder::scan("r1"))
            .great_divide(PlanBuilder::scan("r2_groups"))
            .build(),
        // Law 10 and Example 4: joins against quotients.
        PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .semi_join(PlanBuilder::scan("r3"))
            .build(),
        PlanBuilder::scan("outer")
            .theta_join(
                PlanBuilder::scan("r1").great_divide(PlanBuilder::scan("r2_groups")),
                Predicate::eq_attrs("a1", "a"),
            )
            .build(),
        // Laws 11 and 12: aggregated dividends.
        PlanBuilder::scan("r0_agg")
            .group_aggregate(["a"], [AggregateCall::sum("x", "b")])
            .divide(PlanBuilder::scan("single_b"))
            .build(),
        PlanBuilder::scan("r0_agg")
            .rename([("a", "b"), ("x", "y")])
            .group_aggregate(["b"], [AggregateCall::sum("y", "a")])
            .divide(PlanBuilder::scan("r2"))
            .build(),
    ]
}

#[test]
fn every_default_rule_fires_on_some_plan_and_preserves_semantics() {
    let catalog = figure_catalog();
    let ctx = RewriteContext::with_catalog(&catalog);
    let engine = RewriteEngine::with_default_rules();
    let mut fired: BTreeSet<String> = BTreeSet::new();
    for plan in law_exercising_plans() {
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        for applied in &outcome.applied {
            fired.insert(applied.rule.clone());
        }
        let report = plans_equivalent_on(&plan, &outcome.plan, &catalog).unwrap();
        assert!(
            report.equivalent,
            "rewrite changed semantics for plan:\n{plan}\n{}",
            report.describe()
        );
    }
    for law in [
        "law-01",
        "law-02",
        "law-03",
        "law-04",
        "law-05",
        "law-06",
        "law-07",
        "law-08",
        "law-09",
        "law-10",
        "law-11",
        "law-12",
        "law-13",
        "law-14",
        "law-15",
        "law-16",
        "law-17",
        "example-2",
        "example-4",
    ] {
        assert!(
            fired.iter().any(|name| name.starts_with(law)),
            "no plan triggered {law}; fired rules: {fired:?}"
        );
    }
}

#[test]
fn optimizer_never_makes_plans_worse_and_preserves_semantics() {
    let catalog = suppliers_parts_catalog(60, 20, 0.5);
    let ctx = RewriteContext::with_catalog(&catalog);
    let optimizer = Optimizer::new();
    let plans = vec![
        PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .select(Predicate::cmp_value("s#", CompareOp::Lt, 10))
            .build(),
        PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .select(Predicate::eq_value("color", "blue"))
            .build(),
    ];
    for plan in plans {
        let optimized = optimizer.optimize(&plan, &ctx).unwrap();
        assert!(optimized.cost.value() <= optimized.original_cost.value());
        assert!(optimized.estimated_speedup() >= 1.0);
        // The chosen plan is labeled with the laws that produced it.
        if optimized.plan != plan {
            assert!(
                !optimized.applied.is_empty(),
                "a changed plan must report which rules fired"
            );
        }
        let report = plans_equivalent_on(&plan, &optimized.plan, &catalog).unwrap();
        assert!(report.equivalent, "{}", report.describe());
    }
}

#[test]
fn engine_pipeline_agrees_with_the_reference_evaluator_on_law_plans() {
    // Every law-exercising plan, executed end to end through the `Engine`
    // (optimizer in the loop), matches the reference evaluation of the
    // *original* plan — the session API must never change query semantics.
    let catalog = figure_catalog();
    let engine = Engine::new(catalog.clone());
    for plan in law_exercising_plans() {
        let expected = evaluate(&plan, &catalog).unwrap();
        let output = engine.execute_logical(&plan).unwrap();
        assert_eq!(
            output.relation, expected,
            "engine diverges from the reference on plan:\n{plan}"
        );
    }
}

#[test]
fn law2_partitioning_helper_produces_equivalent_parallelizable_plans() {
    let catalog = suppliers_parts_catalog(50, 16, 0.6);
    let ctx = RewriteContext::with_catalog(&catalog);
    let dividend = PlanBuilder::scan("supplies").build();
    let divisor = PlanBuilder::scan("parts").project(["p#"]).build();
    let original = PlanBuilder::from_plan(dividend.clone())
        .divide(PlanBuilder::from_plan(divisor.clone()))
        .build();
    for n in [2, 3, 4] {
        let partitioned = partition_dividend_for_law2(&dividend, &divisor, n, &ctx)
            .unwrap()
            .expect("partitioning succeeds on generated data");
        let report = plans_equivalent_on(&original, &partitioned, &catalog).unwrap();
        assert!(report.equivalent, "n = {n}: {}", report.describe());
    }
}

#[test]
fn example3_derivation_holds_on_generated_data() {
    // Scale Figure 9 up: random r*1, a unique-key r**1 and a foreign-key r2.
    let mut catalog = Catalog::new();
    let mut r_star_rows = Vec::new();
    for a in 0..40i64 {
        for b1 in 0..10i64 {
            if (a + b1) % 3 != 0 {
                r_star_rows.push(vec![a, b1]);
            }
        }
    }
    catalog.register(
        "r_star",
        Relation::from_rows(["a", "b1"], r_star_rows).unwrap(),
    );
    catalog.register(
        "r_star_star",
        Relation::from_rows(["b2"], (0..12i64).map(|b2| vec![b2])).unwrap(),
    );
    catalog.register(
        "r2",
        Relation::from_rows(["b1", "b2"], (0..8i64).map(|i| vec![i % 10, (i * 3) % 12])).unwrap(),
    );
    let ctx = RewriteContext::with_catalog(&catalog);
    let steps = example3_derivation(
        &PlanBuilder::scan("r_star").build(),
        &PlanBuilder::scan("r_star_star").build(),
        &PlanBuilder::scan("r2").build(),
        &ctx,
    )
    .unwrap();
    let original = &steps[0].plan;
    for step in &steps[1..] {
        let report = plans_equivalent_on(original, &step.plan, &catalog).unwrap();
        assert!(
            report.equivalent,
            "step `{}` broke the derivation: {}",
            step.justification,
            report.describe()
        );
    }
}
