//! Differential property suite for the vectorized key pipeline.
//!
//! Every hash-consuming columnar kernel now runs on `KeyVector` codes and
//! open-addressing tables (`div_columnar::key_vector` / `hash_table`)
//! instead of `RowKey` hash maps. These properties pin the pipeline to the
//! row-backend reference semantics over the inputs that stress it:
//!
//! * NULL-bearing key columns (validity masks → the NULL sentinel code),
//! * mixed-type keys (ints, strings, booleans, NULLs in one column → the
//!   `Mixed` encoding and hashed codes),
//! * multi-column composite keys (code folding),
//! * **forced `u64` code-space collisions**: `Value::Int(NULL_CODE as i64)`
//!   collides with `NULL` by construction, and
//!   `Value::Int(BOOL_FALSE_CODE as i64)` with `false` — the
//!   verify-against-source-batch path must tell them apart.
//!
//! Each kernel's output relation must be byte-identical to the reference
//! `div-algebra` operator (which the row backend executes directly).

use div_columnar::key_vector::{BOOL_FALSE_CODE, NULL_CODE};
use div_columnar::partition::{concat_batches, hash_partition, hash_partition_keyed};
use div_columnar::{kernels, ColumnarBatch};
use division::prelude::*;
use proptest::prelude::*;

/// Decode a generated `(kind, payload)` pair into a key value.
///
/// The payload domain is tiny so keys collide *semantically* (equal values
/// across rows and batches) often; `kind` 3 plants the NULL-sentinel and
/// bool-constant collision ints, so the code space collides too.
fn key_value(kind: u32, payload: i64) -> Value {
    match kind % 5 {
        0 => Value::Null,
        1 => Value::Int(payload),
        2 => Value::str(["blue", "red", "green", "x"][(payload % 4) as usize]),
        3 => [
            Value::Int(NULL_CODE as i64),
            Value::Int(BOOL_FALSE_CODE as i64),
        ][(payload % 2) as usize]
            .clone(),
        _ => Value::Bool(payload % 2 == 0),
    }
}

/// A relation over `names` whose first `key_arity` columns hold generated
/// (possibly mixed-type, NULL-bearing, collision-planted) key values and
/// whose remaining columns hold small ints.
fn mixed_relation(names: &[&str], key_arity: usize, rows: &[(u32, i64, i64)]) -> Relation {
    let tuples = rows.iter().map(|&(kind, payload, tail)| {
        Tuple::new((0..names.len()).map(|c| {
            if c < key_arity {
                // Vary the kind per key column so composite keys mix types.
                key_value(kind.wrapping_add(c as u32), payload + c as i64)
            } else {
                Value::Int(tail)
            }
        }))
    });
    Relation::new(Schema::of(names.iter().copied()), tuples).unwrap()
}

type Rows = Vec<(u32, i64, i64)>;

fn row_strategy(max_rows: usize) -> impl Strategy<Value = Rows> {
    prop::collection::vec((0..10u32, 0..5i64, 0..4i64), 0..max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Natural, semi and anti join agree with the reference operators on
    /// mixed-type, NULL-bearing, collision-planted single-column keys.
    #[test]
    fn joins_match_reference_on_hostile_keys(
        left in row_strategy(24),
        right in row_strategy(24),
    ) {
        let l = mixed_relation(&["k", "lv"], 1, &left);
        let r = mixed_relation(&["k", "rv"], 1, &right);
        let lb = ColumnarBatch::from_relation(&l);
        let rb = ColumnarBatch::from_relation(&r);
        let joined = kernels::hash_natural_join(&lb, &rb).unwrap();
        prop_assert_eq!(
            joined.batch.to_relation().unwrap(),
            l.natural_join(&r).unwrap()
        );
        let semi = kernels::hash_semi_join(&lb, &rb, false).unwrap();
        prop_assert_eq!(semi.batch.to_relation().unwrap(), l.semi_join(&r).unwrap());
        let anti = kernels::hash_semi_join(&lb, &rb, true).unwrap();
        prop_assert_eq!(
            anti.batch.to_relation().unwrap(),
            l.anti_semi_join(&r).unwrap()
        );
    }

    /// Joins on composite (two-column) keys agree with the reference.
    #[test]
    fn composite_key_joins_match_reference(
        left in row_strategy(24),
        right in row_strategy(24),
    ) {
        let l = mixed_relation(&["k1", "k2", "lv"], 2, &left);
        let r = mixed_relation(&["k1", "k2", "rv"], 2, &right);
        let lb = ColumnarBatch::from_relation(&l);
        let rb = ColumnarBatch::from_relation(&r);
        let joined = kernels::hash_natural_join(&lb, &rb).unwrap();
        prop_assert_eq!(
            joined.batch.to_relation().unwrap(),
            l.natural_join(&r).unwrap()
        );
    }

    /// Intersection and difference (whole-row keys) agree with the
    /// reference, including dedup of transient duplicate rows.
    #[test]
    fn set_ops_match_reference_on_hostile_keys(
        left in row_strategy(24),
        right in row_strategy(24),
    ) {
        let l = mixed_relation(&["k", "v"], 1, &left);
        let r = mixed_relation(&["k", "v"], 1, &right);
        let lb = ColumnarBatch::from_relation(&l);
        let rb = ColumnarBatch::from_relation(&r);
        prop_assert_eq!(
            kernels::intersect(&lb, &rb).unwrap().to_relation().unwrap(),
            l.intersect(&r).unwrap()
        );
        prop_assert_eq!(
            kernels::difference(&lb, &rb).unwrap().to_relation().unwrap(),
            l.difference(&r).unwrap()
        );
    }

    /// Hash aggregation groups mixed-type composite keys like the
    /// reference.
    #[test]
    fn aggregate_matches_reference_on_hostile_keys(rows in row_strategy(30)) {
        let rel = mixed_relation(&["k1", "k2", "v"], 2, &rows);
        let batch = ColumnarBatch::from_relation(&rel);
        let aggregates = [
            AggregateCall::count("v", "n"),
            AggregateCall::sum("v", "total"),
        ];
        let got = kernels::hash_aggregate(&batch, &["k1", "k2"], &aggregates).unwrap();
        prop_assert_eq!(
            got.to_relation().unwrap(),
            rel.group_aggregate(&["k1", "k2"], &aggregates).unwrap()
        );
    }

    /// The divide kernel's generic (hashed-code) path agrees with the
    /// reference on string/NULL/collision-planted B attributes.
    #[test]
    fn divide_matches_reference_on_hostile_keys(
        dividend in row_strategy(30),
        divisor in row_strategy(8),
    ) {
        let dividend = mixed_relation(&["b", "a"], 1, &dividend);
        let divisor = mixed_relation(&["b"], 1, &divisor);
        let expected = dividend.divide(&divisor).unwrap();
        let out = kernels::hash_divide(
            &ColumnarBatch::from_relation(&dividend),
            &ColumnarBatch::from_relation(&divisor),
        )
        .unwrap();
        prop_assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    /// The great-divide kernel agrees with the reference on hostile B and C
    /// attributes.
    #[test]
    fn great_divide_matches_reference_on_hostile_keys(
        dividend in row_strategy(30),
        divisor in row_strategy(12),
    ) {
        let dividend = mixed_relation(&["b", "a"], 1, &dividend);
        let divisor = mixed_relation(&["b", "c"], 2, &divisor);
        let expected = dividend.great_divide(&divisor).unwrap();
        let out = kernels::hash_great_divide(
            &ColumnarBatch::from_relation(&dividend),
            &ColumnarBatch::from_relation(&divisor),
        )
        .unwrap();
        prop_assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    /// Dedup on the key pipeline is exact: duplicating rows and
    /// deduplicating restores the original set, even with collision-planted
    /// whole-row keys.
    #[test]
    fn dedup_is_exact_on_hostile_keys(rows in row_strategy(20)) {
        let rel = mixed_relation(&["k", "v"], 1, &rows);
        let batch = ColumnarBatch::from_relation(&rel);
        let n = batch.num_rows();
        let doubled: Vec<usize> = (0..n).chain(0..n).collect();
        let deduped = batch.gather(&doubled).dedup();
        prop_assert_eq!(deduped.num_rows(), n, "every distinct row survives once");
        prop_assert_eq!(deduped.to_relation().unwrap(), rel);
    }

    /// Hash partitioning loses nothing, keeps equal keys together, and the
    /// keyed variant's carried hashes equal a per-partition rebuild.
    #[test]
    fn partitioning_is_sound_on_hostile_keys(
        rows in row_strategy(30),
        partitions in 1..8usize,
    ) {
        let rel = mixed_relation(&["k", "v"], 1, &rows);
        let batch = ColumnarBatch::from_relation(&rel);
        let parts = hash_partition(&batch, &[0], partitions);
        prop_assert_eq!(parts.len(), partitions);
        let total: usize = parts.iter().map(ColumnarBatch::num_rows).sum();
        prop_assert_eq!(total, batch.num_rows());
        if let Some(glued) = concat_batches(&parts) {
            prop_assert_eq!(glued.to_relation().unwrap(), rel);
        }
        // Equal keys never split across partitions.
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                for a in 0..parts[i].num_rows() {
                    for b in 0..parts[j].num_rows() {
                        prop_assert_ne!(
                            parts[i].value_at(a, 0),
                            parts[j].value_at(b, 0),
                            "key split across partitions {} and {}", i, j
                        );
                    }
                }
            }
        }
        // The keyed variant carries exactly the hashes a rebuild would give.
        for (part, keys) in hash_partition_keyed(&batch, &[0], partitions) {
            let rebuilt = div_columnar::KeyVector::build(&part, &[0]);
            prop_assert_eq!(keys.codes(), rebuilt.codes());
        }
    }
}

/// The planted collisions really collide in code space — otherwise the
/// properties above would not be exercising the verification path.
#[test]
fn planted_keys_collide_in_code_space() {
    use div_columnar::key_vector::value_code;
    assert_eq!(
        value_code(&Value::Null),
        value_code(&Value::Int(NULL_CODE as i64))
    );
    assert_eq!(
        value_code(&Value::Bool(false)),
        value_code(&Value::Int(BOOL_FALSE_CODE as i64))
    );
    assert_ne!(Value::Null, Value::Int(NULL_CODE as i64));
}

/// A deterministic end-to-end collision scenario: a join key column holding
/// `NULL`, the NULL-sentinel int, `false`, and the bool-constant int must
/// join exactly like the reference — equal codes, unequal keys.
#[test]
fn forced_collisions_join_exactly() {
    let hostile = [
        Value::Null,
        Value::Int(NULL_CODE as i64),
        Value::Bool(false),
        Value::Int(BOOL_FALSE_CODE as i64),
        Value::Int(7),
    ];
    let left = Relation::new(
        Schema::of(["k", "lv"]),
        hostile
            .iter()
            .enumerate()
            .map(|(i, k)| Tuple::new([k.clone(), Value::Int(i as i64)])),
    )
    .unwrap();
    let right = Relation::new(
        Schema::of(["k", "rv"]),
        [
            Tuple::new([Value::Null, Value::Int(100)]),
            Tuple::new([Value::Bool(false), Value::Int(200)]),
            Tuple::new([Value::Int(7), Value::Int(300)]),
        ],
    )
    .unwrap();
    let lb = ColumnarBatch::from_relation(&left);
    let rb = ColumnarBatch::from_relation(&right);
    let joined = kernels::hash_natural_join(&lb, &rb).unwrap();
    let expected = left.natural_join(&right).unwrap();
    assert_eq!(joined.batch.to_relation().unwrap(), expected);
    // Exactly the three genuine matches: the collision ints match nothing.
    assert_eq!(expected.len(), 3);
    let semi = kernels::hash_semi_join(&lb, &rb, false).unwrap();
    assert_eq!(semi.batch.num_rows(), 3);
}
