//! Property and example tests for the three theorems of the paper.

use div_rewrite::theorems;
use division::prelude::*;
use proptest::prelude::*;

fn ab_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..6i64, 0..5i64), 0..max_rows)
}

fn bc_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..5i64, 0..4i64), 0..max_rows)
}

fn rel(names: [&str; 2], pairs: &[(i64, i64)]) -> Relation {
    Relation::from_rows(names, pairs.iter().map(|(x, y)| vec![*x, *y])).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Theorem 1: set containment division, Demolombe's generalized division
    /// and Todd's great divide coincide on arbitrary relations.
    #[test]
    fn theorem1_definitions_agree(r1 in ab_pairs(24), r2 in bc_pairs(12)) {
        let dividend = rel(["a", "b"], &r1);
        let divisor = rel(["b", "c"], &r2);
        prop_assert!(theorems::theorem1_holds_on(&dividend, &divisor).unwrap());
    }

    /// Theorem 2: whenever r1 ÷ r2 is well-typed, the swapped expression is
    /// not, so the operator cannot be commutative.
    #[test]
    fn theorem2_swapped_operands_are_invalid(r1 in ab_pairs(20), d in prop::collection::vec(0..5i64, 0..6)) {
        let dividend = rel(["a", "b"], &r1);
        let divisor = Relation::from_rows(["b"], d.iter().map(|b| vec![*b])).unwrap();
        prop_assert!(theorems::theorem2_swapped_is_invalid(&dividend, &divisor).unwrap());
    }
}

#[test]
fn theorem1_on_multi_attribute_schemas() {
    // Two shared attributes and two group attributes.
    let r1 = relation! {
        ["a", "b1", "b2"] =>
        [1, 1, 10], [1, 2, 20], [2, 1, 10], [2, 3, 30],
    };
    let r2 = relation! {
        ["b1", "b2", "c1", "c2"] =>
        [1, 10, 7, 70], [2, 20, 7, 70], [1, 10, 8, 80],
    };
    assert!(theorems::theorem1_holds_on(&r1, &r2).unwrap());
}

#[test]
fn theorem3_schema_argument_and_counterexample() {
    // The schema sets of the paper's proof: any attribute shared by all three
    // relations breaks associativity.
    assert!(theorems::theorem3_schemas_differ(
        &["a", "b", "c"],
        &["b", "c"],
        &["c"]
    ));
    assert!(!theorems::theorem3_schemas_differ(&["a"], &["b"], &["c"]));

    let (r1, r2, r3, left_nesting, right_inner) = theorems::theorem3_counterexample();
    // The left nesting r1 ÷ (r2 ÷ r3) is well-typed and yields (a, c) pairs.
    assert_eq!(left_nesting.schema().names(), vec!["a", "c"]);
    // The only well-typed right-hand parse (r1 ÷ r2) has a different schema,
    // so the two nestings cannot be equal for these relations.
    assert_ne!(left_nesting.schema(), right_inner.schema());
    // Sanity: the counterexample relations are the documented ones.
    assert_eq!(r1.len(), 3);
    assert_eq!(r2.len(), 2);
    assert_eq!(r3.len(), 1);
}

#[test]
fn theorem2_concrete_schema_sizes() {
    // The proof argument: the dividend has m + n attributes, the divisor n,
    // with m > 0 — swapping makes the "dividend" narrower than the "divisor".
    let r1 = relation! { ["a", "b", "c"] => [1, 2, 3] };
    let r2 = relation! { ["b", "c"] => [2, 3] };
    assert!(r1.divide(&r2).is_ok());
    assert!(r2.divide(&r1).is_err());
}
