//! Property-based tests of every law in the paper.
//!
//! Each property generates random relations (small integer domains keep the
//! group structure interesting), enforces the law's precondition *by
//! construction* where one is required, and checks that the left- and
//! right-hand sides of the equivalence produce identical relations. Where the
//! paper exhibits a precondition violation (Law 2 / Figure 5) the test also
//! checks that the violating cases are exactly the ones condition `c1`
//! rejects.

use div_rewrite::preconditions;
use division::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Random `(a, b)` pairs over a small domain.
fn ab_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..6i64, 0..5i64), 0..max_rows)
}

/// Random `b` values (divisor tuples for the small divide).
fn b_values(max_rows: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0..5i64, 0..max_rows)
}

/// Random `(b, c)` pairs (great-divide divisors).
fn bc_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..5i64, 0..4i64), 0..max_rows)
}

fn rel_ab(pairs: &[(i64, i64)]) -> Relation {
    Relation::from_rows(["a", "b"], pairs.iter().map(|(a, b)| vec![*a, *b])).unwrap()
}

fn rel_b(values: &[i64]) -> Relation {
    Relation::from_rows(["b"], values.iter().map(|b| vec![*b])).unwrap()
}

fn rel_bc(pairs: &[(i64, i64)]) -> Relation {
    Relation::from_rows(["b", "c"], pairs.iter().map(|(b, c)| vec![*b, *c])).unwrap()
}

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Section 5.1.1 — union laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 1 holds for arbitrary (even overlapping) divisor partitions.
    #[test]
    fn law1_divisor_union(r1 in ab_pairs(24), d1 in b_values(5), d2 in b_values(5)) {
        let r1 = rel_ab(&r1);
        let r2_prime = rel_b(&d1);
        let r2_double = rel_b(&d2);
        let lhs = r1.divide(&r2_prime.union(&r2_double).unwrap()).unwrap();
        let inner = r1.divide(&r2_prime).unwrap();
        let rhs = r1.semi_join(&inner).unwrap().divide(&r2_double).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 2 holds whenever condition c1 holds; c2 implies c1.
    #[test]
    fn law2_dividend_union(p1 in ab_pairs(20), p2 in ab_pairs(20), d in b_values(5)) {
        let r1_prime = rel_ab(&p1);
        let r1_double = rel_ab(&p2);
        let r2 = rel_b(&d);
        let c1 = preconditions::c1(&r1_prime, &r1_double, &r2).unwrap();
        let c2 = preconditions::c2(&r1_prime, &r1_double, &r2).unwrap();
        // c2 is the stricter condition.
        if c2 {
            prop_assert!(c1);
        }
        let lhs = r1_prime.union(&r1_double).unwrap().divide(&r2).unwrap();
        let rhs = r1_prime
            .divide(&r2)
            .unwrap()
            .union(&r1_double.divide(&r2).unwrap())
            .unwrap();
        if c1 {
            prop_assert_eq!(lhs, rhs);
        } else {
            // When c1 fails the two sides may differ, but the right-hand side
            // is always a subset of the left (splitting can only lose
            // quotients, never invent them).
            prop_assert!(rhs.is_subset_of(&lhs).unwrap());
        }
    }

    /// Law 2 under the partition helper of the physical layer: hash
    /// partitioning on A satisfies c2 by construction.
    #[test]
    fn law2_hash_partitioning_always_satisfies_c2(r1 in ab_pairs(30), d in b_values(5)) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        let parts = div_physical::parallel::hash_partition(&r1, &["a"], 2).unwrap();
        prop_assert!(preconditions::c2(&parts[0], &parts[1], &r2).unwrap()
            || parts[0].is_empty() || parts[1].is_empty());
    }
}

// ---------------------------------------------------------------------------
// Section 5.1.2 — selection laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 3: σ_{p(A)}(r1 ÷ r2) = σ_{p(A)}(r1) ÷ r2.
    #[test]
    fn law3_selection_pushdown(r1 in ab_pairs(24), d in b_values(5), k in 0..6i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        let p = Predicate::cmp_value("a", CompareOp::Lt, k);
        let lhs = r1.divide(&r2).unwrap().select(&p).unwrap();
        let rhs = r1.select(&p).unwrap().divide(&r2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 4: r1 ÷ σ_{p(B)}(r2) = σ_{p(B)}(r1) ÷ σ_{p(B)}(r2).
    ///
    /// The law implicitly assumes the filtered divisor is nonempty: with
    /// σ_{p(B)}(r2) = ∅ the left side degenerates to π_A(r1) while the right
    /// side only keeps the candidates surviving the filter (see DESIGN.md,
    /// "empty-divisor edge cases"). The assumption is made explicit here.
    #[test]
    fn law4_divisor_selection_replication(r1 in ab_pairs(24), d in b_values(6), k in 0..5i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        let p = Predicate::cmp_value("b", CompareOp::Lt, k);
        prop_assume!(!r2.select(&p).unwrap().is_empty());
        let lhs = r1.divide(&r2.select(&p).unwrap()).unwrap();
        let rhs = r1
            .select(&p)
            .unwrap()
            .divide(&r2.select(&p).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Example 1: σ_{p(B)}(r1) ÷ r2 =
    /// (σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)) − π_A(π_A(r1) × σ_{¬p(B)}(r2)).
    #[test]
    fn example1_dividend_b_selection(r1 in ab_pairs(24), d in b_values(6), k in 0..5i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        let p = Predicate::cmp_value("b", CompareOp::Lt, k);
        let lhs = r1.select(&p).unwrap().divide(&r2).unwrap();
        let positive = r1
            .select(&p)
            .unwrap()
            .divide(&r2.select(&p).unwrap())
            .unwrap();
        let switch = r1
            .project(&["a"])
            .unwrap()
            .product(&r2.select(&p.negate()).unwrap())
            .unwrap()
            .project(&["a"])
            .unwrap();
        let rhs = positive.difference(&switch).unwrap();
        prop_assert_eq!(lhs, rhs);
    }
}

// ---------------------------------------------------------------------------
// Sections 5.1.3 / 5.1.4 — intersection and difference laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 5: (r'1 ∩ r''1) ÷ r2 = (r'1 ÷ r2) ∩ (r''1 ÷ r2).
    ///
    /// Like Law 4, the law needs a nonempty divisor (an empty divisor makes
    /// every quotient candidate qualify on both sides independently, so the
    /// intersection of quotients can exceed the quotient of the intersection).
    #[test]
    fn law5_intersection(p1 in ab_pairs(24), p2 in ab_pairs(24), d in b_values(5)) {
        let r1_prime = rel_ab(&p1);
        let r1_double = rel_ab(&p2);
        let r2 = rel_b(&d);
        prop_assume!(!r2.is_empty());
        let lhs = r1_prime.intersect(&r1_double).unwrap().divide(&r2).unwrap();
        let rhs = r1_prime
            .divide(&r2)
            .unwrap()
            .intersect(&r1_double.divide(&r2).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 6: nested selections on A (σ_{a<k2} ⊆ σ_{a<k1} for k2 ≤ k1).
    #[test]
    fn law6_difference_of_nested_selections(
        r1 in ab_pairs(24),
        d in b_values(5),
        k1 in 0..7i64,
        delta in 0..7i64,
    ) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        // Nonempty-divisor assumption, as for Laws 4 and 5.
        prop_assume!(!r2.is_empty());
        let k2 = (k1 - delta).max(0);
        let r1_prime = r1.select(&Predicate::cmp_value("a", CompareOp::Lt, k1)).unwrap();
        let r1_double = r1.select(&Predicate::cmp_value("a", CompareOp::Lt, k2)).unwrap();
        prop_assert!(preconditions::subset_of(&r1_double, &r1_prime).unwrap());
        let lhs = r1_prime.difference(&r1_double).unwrap().divide(&r2).unwrap();
        let rhs = r1_prime
            .divide(&r2)
            .unwrap()
            .difference(&r1_double.divide(&r2).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 7: disjoint quotient prefixes make the subtraction a no-op.
    #[test]
    fn law7_disjoint_difference(p1 in ab_pairs(24), p2 in ab_pairs(24), d in b_values(5)) {
        let r1_prime = rel_ab(&p1);
        // Shift the second partition's A values out of the first one's range.
        let shifted: Vec<(i64, i64)> = p2.iter().map(|(a, b)| (a + 100, *b)).collect();
        let r1_double = rel_ab(&shifted);
        let r2 = rel_b(&d);
        prop_assert!(preconditions::projections_disjoint(&r1_prime, &r1_double, &["a"]).unwrap());
        let lhs = r1_prime
            .divide(&r2)
            .unwrap()
            .difference(&r1_double.divide(&r2).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, r1_prime.divide(&r2).unwrap());
    }
}

// ---------------------------------------------------------------------------
// Section 5.1.5 — Cartesian product laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 8: (r*1 × r**1) ÷ r2 = r*1 × (r**1 ÷ r2).
    #[test]
    fn law8_product_pushthrough(
        a1 in prop::collection::vec(0..4i64, 0..5),
        inner in ab_pairs(16),
        d in b_values(5),
    ) {
        let r_star = Relation::from_rows(["a1"], a1.iter().map(|a| vec![*a])).unwrap();
        let r_star_star = Relation::from_rows(
            ["a2", "b"],
            inner.iter().map(|(a, b)| vec![*a, *b]),
        )
        .unwrap();
        let r2 = rel_b(&d);
        let lhs = r_star.product(&r_star_star).unwrap().divide(&r2).unwrap();
        let rhs = r_star.product(&r_star_star.divide(&r2).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 9: with π_{B2}(r2) ⊆ r**1 (and r**1 nonempty), the product factor
    /// r**1 and the B2 part of the divisor can be dropped.
    #[test]
    fn law9_product_elimination(
        outer in ab_pairs(16),
        b2_pool in prop::collection::vec(0..3i64, 1..4),
        divisor_raw in prop::collection::vec((0..5i64, 0..3usize), 0..8),
    ) {
        let r_star = Relation::from_rows(
            ["a", "b1"],
            outer.iter().map(|(a, b)| vec![*a, *b]),
        )
        .unwrap();
        let r_star_star =
            Relation::from_rows(["b2"], b2_pool.iter().map(|b| vec![*b])).unwrap();
        // Build r2 so that every b2 value comes from the pool (⊆ r**1).
        let divisor_rows: Vec<Vec<i64>> = divisor_raw
            .iter()
            .map(|(b1, idx)| vec![*b1, b2_pool[idx % b2_pool.len()]])
            .collect();
        let r2 = Relation::from_rows(["b1", "b2"], divisor_rows).unwrap();
        prop_assert!(preconditions::law9_projection_contained(&r_star_star, &r2).unwrap());
        let lhs = r_star.product(&r_star_star).unwrap().divide(&r2).unwrap();
        let rhs = r_star.divide(&r2.project(&["b1"]).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Example 2: (r1 × s) ÷ (r2 × s) = r1 ÷ r2 for nonempty s.
    #[test]
    fn example2_common_factor(
        r1 in ab_pairs(16),
        d in prop::collection::vec(0..5i64, 0..5),
        s in prop::collection::vec(0..3i64, 1..4),
    ) {
        let r1 = Relation::from_rows(["a", "b1"], r1.iter().map(|(a, b)| vec![*a, *b])).unwrap();
        let r2 = Relation::from_rows(["b1"], d.iter().map(|b| vec![*b])).unwrap();
        let s = Relation::from_rows(["b2"], s.iter().map(|v| vec![*v])).unwrap();
        let lhs = r1
            .product(&s)
            .unwrap()
            .divide(&r2.product(&s).unwrap())
            .unwrap();
        let rhs = r1.divide(&r2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }
}

// ---------------------------------------------------------------------------
// Sections 5.1.6 / 5.1.7 — join and grouping laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 10: (r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2 with R3 ⊆ A.
    #[test]
    fn law10_semijoin_commutes(
        r1 in ab_pairs(24),
        d in b_values(5),
        r3 in prop::collection::vec(0..6i64, 0..6),
    ) {
        let r1 = rel_ab(&r1);
        let r2 = rel_b(&d);
        let r3 = Relation::from_rows(["a"], r3.iter().map(|a| vec![*a])).unwrap();
        let lhs = r1.divide(&r2).unwrap().semi_join(&r3).unwrap();
        let rhs = r1.semi_join(&r3).unwrap().divide(&r2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 11: a dividend whose quotient groups are singletons (because it is
    /// an aggregation result) divides according to the three-way case split.
    #[test]
    fn law11_singleton_groups(r0 in ab_pairs(24), d in prop::collection::vec(0..30i64, 0..4)) {
        let r0 = Relation::from_rows(["a", "x"], r0.iter().map(|(a, x)| vec![*a, *x])).unwrap();
        let r1 = r0
            .group_aggregate(&["a"], &[AggregateCall::sum("x", "b")])
            .unwrap();
        let r2 = rel_b(&d);
        let expected = r1.divide(&r2).unwrap();
        let by_law = match r2.len() {
            0 => r1.project(&["a"]).unwrap(),
            1 => r1.semi_join(&r2).unwrap().project(&["a"]).unwrap(),
            _ => Relation::empty(Schema::of(["a"])),
        };
        prop_assert_eq!(expected, by_law);
    }

    /// Law 12: a dividend whose divisor-attribute groups are singletons, with
    /// the divisor referencing the dividend, divides to π_A(r1 ⋉ r2) when that
    /// projection is a single tuple and to ∅ otherwise.
    #[test]
    fn law12_singleton_divisor_groups(
        r0 in ab_pairs(24),
        pick in prop::collection::vec(0..10usize, 0..4),
    ) {
        let r0 = Relation::from_rows(["x", "b"], r0.iter().map(|(x, b)| vec![*x, *b])).unwrap();
        let r1 = r0
            .group_aggregate(&["b"], &[AggregateCall::sum("x", "a")])
            .unwrap();
        // Build a divisor that references existing dividend B values only.
        let b_values: Vec<Value> = r1.column("b").unwrap().into_iter().collect();
        prop_assume!(!b_values.is_empty());
        let rows: Vec<Vec<Value>> = pick
            .iter()
            .map(|i| vec![b_values[i % b_values.len()].clone()])
            .collect();
        let r2 = Relation::from_rows(["b"], rows).unwrap();
        prop_assume!(!r2.is_empty());
        prop_assert!(preconditions::divisor_references_dividend(&r1, &r2).unwrap());
        let expected = r1.divide(&r2).unwrap();
        let projected = r1.semi_join(&r2).unwrap().project(&["a"]).unwrap();
        let by_law = if projected.len() == 1 {
            projected
        } else {
            Relation::empty(Schema::of(["a"]))
        };
        prop_assert_eq!(expected, by_law);
    }
}

// ---------------------------------------------------------------------------
// Section 5.2 — great divide laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(config())]

    /// Law 13: divisor partitions with disjoint group values divide
    /// independently.
    #[test]
    fn law13_divisor_union(r1 in ab_pairs(24), d1 in bc_pairs(8), d2 in bc_pairs(8)) {
        let r1 = rel_ab(&r1);
        let r2_prime = rel_bc(&d1);
        // Shift the second partition's C values to force disjointness.
        let shifted: Vec<(i64, i64)> = d2.iter().map(|(b, c)| (*b, c + 100)).collect();
        let r2_double = rel_bc(&shifted);
        prop_assert!(
            preconditions::projections_disjoint(&r2_prime, &r2_double, &["c"]).unwrap()
        );
        let lhs = r1.great_divide(&r2_prime.union(&r2_double).unwrap()).unwrap();
        let rhs = r1
            .great_divide(&r2_prime)
            .unwrap()
            .union(&r1.great_divide(&r2_double).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 14: σ_{p(A)} pushes into the dividend of a great divide.
    #[test]
    fn law14_selection_pushdown_quotient(r1 in ab_pairs(24), d in bc_pairs(10), k in 0..6i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_bc(&d);
        let p = Predicate::cmp_value("a", CompareOp::Lt, k);
        let lhs = r1.great_divide(&r2).unwrap().select(&p).unwrap();
        let rhs = r1.select(&p).unwrap().great_divide(&r2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 15: σ_{p(C)} pushes into the divisor of a great divide.
    #[test]
    fn law15_selection_pushdown_group(r1 in ab_pairs(24), d in bc_pairs(10), k in 0..4i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_bc(&d);
        let p = Predicate::cmp_value("c", CompareOp::Lt, k);
        let lhs = r1.great_divide(&r2).unwrap().select(&p).unwrap();
        let rhs = r1.great_divide(&r2.select(&p).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 16: a divisor filter on the shared attributes replicates to the
    /// dividend.
    #[test]
    fn law16_divisor_selection_replication(r1 in ab_pairs(24), d in bc_pairs(10), k in 0..5i64) {
        let r1 = rel_ab(&r1);
        let r2 = rel_bc(&d);
        let p = Predicate::cmp_value("b", CompareOp::Lt, k);
        // Unlike Law 4, the great divide evaluates per divisor *group*; empty
        // groups simply disappear, so no extra assumption is needed — but an
        // entirely empty filtered divisor is still the degenerate case.
        prop_assume!(!r2.select(&p).unwrap().is_empty());
        let lhs = r1.great_divide(&r2.select(&p).unwrap()).unwrap();
        let rhs = r1
            .select(&p)
            .unwrap()
            .great_divide(&r2.select(&p).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Law 17: (r*1 × r**1) ÷* r2 = r*1 × (r**1 ÷* r2).
    #[test]
    fn law17_product_pushthrough(
        a1 in prop::collection::vec(0..4i64, 0..4),
        inner in ab_pairs(16),
        d in bc_pairs(8),
    ) {
        let r_star = Relation::from_rows(["a1"], a1.iter().map(|a| vec![*a])).unwrap();
        let r_star_star = rel_ab(&inner);
        let r2 = rel_bc(&d);
        let lhs = r_star
            .product(&r_star_star)
            .unwrap()
            .great_divide(&r2)
            .unwrap();
        let rhs = r_star
            .product(&r_star_star.great_divide(&r2).unwrap())
            .unwrap();
        prop_assert_eq!(lhs.conform_to(rhs.schema()).unwrap(), rhs);
    }

    /// Example 4: a selective equi-join against the quotient can be pushed
    /// into the dividend.
    #[test]
    fn example4_join_push_in(
        outer in prop::collection::vec(0..6i64, 0..5),
        inner in ab_pairs(20),
        d in bc_pairs(8),
    ) {
        let r_star = Relation::from_rows(["a1"], outer.iter().map(|a| vec![*a])).unwrap();
        let r_star_star = rel_ab(&inner);
        let r2 = rel_bc(&d);
        let join = Predicate::eq_attrs("a1", "a");
        let lhs = r_star
            .theta_join(&r_star_star.great_divide(&r2).unwrap(), &join)
            .unwrap();
        let rhs = r_star
            .theta_join(&r_star_star, &join)
            .unwrap()
            .great_divide(&r2)
            .unwrap();
        prop_assert_eq!(lhs.conform_to(rhs.schema()).unwrap(), rhs);
    }
}

// ---------------------------------------------------------------------------
// The rewrite engine preserves semantics on randomly generated catalogs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn rewrite_engine_preserves_q2_semantics(
        r1 in ab_pairs(30),
        d in b_values(6),
        k in 0..6i64,
    ) {
        let mut catalog = Catalog::new();
        catalog.register("r1", rel_ab(&r1));
        catalog.register("r2", rel_b(&d));
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("a", CompareOp::Lt, k))
            .build();
        let engine = RewriteEngine::with_default_rules();
        let ctx = RewriteContext::with_catalog(&catalog);
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        let report = plans_equivalent_on(&plan, &outcome.plan, &catalog).unwrap();
        prop_assert!(report.equivalent, "{}", report.describe());
    }

    #[test]
    fn rewrite_engine_preserves_great_divide_semantics(
        r1 in ab_pairs(30),
        d in bc_pairs(10),
        k in 0..4i64,
    ) {
        let mut catalog = Catalog::new();
        catalog.register("r1", rel_ab(&r1));
        catalog.register("r2", rel_bc(&d));
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("c", CompareOp::Lt, k))
            .select(Predicate::cmp_value("a", CompareOp::Gt, 0))
            .build();
        let engine = RewriteEngine::with_default_rules();
        let ctx = RewriteContext::with_catalog(&catalog);
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        let report = plans_equivalent_on(&plan, &outcome.plan, &catalog).unwrap();
        prop_assert!(report.equivalent, "{}", report.describe());
    }
}
