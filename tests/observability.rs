//! Integration tests of the observability layer (ISSUE 6): the per-operator
//! span tree every executor fills, the estimate-vs-actual `EXPLAIN ANALYZE`
//! report, and the engine's session metrics registry — exercised through
//! the public facade only.
//!
//! The core differential check: for every plan shape and every execution
//! path (row, columnar, streaming), the per-operator tree must be
//! *internally consistent* with the query-level aggregates the executors
//! have always reported — scans sum to `rows_scanned`, the root matches
//! `output_rows`, per-node probes sum to `probes` — and the tree must have
//! exactly one node per physical operator, labelled in
//! `PhysicalPlan::explain` pre-order.

use division::datagen::SuppliersPartsConfig;
use division::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
    );
    c.register(
        "others",
        relation! { ["s#", "p#"] => [1, 1], [4, 2], [5, 3] },
    );
    c.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    c.register("colors", relation! { ["color"] => ["blue"], ["red"] });
    c
}

/// The plan-shape sweep: one representative per operator family, plus the
/// collision shape (two identically-labelled filters) the old
/// `rows_per_operator` map could not tell apart.
fn plan_shapes() -> Vec<(&'static str, LogicalPlan)> {
    let blue_parts = || {
        PlanBuilder::scan("parts")
            .select(Predicate::eq_value("color", "blue"))
            .project(["p#"])
    };
    vec![
        ("scan", PlanBuilder::scan("supplies").build()),
        (
            "filter",
            PlanBuilder::scan("supplies")
                .select(Predicate::eq_value("p#", 2))
                .build(),
        ),
        (
            "project",
            PlanBuilder::scan("supplies").project(["s#"]).build(),
        ),
        (
            "stacked_identical_filters",
            PlanBuilder::scan("supplies")
                .select(Predicate::eq_value("p#", 2))
                .select(Predicate::eq_value("p#", 2))
                .build(),
        ),
        (
            "union",
            PlanBuilder::scan("supplies")
                .union(PlanBuilder::scan("others"))
                .build(),
        ),
        (
            "intersect",
            PlanBuilder::scan("supplies")
                .intersect(PlanBuilder::scan("others"))
                .build(),
        ),
        (
            "difference",
            PlanBuilder::scan("supplies")
                .difference(PlanBuilder::scan("others"))
                .build(),
        ),
        (
            "product",
            PlanBuilder::scan("supplies")
                .product(PlanBuilder::scan("colors"))
                .build(),
        ),
        (
            "natural_join",
            PlanBuilder::scan("supplies")
                .natural_join(PlanBuilder::scan("parts"))
                .build(),
        ),
        (
            "semi_join",
            PlanBuilder::scan("supplies")
                .semi_join(blue_parts())
                .build(),
        ),
        (
            "divide",
            PlanBuilder::scan("supplies").divide(blue_parts()).build(),
        ),
        (
            "great_divide",
            PlanBuilder::scan("supplies")
                .great_divide(PlanBuilder::scan("parts"))
                .build(),
        ),
        (
            "aggregate",
            PlanBuilder::scan("supplies")
                .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
                .build(),
        ),
    ]
}

/// Pre-order `(label)` walk of a physical plan — the `OperatorId` order.
fn preorder_labels(plan: &division::physical::PhysicalPlan) -> Vec<String> {
    let mut out = vec![plan.label()];
    for child in plan.children() {
        out.extend(preorder_labels(child));
    }
    out
}

fn assert_tree_consistent(
    path: &str,
    shape: &str,
    physical: &division::physical::PhysicalPlan,
    stats: &division::physical::ExecStats,
) {
    let ops = &stats.operators;
    assert_eq!(
        ops.len(),
        physical.operator_count(),
        "{path}/{shape}: one span per operator"
    );
    let labels = preorder_labels(physical);
    for (i, op) in ops.iter().enumerate() {
        assert_eq!(op.id.index(), i, "{path}/{shape}: ids are pre-order");
        assert_eq!(op.label, labels[i], "{path}/{shape}: labels line up");
        // rows_in is derived: the sum of the children's outputs.
        let from_children: usize = op.children.iter().map(|c| ops[c.index()].rows_out).sum();
        assert_eq!(op.rows_in, from_children, "{path}/{shape}: rows_in");
    }
    let scanned: usize = ops
        .iter()
        .filter(|op| op.label.starts_with("TableScan(") || op.label.starts_with("Values("))
        .map(|op| op.rows_out)
        .sum();
    assert_eq!(
        scanned, stats.rows_scanned,
        "{path}/{shape}: scan spans sum to rows_scanned"
    );
    assert_eq!(
        ops[0].rows_out, stats.output_rows,
        "{path}/{shape}: root span matches output_rows"
    );
    let probes: usize = ops.iter().map(|op| op.probes).sum();
    assert_eq!(
        probes, stats.probes,
        "{path}/{shape}: per-span probes sum to the aggregate"
    );
}

/// Drain a streaming execution of `physical` and return its stats.
fn stream_stats(
    physical: &division::physical::PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> division::physical::ExecStats {
    let mut exec = StreamExecutor::new(physical, catalog, config).unwrap();
    while exec.next_batch().unwrap().is_some() {}
    exec.finish()
}

#[test]
fn span_trees_reconcile_with_aggregates_on_every_path_and_shape() {
    let catalog = catalog();
    for (shape, logical) in plan_shapes() {
        let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let row = PlannerConfig::with_backend(ExecutionBackend::RowAtATime);
        let (_, row_stats) = execute_with_config(&physical, &catalog, &row).unwrap();
        assert_tree_consistent("row", shape, &physical, &row_stats);

        let col = PlannerConfig::with_backend(ExecutionBackend::Columnar);
        let (_, col_stats) = execute_with_config(&physical, &catalog, &col).unwrap();
        assert_tree_consistent("columnar", shape, &physical, &col_stats);

        let stats = stream_stats(&physical, &catalog, &PlannerConfig::default());
        assert_tree_consistent("streaming", shape, &physical, &stats);

        // The shape of the tree (labels) is identical across paths even
        // though probe counts and retained peaks legitimately differ.
        let shape_of = |s: &division::physical::ExecStats| {
            s.operators
                .iter()
                .map(|o| o.label.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(shape_of(&row_stats), shape_of(&col_stats), "{shape}");
        assert_eq!(shape_of(&row_stats), shape_of(&stats), "{shape}");
    }
}

#[test]
fn same_labelled_operators_keep_separate_spans() {
    // Two stacked identical filters: the deprecated label-keyed map merges
    // them into one entry; the span tree must not.
    let catalog = catalog();
    let logical = PlanBuilder::scan("supplies")
        .select(Predicate::eq_value("p#", 2))
        .select(Predicate::eq_value("p#", 2))
        .build();
    let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
    let stats = stream_stats(&physical, &catalog, &PlannerConfig::default());
    assert_eq!(stats.operators.len(), 3);
    assert_eq!(stats.operators[0].label, stats.operators[1].label);
    assert_ne!(stats.operators[0].id, stats.operators[1].id);
    // Both filters pass the same 3 rows, but they are attributed per node…
    assert_eq!(stats.operators[0].rows_out, 3);
    assert_eq!(stats.operators[1].rows_out, 3);
    // …while the label-keyed view lumps them together (2 labels, 3 nodes).
    assert_eq!(stats.rows_per_operator.len(), 2);
    assert_eq!(stats.rows_per_operator[&stats.operators[0].label], 6);
}

#[test]
fn early_terminated_cursors_report_partial_spans() {
    let mut c = Catalog::new();
    let rows: Vec<Vec<i64>> = (0..10_000).map(|i| vec![i, i % 7]).collect();
    c.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
    let engine = Engine::builder(c)
        .planner_config(PlannerConfig::default().batch_size(64))
        .build();
    let mut cursor = engine.query("SELECT a FROM big WHERE b = 3").unwrap();
    let first: Vec<_> = cursor.by_ref().take(1).collect();
    assert_eq!(first.len(), 1);
    let stats = cursor.finish_stats();
    assert!(stats.rows_scanned < 10_000, "take(1) stops the scan short");
    let scan = stats
        .operators
        .iter()
        .find(|op| op.label.starts_with("TableScan("))
        .expect("scan span exists");
    assert_eq!(scan.rows_out, stats.rows_scanned);
    assert!(scan.rows_out < 10_000, "the scan span is partial too");
    assert_eq!(stats.operators[0].rows_out, stats.output_rows);
}

#[test]
fn span_timing_is_gated_by_the_tracing_flag() {
    let catalog = catalog();
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();

    // Tracing off (the default): full attribution, zero clock reads.
    let untraced = stream_stats(&physical, &catalog, &PlannerConfig::default());
    assert!(
        untraced.operators.iter().all(|op| !op.timed()),
        "tracing off must record no wall time"
    );
    assert!(untraced.operators.iter().any(|op| op.rows_out > 0));

    // Tracing on: the same tree, now with spans.
    let traced = stream_stats(&physical, &catalog, &PlannerConfig::default().tracing(true));
    assert!(
        traced.operators.iter().any(|op| op.timed()),
        "tracing on must record wall time"
    );
    // The wall-clock fields are excluded from equality, so the traced and
    // untraced trees compare equal node for node.
    assert_eq!(untraced.operators, traced.operators);

    // The materializing paths honor the flag too.
    for backend in ExecutionBackend::ALL {
        let config = PlannerConfig::with_backend(backend).tracing(true);
        let (_, stats) = execute_with_config(&physical, &catalog, &config).unwrap();
        assert!(
            stats.operators.iter().any(|op| op.timed()),
            "{} backend traces when asked",
            backend.name()
        );
    }
}

#[test]
fn engine_with_tracing_times_ordinary_queries() {
    let engine = Engine::builder(catalog()).with_tracing(true).build();
    let output = engine
        .query_collect("SELECT s# FROM supplies WHERE p# = 2")
        .unwrap();
    assert!(output.stats.operators.iter().any(|op| op.timed()));

    let plain = Engine::new(catalog());
    let output = plain
        .query_collect("SELECT s# FROM supplies WHERE p# = 2")
        .unwrap();
    assert!(
        output.stats.operators.iter().all(|op| !op.timed()),
        "plain queries default to tracing off"
    );
}

const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";

#[test]
fn explain_analyze_lines_up_estimates_and_actuals() {
    // Tracing stays off on the engine; explain_analyze forces it on for
    // its one execution.
    let engine = Engine::new(catalog());
    let analyzed = engine.explain_analyze(Q2).unwrap();
    let stats = analyzed.stats.as_ref().expect("analyze measures stats");
    let operators = analyzed.operator_stats().expect("span tree present");
    assert_eq!(operators.len(), analyzed.physical.operator_count());
    assert_eq!(analyzed.estimated_rows.len(), operators.len());
    assert!(
        operators.iter().any(|op| op.timed()),
        "analyze always times"
    );
    assert!(operators.iter().any(|op| op.probes > 0), "divide probes");
    let errors = analyzed.estimation_errors().expect("errors computable");
    assert!(errors.iter().all(|&e| e >= 1.0), "q-error is ≥ 1");

    let rendered = analyzed.to_string();
    assert!(rendered.contains("execution stats:"));
    assert!(rendered.contains("executed via:        streaming executor (batch_size="));
    assert!(rendered.contains("operators executed:"));
    assert!(rendered.contains("per-operator stats (est from cost model, err = q-error):"));
    for (i, op) in operators.iter().enumerate() {
        assert!(
            rendered.contains(&format!(
                "{} rows={} est_rows={}",
                op.label,
                op.rows_out,
                analyzed.estimated_rows[i].round() as u64
            )),
            "annotated line for {} present",
            op.label
        );
    }
    assert!(rendered.contains(" time="));
    assert!(rendered.contains(" probes="));
    assert!(rendered.contains(" resident="));
    assert_eq!(stats.output_rows, 2);

    // Plain explain carries the estimates but no measured spans.
    let explained = engine.explain(Q2).unwrap();
    assert_eq!(
        explained.estimated_rows.len(),
        explained.physical.operator_count()
    );
    assert!(explained.operator_stats().is_none());
    assert!(explained.estimation_errors().is_none());
    assert!(!explained.to_string().contains("per-operator stats"));
}

#[test]
fn engine_metrics_count_queries_rows_and_laws() {
    let engine = Engine::new(catalog());
    assert_eq!(engine.metrics().queries_executed, 0);

    let output = engine.query_collect(Q2).unwrap();
    assert_eq!(output.relation.len(), 2);
    engine.query("SELECT s# FROM supplies").unwrap(); // dropped unread
    let snapshot = engine.metrics();
    assert_eq!(snapshot.queries_executed, 2);
    assert_eq!(snapshot.rows_returned, 2, "dropped cursor returned no rows");
    assert_eq!(
        snapshot.latency_buckets.iter().sum::<u64>(),
        2,
        "every execution lands in exactly one latency bucket"
    );
    assert!(snapshot.execute_ns > 0);
    assert!(snapshot.parse_ns > 0);

    // A rewriting query credits its laws.
    engine
        .query_collect(
            "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
             WHERE color = 'blue'",
        )
        .unwrap();
    let snapshot = engine.metrics();
    assert!(
        !snapshot.law_applications.is_empty(),
        "law applications are tallied"
    );
    assert!(snapshot.optimize_ns > 0);

    // JSON and text renderings agree on the headline counter.
    assert!(snapshot.to_json().contains("\"queries_executed\": 3"));
    assert!(snapshot.to_string().contains("queries executed:      3"));
}

#[test]
fn prepared_statement_cache_counts_hits_and_misses() {
    let engine = Engine::new(catalog());
    let first = engine.prepare(Q2).unwrap();
    let second = engine.prepare(Q2).unwrap();
    assert_eq!(engine.compile_count(), 1, "second prepare is a cache hit");
    assert!(
        Arc::ptr_eq(first.plan(), second.plan()),
        "cached statements share one compiled plan"
    );
    let snapshot = engine.metrics();
    assert_eq!(snapshot.statements_prepared, 2);
    assert_eq!(snapshot.prepared_cache_hits, 1);
    assert_eq!(snapshot.prepared_cache_misses, 1);

    // Catalog mutation invalidates the cached entry: the next prepare
    // recompiles (a miss), and the stale statement refuses to run.
    engine.mutate_catalog(|c| {
        c.register("extra", relation! { ["x"] => [1] });
    });
    let third = engine.prepare(Q2).unwrap();
    assert_eq!(engine.compile_count(), 2);
    assert!(!Arc::ptr_eq(first.plan(), third.plan()));
    let snapshot = engine.metrics();
    assert_eq!(snapshot.prepared_cache_hits, 1);
    assert_eq!(snapshot.prepared_cache_misses, 2);
}

use std::sync::Arc;
use std::time::Instant;

/// Median wall time of `reps` runs of `f`.
fn median_time(reps: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        f();
        times.push(started.elapsed());
    }
    times.sort();
    times[reps / 2]
}

#[test]
fn tracing_off_costs_no_measurable_overhead() {
    // The instrumentation claim of ISSUE 6: with tracing off the executors
    // read no clocks, so a full drain must not be slower than the traced
    // drain of the same plan (the traced run does strictly more work).
    // Interleaved medians keep the comparison robust to scheduler noise.
    let data = division::datagen::suppliers_parts::generate(&SuppliersPartsConfig {
        suppliers: 4_000,
        parts: 50,
        coverage: 0.5,
        ..SuppliersPartsConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::cmp_value("p#", CompareOp::Lt, 25))
                .project(["p#"]),
        )
        .build();
    let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
    let untraced_config = PlannerConfig::default();
    let traced_config = PlannerConfig::default().tracing(true);
    // Warm up both paths once, then interleave.
    stream_stats(&physical, &catalog, &untraced_config);
    stream_stats(&physical, &catalog, &traced_config);
    let untraced = median_time(9, || {
        stream_stats(&physical, &catalog, &untraced_config);
    });
    let traced = median_time(9, || {
        stream_stats(&physical, &catalog, &traced_config);
    });
    // Generous bound: the untraced median may exceed the traced one only
    // by scheduling noise, never systematically.
    assert!(
        untraced.as_secs_f64() <= traced.as_secs_f64() * 1.25,
        "untraced drain ({untraced:?}) should not exceed traced drain ({traced:?}) by >25%"
    );
}
