//! End-to-end SQL tests through the [`Engine`] facade: parse → translate →
//! optimize (laws + cost model) → plan → execute, on both the paper's
//! textbook database and generated workloads.

use div_bench::suppliers_parts_catalog;
use div_sql::{parse_query, translate_query, Error as SqlError, Explain};
use division::prelude::*;
use std::error::Error as _;

const Q1: &str = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";
const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
const Q2_PARAM: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                        (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";
const Q3: &str = "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
                  WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
                  NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))";

fn textbook_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        relation! {
            ["s#", "p#"] =>
            [1, 1], [1, 2],
            [2, 1], [2, 2], [2, 3],
            [3, 2], [3, 3],
        },
    );
    c.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    c
}

fn textbook_engine() -> Engine {
    Engine::new(textbook_catalog())
}

#[test]
fn q1_is_a_great_divide_and_produces_per_color_suppliers() {
    let engine = textbook_engine();
    let explain = engine.explain(Q1).unwrap();
    assert!(explain.logical.contains_division());
    assert!(explain.physical.explain().contains("GreatDivide"));
    let output = engine.query_collect(Q1).unwrap();
    let expected = relation! {
        ["s#", "color"] =>
        [1, "blue"], [2, "blue"],
        [2, "red"], [3, "red"],
    };
    assert_eq!(output.relation, expected);
}

#[test]
fn q2_is_a_small_divide_over_the_derived_divisor() {
    let engine = textbook_engine();
    let explain = engine.explain(Q2).unwrap();
    assert!(format!("{}", explain.logical).contains("SmallDivide"));
    assert_eq!(
        engine.query_collect(Q2).unwrap().relation,
        relation! { ["s#"] => [1], [2] }
    );
}

#[test]
fn q3_not_exists_formulation_matches_q1() {
    let engine = textbook_engine();
    // The detection rewrites Q3 into a division plan ...
    let explain = engine.explain(Q3).unwrap();
    assert!(explain.logical.contains_division());
    // ... that produces the same relation as the DIVIDE BY formulation.
    assert_eq!(
        engine.query_collect(Q3).unwrap().relation,
        engine.query_collect(Q1).unwrap().relation
    );
}

#[test]
fn q1_q2_q3_agree_on_generated_workloads() {
    for (suppliers, parts, coverage) in [(30, 12, 0.7), (60, 20, 0.5), (40, 16, 0.9)] {
        let engine = Engine::new(suppliers_parts_catalog(suppliers, parts, coverage));
        assert_eq!(
            engine.query_collect(Q1).unwrap().relation,
            engine.query_collect(Q3).unwrap().relation,
            "Q1 and Q3 disagree at scale ({suppliers}, {parts}, {coverage})"
        );

        // Q2 must agree with Q1 restricted to blue.
        let q1_blue: Relation = engine
            .query_collect(Q1)
            .unwrap()
            .relation
            .select(&Predicate::eq_value("color", "blue"))
            .unwrap()
            .project(&["s#"])
            .unwrap();
        assert_eq!(engine.query_collect(Q2).unwrap().relation, q1_blue);
    }
}

#[test]
fn sql_plans_run_through_the_physical_layer_with_every_algorithm() {
    let catalog = suppliers_parts_catalog(40, 15, 0.6);
    let logical = translate_query(&parse_query(Q2).unwrap(), &catalog).unwrap();
    let expected = evaluate(&logical, &catalog).unwrap();
    for algorithm in DivisionAlgorithm::ALL {
        let engine = Engine::builder(catalog.clone())
            .planner_config(PlannerConfig::with_division_algorithm(algorithm))
            .build();
        let explain = engine.explain(Q2).unwrap();
        assert!(
            explain.physical.explain().contains(algorithm.name()),
            "planner config must drive the division algorithm ({})",
            algorithm.name()
        );
        assert_eq!(
            engine.query_collect(Q2).unwrap().relation,
            expected,
            "{}",
            algorithm.name()
        );
    }
}

/// The acceptance criterion of the `Engine` redesign: the optimizer runs by
/// default, a Q2-style divide is *rewritten* (laws fired are listed in the
/// EXPLAIN report), and the rewritten plan's result is byte-identical to the
/// unoptimized plan's.
#[test]
fn engine_runs_the_optimizer_by_default_and_rewrites_divides() {
    let catalog = suppliers_parts_catalog(40, 15, 0.6);
    // A selection above the quotient: Laws 14/15 push it into the division
    // inputs, which is exactly the rewrite the paper motivates.
    let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
               WHERE color = 'blue'";

    let optimizing = Engine::new(catalog.clone());
    assert!(
        optimizing.optimizer_enabled(),
        "optimizer must default to ON"
    );
    let explain = optimizing.explain(sql).unwrap();
    assert!(
        explain.rewritten(),
        "expected at least one law to fire, got none"
    );
    assert!(
        explain.laws_fired().iter().any(|law| law.contains("law-")),
        "EXPLAIN must list the laws that fired, got {:?}",
        explain.laws_fired()
    );
    assert_ne!(
        explain.logical, explain.optimized,
        "the executed plan must actually differ from the translated plan"
    );
    // The Display rendering names the fired laws (stable contract).
    let rendered = explain.to_string();
    for law in explain.laws_fired() {
        assert!(rendered.contains(law), "rendered EXPLAIN must name {law}");
    }

    // Byte-identical result vs the unoptimized pipeline.
    let raw = Engine::builder(catalog).without_optimizer().build();
    assert_eq!(
        optimizing.query_collect(sql).unwrap().relation,
        raw.query_collect(sql).unwrap().relation
    );
}

#[test]
fn prepared_statements_reuse_one_compilation_across_bindings() {
    let engine = textbook_engine();
    let stmt = engine.prepare(Q2_PARAM).unwrap();
    assert_eq!(engine.compile_count(), 1);

    // Three executions with different bindings, no recompilation.
    let blue = stmt
        .execute_collect(&engine, &Params::new().bind("color", "blue"))
        .unwrap();
    assert_eq!(blue.relation, relation! { ["s#"] => [1], [2] });
    let red = stmt
        .execute_collect(&engine, &Params::new().bind("color", "red"))
        .unwrap();
    assert_eq!(red.relation, relation! { ["s#"] => [2], [3] });
    // Empty divisor: universal quantification over the empty set holds for
    // every supplier.
    let green = stmt
        .execute_collect(&engine, &Params::new().bind("color", "green"))
        .unwrap();
    assert_eq!(green.relation, relation! { ["s#"] => [1], [2], [3] });
    assert_eq!(
        engine.compile_count(),
        1,
        "prepared executions must not redo parse/translate/optimize/plan"
    );

    // Plan identity: every execution binds into the same cached template.
    let before = std::sync::Arc::as_ptr(stmt.plan());
    stmt.execute_collect(&engine, &Params::new().bind("color", "blue"))
        .unwrap();
    assert_eq!(std::sync::Arc::as_ptr(stmt.plan()), before);

    // The ad-hoc path answers the same bytes as the prepared path.
    let adhoc = engine.query_collect(Q2).unwrap();
    assert_eq!(adhoc.relation, blue.relation);
}

#[test]
fn prepared_statements_go_stale_when_the_catalog_changes() {
    let engine = textbook_engine();
    let stmt = engine.prepare(Q2).unwrap();
    engine.mutate_catalog(|c| {
        c.register("parts", relation! { ["p#", "color"] => [1, "blue"] });
    });
    let err = stmt.execute_collect(&engine, &Params::new()).unwrap_err();
    assert!(matches!(err, SqlError::StalePlan { .. }), "got {err}");
}

#[test]
fn parse_errors_keep_their_structured_source() {
    let engine = textbook_engine();
    let err = engine.query_collect("SELECT FROM WHERE").unwrap_err();
    // Assert the variant, not a substring: the ParseError must survive as a
    // typed source, not be flattened into a message.
    let SqlError::Parse(parse_err) = &err else {
        panic!("expected Error::Parse, got {err:?}");
    };
    assert!(!parse_err.message.is_empty());
    let source = err.source().expect("Error::Parse chains its source");
    assert!(source.downcast_ref::<ParseError>().is_some());
}

#[test]
fn unsupported_sql_is_rejected_with_errors() {
    let engine = textbook_engine();
    // Non-equi ON clause.
    let err = engine
        .query_collect("SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#")
        .unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)));
    // Unknown table: the ExprError variant survives inside the Plan variant.
    let err = engine.query_collect("SELECT x FROM missing").unwrap_err();
    assert!(matches!(
        err,
        SqlError::Plan(div_expr::ExprError::UnknownTable { .. })
    ));
    // A correlated subquery that is not the universal quantification pattern.
    let err = engine
        .query_collect(
            "SELECT s# FROM supplies AS s1 WHERE NOT EXISTS \
             (SELECT * FROM parts AS p1 WHERE p1.p# = s1.p#)",
        )
        .unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)));
}

#[test]
fn explain_is_structured_and_analyze_measures() {
    let engine = textbook_engine();
    let explain: Explain = engine.explain_analyze(Q2).unwrap();
    let stats = explain.stats.as_ref().expect("analyze carries stats");
    assert_eq!(stats.output_rows, 2);
    let rendered = explain.to_string();
    for section in [
        "EXPLAIN ",
        "logical plan (before rewrite):",
        "estimated cost:",
        "physical plan (execution=streaming, batch_size=1024, parallelism=1, \
         compat backend=row):",
        "execution stats:",
    ] {
        assert!(rendered.contains(section), "missing section {section:?}");
    }
}

#[test]
fn engine_serves_every_backend_and_parallelism() {
    let catalog = textbook_catalog();
    let expected = relation! { ["s#"] => [1], [2] };
    for backend in ExecutionBackend::ALL {
        for parallelism in [1usize, 4] {
            let engine = Engine::builder(catalog.clone())
                .planner_config(PlannerConfig::with_backend(backend).parallelism(parallelism))
                .build();
            let output = engine.query_collect(Q2).unwrap();
            assert_eq!(
                output.relation,
                expected,
                "backend {} parallelism {parallelism}",
                backend.name()
            );
            assert_eq!(output.stats.output_rows, 2);
        }
    }
}
