//! End-to-end SQL tests: parse → translate → (rewrite) → execute, on both the
//! paper's textbook database and generated workloads.

use div_bench::suppliers_parts_catalog;
use div_sql::{parse_query, translate_query};
use division::prelude::*;

const Q1: &str = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";
const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
const Q3: &str = "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
                  WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
                  NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))";

fn textbook_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        relation! {
            ["s#", "p#"] =>
            [1, 1], [1, 2],
            [2, 1], [2, 2], [2, 3],
            [3, 2], [3, 3],
        },
    );
    c.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    c
}

#[test]
fn q1_is_a_great_divide_and_produces_per_color_suppliers() {
    let catalog = textbook_catalog();
    let plan = translate_query(&parse_query(Q1).unwrap(), &catalog).unwrap();
    assert!(plan.contains_division());
    let result = evaluate(&plan, &catalog).unwrap();
    let expected = relation! {
        ["s#", "color"] =>
        [1, "blue"], [2, "blue"],
        [2, "red"], [3, "red"],
    };
    assert_eq!(result, expected);
}

#[test]
fn q2_is_a_small_divide_over_the_derived_divisor() {
    let catalog = textbook_catalog();
    let plan = translate_query(&parse_query(Q2).unwrap(), &catalog).unwrap();
    assert!(format!("{plan}").contains("SmallDivide"));
    assert_eq!(
        evaluate(&plan, &catalog).unwrap(),
        relation! { ["s#"] => [1], [2] }
    );
}

#[test]
fn q3_not_exists_formulation_matches_q1() {
    let catalog = textbook_catalog();
    let q1 = translate_query(&parse_query(Q1).unwrap(), &catalog).unwrap();
    let q3 = translate_query(&parse_query(Q3).unwrap(), &catalog).unwrap();
    // The detection rewrites Q3 into a division plan ...
    assert!(q3.contains_division());
    // ... equivalent to the DIVIDE BY formulation.
    let report = plans_equivalent_on(&q1, &q3, &catalog).unwrap();
    assert!(report.equivalent, "{}", report.describe());
}

#[test]
fn q1_q2_q3_agree_on_generated_workloads() {
    for (suppliers, parts, coverage) in [(30, 12, 0.7), (60, 20, 0.5), (40, 16, 0.9)] {
        let catalog = suppliers_parts_catalog(suppliers, parts, coverage);
        let q1 = translate_query(&parse_query(Q1).unwrap(), &catalog).unwrap();
        let q3 = translate_query(&parse_query(Q3).unwrap(), &catalog).unwrap();
        let report = plans_equivalent_on(&q1, &q3, &catalog).unwrap();
        assert!(report.equivalent, "{}", report.describe());

        // Q2 must agree with Q1 restricted to blue.
        let q2 = translate_query(&parse_query(Q2).unwrap(), &catalog).unwrap();
        let q1_blue = PlanBuilder::from_plan(q1)
            .select(Predicate::eq_value("color", "blue"))
            .project(["s#"])
            .build();
        let report = plans_equivalent_on(&q2, &q1_blue, &catalog).unwrap();
        assert!(report.equivalent, "{}", report.describe());
    }
}

#[test]
fn sql_plans_run_through_the_physical_layer_with_every_algorithm() {
    let catalog = suppliers_parts_catalog(40, 15, 0.6);
    let logical = translate_query(&parse_query(Q2).unwrap(), &catalog).unwrap();
    let expected = evaluate(&logical, &catalog).unwrap();
    for algorithm in DivisionAlgorithm::ALL {
        let physical =
            plan_query(&logical, &PlannerConfig::with_division_algorithm(algorithm)).unwrap();
        assert_eq!(
            execute(&physical, &catalog).unwrap(),
            expected,
            "{}",
            algorithm.name()
        );
    }
}

#[test]
fn sql_plans_benefit_from_the_rewrite_engine() {
    // A filter above the DIVIDE BY quotient gets pushed into the dividend.
    let catalog = suppliers_parts_catalog(40, 15, 0.6);
    let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
               WHERE color = 'blue'";
    let logical = translate_query(&parse_query(sql).unwrap(), &catalog).unwrap();
    let engine = RewriteEngine::with_default_rules();
    let ctx = RewriteContext::with_catalog(&catalog);
    let outcome = engine.rewrite(&logical, &ctx).unwrap();
    assert!(
        outcome.applied.iter().any(|a| a.rule.contains("law-15")),
        "expected Law 15 to fire, applied: {:?}",
        outcome.applied.iter().map(|a| &a.rule).collect::<Vec<_>>()
    );
    let report = plans_equivalent_on(&logical, &outcome.plan, &catalog).unwrap();
    assert!(report.equivalent, "{}", report.describe());
}

#[test]
fn unsupported_sql_is_rejected_with_errors() {
    let catalog = textbook_catalog();
    // Non-equi ON clause.
    let bad =
        parse_query("SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#").unwrap();
    assert!(translate_query(&bad, &catalog).is_err());
    // Unknown table.
    let bad = parse_query("SELECT x FROM missing").unwrap();
    assert!(translate_query(&bad, &catalog).is_err());
    // A correlated subquery that is not the universal quantification pattern.
    let bad = parse_query(
        "SELECT s# FROM supplies AS s1 WHERE NOT EXISTS \
         (SELECT * FROM parts AS p1 WHERE p1.p# = s1.p#)",
    )
    .unwrap();
    assert!(translate_query(&bad, &catalog).is_err());
}
