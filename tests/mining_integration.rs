//! End-to-end frequent itemset discovery (Section 3): the Apriori loop with
//! great-divide support counting finds the planted itemsets of the generated
//! market-basket workloads, and every counting strategy agrees.

use div_datagen::baskets::{self, BasketConfig};
use div_mining::{mine_frequent_itemsets, AprioriConfig, SupportCounting};
use div_physical::great_divide::GreatDivideAlgorithm;
use division::prelude::*;

fn workload(seed: u64) -> (Relation, Vec<Vec<i64>>, usize) {
    let config = BasketConfig {
        transactions: 300,
        items: 60,
        avg_length: 6,
        skew: 1.0,
        planted_itemsets: 3,
        planted_size: 3,
        planted_probability: 0.4,
        seed,
    };
    let data = baskets::generate(&config);
    (data.transactions, data.planted, config.transactions)
}

#[test]
fn planted_itemsets_are_discovered_with_great_divide_counting() {
    let (transactions, planted, n_transactions) = workload(11);
    let result = mine_frequent_itemsets(
        &transactions,
        &AprioriConfig {
            min_support: n_transactions / 5,
            max_size: 3,
            counting: SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
        },
    )
    .unwrap();
    for itemset in &planted {
        assert!(
            result.contains(itemset),
            "planted itemset {itemset:?} not found; found {:?}",
            result.itemsets
        );
    }
    assert!(result.iterations >= 3);
    assert!(result.stats.probes > 0);
}

#[test]
fn all_counting_strategies_find_the_same_itemsets() {
    let (transactions, _, n_transactions) = workload(23);
    let strategies = [
        SupportCounting::PerCandidateScan,
        SupportCounting::GreatDivide(GreatDivideAlgorithm::GroupLoop),
        SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
        SupportCounting::GreatDivide(GreatDivideAlgorithm::SortMerge),
    ];
    let config = |counting| AprioriConfig {
        min_support: n_transactions / 6,
        max_size: 3,
        counting,
    };
    let reference = mine_frequent_itemsets(&transactions, &config(strategies[0])).unwrap();
    assert!(!reference.itemsets.is_empty());
    for strategy in &strategies[1..] {
        let result = mine_frequent_itemsets(&transactions, &config(*strategy)).unwrap();
        assert_eq!(
            result.itemsets,
            reference.itemsets,
            "strategy {} disagrees",
            strategy.name()
        );
    }
}

#[test]
fn support_counting_is_a_single_great_divide_plus_group_count() {
    // The quotient-then-count formulation of Section 3 expressed as a logical
    // plan over the catalog, compared against the mining crate's counts.
    let (transactions, planted, _) = workload(37);
    let mut catalog = Catalog::new();
    catalog.register("transactions", transactions.clone());
    catalog.register("candidates", baskets::candidates_relation(&planted));

    let plan = PlanBuilder::scan("transactions")
        .great_divide(PlanBuilder::scan("candidates"))
        .group_aggregate(["itemset"], [AggregateCall::count("tid", "support")])
        .build();
    let support_table = evaluate(&plan, &catalog).unwrap();

    let candidate_map: std::collections::BTreeMap<i64, Vec<i64>> = planted
        .iter()
        .enumerate()
        .map(|(i, items)| (i as i64, items.clone()))
        .collect();
    let (counts, _) = div_mining::count_support(
        &transactions,
        &candidate_map,
        SupportCounting::GreatDivide(GreatDivideAlgorithm::GroupLoop),
    )
    .unwrap();
    for tuple in support_table.tuples() {
        let itemset = tuple.values()[0].as_int().unwrap();
        let support = tuple.values()[1].as_int().unwrap() as usize;
        assert_eq!(counts[&itemset], support);
    }
}

#[test]
fn raising_min_support_shrinks_the_result_monotonically() {
    let (transactions, _, n_transactions) = workload(51);
    let counting = SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets);
    let mut previous = usize::MAX;
    for divisor in [10, 5, 3, 2] {
        let result = mine_frequent_itemsets(
            &transactions,
            &AprioriConfig {
                min_support: n_transactions / divisor,
                max_size: 3,
                counting,
            },
        )
        .unwrap();
        assert!(result.itemsets.len() <= previous);
        previous = result.itemsets.len();
    }
}
