//! Differential and adversarial tests for the `div-storage` columnar table
//! format.
//!
//! * **Round trip** — random relations mixing every storable value kind
//!   (NULL, bool, int, low-cardinality dictionary strings, high-cardinality
//!   strings) survive `TableWriter` → `TableReader` byte-identically at
//!   arbitrary chunk geometries, including the empty table.
//! * **Corruption** — flipping *any single byte* of a written file surfaces
//!   as a typed [`StorageError`] (checksum mismatch, bad magic, corrupt
//!   structure…), never a panic and never silently wrong data. Truncations
//!   at every length are rejected the same way.
//! * **Zone maps** — a scan under a pushed-down predicate skips exactly the
//!   chunks whose min/max zones exclude it, and still returns exactly the
//!   matching rows.

use div_algebra::{relation, CompareOp, Predicate, Relation, Value};
use div_storage::{TableReader, TableWriter};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique throwaway path under the OS temp dir (tests run concurrently
/// in one process, and several processes may share the machine).
fn temp_path(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "div_storage_format_{}_{tag}_{n}.divcol",
        std::process::id()
    ))
}

/// Remove the file on every exit path, assertion failures included.
struct RemoveOnDrop(std::path::PathBuf);

impl Drop for RemoveOnDrop {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Decode one generated `(kind, payload)` pair into a concrete value. The
/// kinds cover everything the codec stores: NULL, bool, int, strings that
/// dictionary-encode well (7 distinct), and strings that do not.
fn value_for(kind: u32, payload: i64) -> Value {
    match kind % 5 {
        0 => Value::Null,
        1 => Value::Bool(payload % 2 == 0),
        2 => Value::Int(payload),
        3 => Value::str(format!("tag-{}", payload.rem_euclid(7))),
        _ => Value::str(format!("unique-{payload}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// `Relation -> file -> Relation` is lossless for every mix of value
    /// kinds and every chunk size, and the footer row count matches.
    #[test]
    fn file_roundtrip_is_lossless(
        rows in prop::collection::vec((0u32..5, -50i64..50, 0u32..5, -50i64..50), 0..60),
        chunk_rows in 1usize..17,
    ) {
        let relation = Relation::from_rows(
            ["a", "b"],
            rows.iter().map(|&(k1, p1, k2, p2)| vec![value_for(k1, p1), value_for(k2, p2)]),
        )
        .unwrap();
        let path = temp_path("roundtrip");
        let _cleanup = RemoveOnDrop(path.clone());
        TableWriter::write_relation(&path, &relation, chunk_rows).unwrap();
        let reader = TableReader::open(&path).unwrap();
        prop_assert_eq!(reader.schema(), relation.schema());
        prop_assert_eq!(reader.row_count(), relation.len());
        prop_assert_eq!(reader.to_relation().unwrap(), relation);
    }
}

#[test]
fn empty_table_roundtrips() {
    let path = temp_path("empty");
    let _cleanup = RemoveOnDrop(path.clone());
    let empty = Relation::empty(div_algebra::Schema::new(["a", "b"]).unwrap());
    TableWriter::write_relation(&path, &empty, 4).unwrap();
    let reader = TableReader::open(&path).unwrap();
    assert_eq!(reader.row_count(), 0);
    assert_eq!(reader.chunk_count(), 0);
    assert_eq!(reader.to_relation().unwrap(), empty);
}

#[test]
fn every_flipped_byte_surfaces_as_a_typed_error() {
    let path = temp_path("flip");
    let _cleanup = RemoveOnDrop(path.clone());
    let relation = relation! {
        ["a", "b"] => [1, "x"], [2, "y"], [3, "x"], [4, "z"], [5, "y"], [6, "w"]
    };
    TableWriter::write_relation(&path, &relation, 2).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert_eq!(
        TableReader::open(&path).unwrap().to_relation().unwrap(),
        relation,
        "pristine file must read back"
    );
    for i in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[i] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        // Every byte of the file is covered by a check: leading magic,
        // chunk CRCs, footer CRC, or the trailer fields. A full read must
        // therefore fail — and fail as a typed error, not a panic.
        let outcome = TableReader::open(&path).and_then(|r| r.to_relation());
        assert!(
            outcome.is_err(),
            "flipped byte {i} of {} went undetected",
            pristine.len()
        );
    }
}

#[test]
fn truncations_at_every_length_are_rejected() {
    let path = temp_path("truncate");
    let _cleanup = RemoveOnDrop(path.clone());
    let relation = relation! { ["a"] => [1], [2], [3], [4] };
    TableWriter::write_relation(&path, &relation, 2).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).unwrap();
        let outcome = TableReader::open(&path).and_then(|r| r.to_relation());
        assert!(
            outcome.is_err(),
            "truncation to {len} bytes went undetected"
        );
    }
}

#[test]
fn zone_maps_skip_excluded_chunks_and_keep_matching_rows() {
    let path = temp_path("zones");
    let _cleanup = RemoveOnDrop(path.clone());
    // Values arrive sorted, so each 8-row chunk owns a disjoint `a` range
    // and a selective predicate can prove most chunks irrelevant.
    let relation = Relation::from_rows(["a", "b"], (0..64i64).map(|i| vec![i, i % 5])).unwrap();
    TableWriter::write_relation(&path, &relation, 8).unwrap();
    let reader = TableReader::open(&path).unwrap();
    assert_eq!(reader.chunk_count(), 8);

    let predicate = Predicate::cmp_value("a", CompareOp::Lt, 8);
    let mut cursor = reader.scan(Some(&predicate)).unwrap();
    let mut matched = 0usize;
    while let Some(chunk) = cursor.next_chunk().unwrap() {
        for row in 0..chunk.num_rows() {
            // Surviving chunks may still hold non-matching rows; the scan
            // contract is only "never skips a matching row".
            if let Some(Value::Int(a)) = chunk.row(row).get(0) {
                if *a < 8 {
                    matched += 1;
                }
            }
        }
    }
    assert_eq!(matched, 8, "all matching rows must surface");
    assert_eq!(cursor.chunks_skipped(), 7, "seven of eight chunks excluded");

    // An unfiltered scan skips nothing.
    let mut cursor = reader.scan(None).unwrap();
    let mut total = 0usize;
    while let Some(chunk) = cursor.next_chunk().unwrap() {
        total += chunk.num_rows();
    }
    assert_eq!(total, 64);
    assert_eq!(cursor.chunks_skipped(), 0);
}
