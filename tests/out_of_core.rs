//! Out-of-core differential suite: the spilling hybrid hash operators must
//! be *invisible* except in the statistics.
//!
//! * Across the eleven differential plan shapes, executions under a
//!   resident-row budget with `spill_to_disk` produce relations
//!   byte-identical to the unbudgeted in-memory run — at an effectively
//!   unlimited budget (spill compiled but never triggered), at the measured
//!   in-memory peak (exact fit, proactive spilling kicks in), and at the
//!   spilled run's own peak (tiny). In every budgeted run,
//!   `peak_resident_rows` stays at or under the budget.
//! * A dividend far larger than the budget forces *recursive*
//!   re-partitioning: `spill_rows_written` exceeding the input cardinality
//!   is the observable evidence that partitions were rewritten at deeper
//!   levels, and the quotient still matches the reference evaluation.
//! * Attached file-backed tables larger than the budget stream through a
//!   served `QUERY` chunk-at-a-time, and `EXPLAIN ANALYZE` surfaces the
//!   zone-map chunk skipping.

use div_algebra::{relation, AggregateCall, CompareOp, Predicate, Relation};
use div_expr::{Catalog, LogicalPlan, PlanBuilder};
use div_physical::{execute_on_backend, plan_query, ExecutionBackend, PlannerConfig};
use div_sql::{Engine, QueryOutput};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_path(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "div_out_of_core_{}_{tag}_{n}.divcol",
        std::process::id()
    ))
}

struct RemoveOnDrop(std::path::PathBuf);

impl Drop for RemoveOnDrop {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A catalog big enough that blocking operators hold real state: 60
/// dividend rows, a 3-element divisor, a 10-row grouped divisor.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        Relation::from_rows(
            ["s#", "p#"],
            (0..12i64).flat_map(|s| (0..5i64).map(move |p| vec![s, (s + p) % 6])),
        )
        .unwrap(),
    );
    c.register("wanted", relation! { ["p#"] => [1], [2], [3] });
    c.register(
        "grouped",
        Relation::from_rows(["p#", "c"], (0..10i64).map(|i| vec![i % 5, i % 3])).unwrap(),
    );
    c
}

/// The same eleven plan shapes the backend-differential property sweeps
/// (`tests/physical_vs_reference.rs`), one per operator family.
fn shapes() -> Vec<LogicalPlan> {
    vec![
        PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("wanted"))
            .build(),
        PlanBuilder::scan("supplies")
            .select(Predicate::cmp_value("s#", CompareOp::Lt, 9))
            .divide(PlanBuilder::scan("wanted"))
            .project(["s#"])
            .build(),
        PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("grouped"))
            .build(),
        PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("wanted"))
            .project(["s#", "p#"])
            .build(),
        PlanBuilder::scan("supplies")
            .semi_join(PlanBuilder::scan("wanted"))
            .union(PlanBuilder::scan("supplies").anti_semi_join(PlanBuilder::scan("wanted")))
            .build(),
        PlanBuilder::scan("supplies")
            .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
            .project(["s#"])
            .build(),
        PlanBuilder::scan("supplies")
            .rename([("p#", "x")])
            .difference(
                PlanBuilder::scan("supplies")
                    .rename([("p#", "x")])
                    .select(Predicate::cmp_value("x", CompareOp::GtEq, 3)),
            )
            .build(),
        PlanBuilder::scan("supplies")
            .intersect(PlanBuilder::scan("supplies").select(Predicate::cmp_value(
                "p#",
                CompareOp::Lt,
                3,
            )))
            .build(),
        PlanBuilder::scan("wanted")
            .rename([("p#", "x")])
            .product(PlanBuilder::scan("wanted").rename([("p#", "y")]))
            .build(),
        PlanBuilder::scan("supplies")
            .theta_join(
                PlanBuilder::scan("wanted").rename([("p#", "w")]),
                Predicate::cmp_attrs("p#", CompareOp::LtEq, "w"),
            )
            .build(),
        PlanBuilder::scan("supplies")
            .group_aggregate(
                ["s#"],
                [
                    AggregateCall::count("p#", "n"),
                    AggregateCall::sum("p#", "total"),
                ],
            )
            .build(),
    ]
}

/// Run `logical` through a streaming `Cursor` under the given budget with
/// spilling enabled.
fn run_spilling(catalog: &Catalog, logical: &LogicalPlan, budget: usize) -> QueryOutput {
    let config = PlannerConfig::default()
        .batch_size(4)
        .memory_budget_rows(budget)
        .spill_to_disk(true);
    let engine = Engine::builder(catalog.clone())
        .planner_config(config)
        .without_optimizer() // differential: compare the raw plan
        .build();
    engine
        .stream_logical(logical)
        .unwrap()
        .collect()
        .unwrap_or_else(|err| panic!("budget {budget} aborted instead of spilling: {err}"))
}

#[test]
fn spilled_runs_are_byte_identical_across_all_shapes_and_budgets() {
    let c = catalog();
    // Shapes whose blocking state lives in a *spilling* operator (divide,
    // hash join family, grouped aggregation) — these must demonstrably hit
    // disk at the two tight budgets.
    let spillable: &[usize] = &[0, 3, 5];
    let mut spilled_shapes = 0usize;
    for (shape_idx, logical) in shapes().into_iter().enumerate() {
        let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let (expected, _) =
            execute_on_backend(&physical, &c, ExecutionBackend::RowAtATime).unwrap();

        // Unlimited: the spill variants are compiled but must never
        // activate, and the result is the in-memory one.
        let unlimited = run_spilling(&c, &logical, 1_000_000);
        assert_eq!(unlimited.relation, expected, "shape #{shape_idx} unlimited");
        assert_eq!(
            unlimited.stats.spill_partitions, 0,
            "shape #{shape_idx} spilled under an unlimited budget"
        );
        let in_memory_peak = unlimited.stats.peak_resident_rows;

        // Exact fit: budget = the measured in-memory peak. Proactive
        // spilling (the trigger fires a margin *before* the budget) keeps
        // the run alive and the peak pinned at or under the budget.
        let exact = run_spilling(&c, &logical, in_memory_peak);
        assert_eq!(exact.relation, expected, "shape #{shape_idx} exact-fit");
        assert!(
            exact.stats.peak_resident_rows <= in_memory_peak,
            "shape #{shape_idx}: peak {} exceeds exact-fit budget {in_memory_peak}",
            exact.stats.peak_resident_rows
        );

        // Tiny: budget = the spilled run's own peak, the tightest budget
        // this plan can provably run under.
        let tiny_budget = exact.stats.peak_resident_rows.max(1);
        let tiny = run_spilling(&c, &logical, tiny_budget);
        assert_eq!(tiny.relation, expected, "shape #{shape_idx} tiny");
        assert!(
            tiny.stats.peak_resident_rows <= tiny_budget,
            "shape #{shape_idx}: peak {} exceeds tiny budget {tiny_budget}",
            tiny.stats.peak_resident_rows
        );

        if exact.stats.spill_partitions > 0 || tiny.stats.spill_partitions > 0 {
            spilled_shapes += 1;
            assert!(
                exact.stats.spill_rows_written + tiny.stats.spill_rows_written > 0,
                "shape #{shape_idx}: partitions without rows"
            );
        }
        if spillable.contains(&shape_idx) {
            assert!(
                tiny.stats.spill_partitions > 0,
                "shape #{shape_idx} (spillable) never hit disk at budget {tiny_budget}"
            );
        }
    }
    assert!(
        spilled_shapes >= spillable.len(),
        "only {spilled_shapes} shapes spilled — the suite is vacuous"
    );
}

#[test]
fn oversized_dividend_recurses_through_multiple_spill_levels() {
    // 500 quotient groups x 10 parts each = 5000 dividend rows, every group
    // complete, against a 256-row budget: first-level partitions are still
    // far over the leaf-fit bound, so they must be re-partitioned at least
    // once more. Each rewrite counts every row again in
    // `spill_rows_written`, so written >= 2x the input is the recursion
    // evidence.
    let mut c = Catalog::new();
    c.register(
        "supplies",
        Relation::from_rows(
            ["s#", "p#"],
            (0..500i64).flat_map(|s| (0..10i64).map(move |p| vec![s, p])),
        )
        .unwrap(),
    );
    c.register(
        "wanted",
        Relation::from_rows(["p#"], (0..10i64).map(|p| vec![p])).unwrap(),
    );
    let logical = PlanBuilder::scan("supplies")
        .divide(PlanBuilder::scan("wanted"))
        .build();
    let expected = div_expr::evaluate(&logical, &c).unwrap();
    assert_eq!(expected.len(), 500);

    let config = PlannerConfig::default()
        .batch_size(64)
        .memory_budget_rows(256)
        .spill_to_disk(true);
    let engine = Engine::builder(c.clone())
        .planner_config(config)
        .without_optimizer()
        .build();
    let output = engine.stream_logical(&logical).unwrap().collect().unwrap();
    assert_eq!(output.relation, expected);
    assert!(
        output.stats.peak_resident_rows <= 256,
        "peak {} exceeds the 256-row budget",
        output.stats.peak_resident_rows
    );
    assert!(
        output.stats.spill_rows_written >= 2 * 5000,
        "spill_rows_written = {} shows no recursive re-partitioning",
        output.stats.spill_rows_written
    );
    assert!(
        output.stats.spill_rows_read >= output.stats.spill_rows_written,
        "every spilled row must be read back (written {}, read {})",
        output.stats.spill_rows_written,
        output.stats.spill_rows_read
    );
}

#[test]
fn attached_table_larger_than_budget_streams_through_a_served_query() {
    use div_server::{Client, Server, ServerConfig};
    use std::sync::Arc;

    // A 10k-row file in 256-row chunks: far over the 600-row budget, so the
    // served query can only succeed by streaming chunk-at-a-time.
    let path = temp_path("served");
    let _cleanup = RemoveOnDrop(path.clone());
    let big = Relation::from_rows(["a", "b"], (0..10_000i64).map(|i| vec![i, i % 7])).unwrap();
    div_storage::TableWriter::write_relation(&path, &big, 256).unwrap();

    let engine = Engine::builder(Catalog::new())
        .with_memory_budget(600)
        .with_spill_to_disk(true)
        .build();
    let server = Server::bind("127.0.0.1:0", Arc::new(engine), ServerConfig::default())
        .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    client
        .attach("big", path.to_str().expect("utf-8 temp path"))
        .unwrap();
    let result = client.query("SELECT a, b FROM big WHERE a < 256").unwrap();
    assert_eq!(result.rows.len(), 256);

    // The zone maps prove most chunks irrelevant; EXPLAIN ANALYZE surfaces
    // the skips in its execution stats.
    let analyzed = client
        .explain("SELECT a, b FROM big WHERE a < 256", true)
        .unwrap();
    assert!(
        analyzed.contains("chunks skipped:"),
        "EXPLAIN ANALYZE must surface zone-map skipping:\n{analyzed}"
    );

    client.close().unwrap();
    server.shutdown();
}
