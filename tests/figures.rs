//! Tuple-for-tuple reproduction of every figure in the paper (Figures 1–11).
//!
//! Each test builds the figure's input relations as printed in the paper,
//! evaluates the operator or law the figure illustrates, and compares against
//! the printed output — including the intermediate tables where the figure
//! shows them. These are the paper's only "result tables", so they double as
//! the golden dataset for EXPERIMENTS.md.

use division::prelude::*;

/// The dividend used by Figures 1 and 2.
fn figure1_r1() -> Relation {
    relation! {
        ["a", "b"] =>
        [1, 1], [1, 4],
        [2, 1], [2, 2], [2, 3], [2, 4],
        [3, 1], [3, 3], [3, 4],
    }
}

/// The extended dividend used by Figures 4 and 6 (11 tuples).
fn figure4_r1() -> Relation {
    relation! {
        ["a", "b"] =>
        [1, 1], [1, 4],
        [2, 1], [2, 2], [2, 3], [2, 4],
        [3, 1], [3, 3], [3, 4],
        [4, 1], [4, 3],
    }
}

#[test]
fn figure_1_small_divide() {
    let r1 = figure1_r1();
    let r2 = relation! { ["b"] => [1], [3] };
    let r3 = relation! { ["a"] => [2], [3] };
    assert_eq!(r1.divide(&r2).unwrap(), r3);
    // All three published definitions agree on the figure.
    assert_eq!(r1.divide_codd(&r2).unwrap(), r3);
    assert_eq!(r1.divide_healy(&r2).unwrap(), r3);
    assert_eq!(r1.divide_maier(&r2).unwrap(), r3);
}

#[test]
fn figure_2_generalized_division() {
    let r1 = figure1_r1();
    let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
    let r3 = relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] };
    assert_eq!(r1.great_divide(&r2).unwrap(), r3);
    assert_eq!(r1.great_divide_set_containment(&r2).unwrap(), r3);
    assert_eq!(
        r1.great_divide_demolombe(&r2)
            .unwrap()
            .conform_to(r3.schema())
            .unwrap(),
        r3
    );
    assert_eq!(
        r1.great_divide_todd(&r2)
            .unwrap()
            .conform_to(r3.schema())
            .unwrap(),
        r3
    );
}

#[test]
fn figure_3_set_containment_join() {
    // The nested (non-first-normal-form) representation of the same data.
    let r1 = Relation::from_rows(
        ["a", "b1"],
        vec![
            vec![Value::Int(1), Value::set([1, 4])],
            vec![Value::Int(2), Value::set([1, 2, 3, 4])],
            vec![Value::Int(3), Value::set([1, 3, 4])],
        ],
    )
    .unwrap();
    let r2 = Relation::from_rows(
        ["b2", "c"],
        vec![
            vec![Value::set([1, 2, 4]), Value::Int(1)],
            vec![Value::set([1, 3]), Value::Int(2)],
        ],
    )
    .unwrap();
    let r3 = r1.set_containment_join(&r2, "b1", "b2").unwrap();
    assert_eq!(r3.len(), 3);
    assert_eq!(r3.schema().names(), vec!["a", "b1", "b2", "c"]);
    // Projecting away the set-valued attributes gives Figure 2's quotient.
    assert_eq!(
        r3.project(&["a", "c"]).unwrap(),
        relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] }
    );
}

#[test]
fn figure_4_law_1_intermediates() {
    let r1 = figure4_r1();
    let r2 = relation! { ["b"] => [1], [3], [4] };
    let r2_prime = relation! { ["b"] => [1], [3] };
    let r2_double = relation! { ["b"] => [3], [4] };
    // The two partitions overlap (both contain b = 3) and their union is r2.
    assert_eq!(r2_prime.union(&r2_double).unwrap(), r2);

    // (e) r1 ÷ r'2 = {2, 3, 4}.
    let inner = r1.divide(&r2_prime).unwrap();
    assert_eq!(inner, relation! { ["a"] => [2], [3], [4] });

    // (f) r1 ⋉ (r1 ÷ r'2): the nine tuples shown in the figure.
    let shrunk = r1.semi_join(&inner).unwrap();
    let expected_f = relation! {
        ["a", "b"] =>
        [2, 1], [2, 2], [2, 3], [2, 4],
        [3, 1], [3, 3], [3, 4],
        [4, 1], [4, 3],
    };
    assert_eq!(shrunk, expected_f);

    // (g) r3: both sides of Law 1 produce {2, 3}.
    let expected_g = relation! { ["a"] => [2], [3] };
    assert_eq!(r1.divide(&r2).unwrap(), expected_g);
    assert_eq!(shrunk.divide(&r2_double).unwrap(), expected_g);
}

#[test]
fn figure_5_law_2_precondition_violation() {
    let r1_prime = relation! { ["a", "b"] => [1, 1], [1, 2], [1, 3] };
    let r1_double = relation! { ["a", "b"] => [1, 2], [1, 4] };
    let r2 = relation! { ["b"] => [1], [4] };
    // Each partition alone divides to the empty set ...
    assert!(r1_prime.divide(&r2).unwrap().is_empty());
    assert!(r1_double.divide(&r2).unwrap().is_empty());
    // ... but the union does not: exactly the situation Law 2 must exclude.
    let union = r1_prime.union(&r1_double).unwrap();
    assert_eq!(union.divide(&r2).unwrap(), relation! { ["a"] => [1] });
    // And condition c1 indeed rejects the decomposition.
    assert!(!div_rewrite::preconditions::c1(&r1_prime, &r1_double, &r2).unwrap());
}

#[test]
fn figure_6_example_1_intermediates() {
    let r1 = figure4_r1();
    let r2 = relation! { ["b"] => [1], [3], [4] };
    let p = Predicate::cmp_value("b", CompareOp::Lt, 3);

    // (b) σ_{b<3}(r1).
    let selected = r1.select(&p).unwrap();
    assert_eq!(
        selected,
        relation! { ["a", "b"] => [1, 1], [2, 1], [2, 2], [3, 1], [4, 1] }
    );
    // (d) σ_{b<3}(r2).
    let selected_divisor = r2.select(&p).unwrap();
    assert_eq!(selected_divisor, relation! { ["b"] => [1] });
    // (e) σ_{b<3}(r1) ÷ r2 = ∅.
    assert!(selected.divide(&r2).unwrap().is_empty());
    // (f) σ_{b<3}(r1) ÷ σ_{b<3}(r2) = {1, 2, 3, 4}.
    assert_eq!(
        selected.divide(&selected_divisor).unwrap(),
        relation! { ["a"] => [1], [2], [3], [4] }
    );
    // (g)/(h) π_a(r1) × σ_{b≥3}(r2), then its projection on a.
    let switch = r1
        .project(&["a"])
        .unwrap()
        .product(&r2.select(&p.negate()).unwrap())
        .unwrap();
    assert_eq!(switch.len(), 8);
    let switch_a = switch.project(&["a"]).unwrap();
    assert_eq!(switch_a, relation! { ["a"] => [1], [2], [3], [4] });
    // (i) the difference of (f) and (h) is empty, matching (e).
    let rewritten = selected
        .divide(&selected_divisor)
        .unwrap()
        .difference(&switch_a)
        .unwrap();
    assert!(rewritten.is_empty());
}

#[test]
fn figure_7_law_8_intermediates() {
    let r_star = relation! { ["a1"] => [1], [2] };
    let r_star_star = relation! {
        ["a2", "b"] =>
        [1, 1], [1, 2], [1, 3],
        [2, 1], [2, 3],
        [3, 2], [3, 3],
    };
    let r2 = relation! { ["b"] => [2], [3] };
    // (d) the product has 14 tuples.
    let product = r_star.product(&r_star_star).unwrap();
    assert_eq!(product.len(), 14);
    // (e) r**1 ÷ r2 = {1, 3}.
    assert_eq!(
        r_star_star.divide(&r2).unwrap(),
        relation! { ["a2"] => [1], [3] }
    );
    // (f) both sides of Law 8 produce the same four tuples.
    let expected = relation! { ["a1", "a2"] => [1, 1], [1, 3], [2, 1], [2, 3] };
    assert_eq!(product.divide(&r2).unwrap(), expected);
    assert_eq!(
        r_star.product(&r_star_star.divide(&r2).unwrap()).unwrap(),
        expected
    );
}

#[test]
fn figure_8_law_9_intermediates() {
    let r_star = relation! {
        ["a", "b1"] =>
        [1, 1], [1, 2], [1, 3],
        [2, 2], [2, 3],
        [3, 1], [3, 3], [3, 4],
    };
    let r_star_star = relation! { ["b2"] => [1], [2] };
    let r2 = relation! { ["b1", "b2"] => [1, 2], [3, 1], [3, 2] };
    // (d) the product has 16 tuples.
    let product = r_star.product(&r_star_star).unwrap();
    assert_eq!(product.len(), 16);
    // (e) π_{b1}(r2) = {1, 3}; (f) π_{b2}(r2) = {1, 2} ⊆ r**1.
    assert_eq!(
        r2.project(&["b1"]).unwrap(),
        relation! { ["b1"] => [1], [3] }
    );
    assert_eq!(
        r2.project(&["b2"]).unwrap(),
        relation! { ["b2"] => [1], [2] }
    );
    assert!(r2
        .project(&["b2"])
        .unwrap()
        .is_subset_of(&r_star_star)
        .unwrap());
    // (g) both sides of Law 9 produce {1, 3}.
    let expected = relation! { ["a"] => [1], [3] };
    assert_eq!(product.divide(&r2).unwrap(), expected);
    assert_eq!(
        r_star.divide(&r2.project(&["b1"]).unwrap()).unwrap(),
        expected
    );
}

#[test]
fn figure_9_example_3_intermediates() {
    let r_star = relation! {
        ["a", "b1"] =>
        [1, 1], [1, 2], [1, 3],
        [2, 2], [2, 3],
        [3, 1], [3, 3], [3, 4],
    };
    let r_star_star = relation! { ["b2"] => [1], [2], [4] };
    let r2 = relation! { ["b1", "b2"] => [1, 4], [3, 4] };
    // (d) r*1 ⋈_{b1<b2} r**1: the nine tuples of the figure.
    let joined = r_star
        .theta_join(
            &r_star_star,
            &Predicate::cmp_attrs("b1", CompareOp::Lt, "b2"),
        )
        .unwrap();
    let expected_join = relation! {
        ["a", "b1", "b2"] =>
        [1, 1, 2], [1, 1, 4], [1, 2, 4], [1, 3, 4],
        [2, 2, 4], [2, 3, 4],
        [3, 1, 2], [3, 1, 4], [3, 3, 4],
    };
    assert_eq!(joined, expected_join);
    // (e) π_{b1}(σ_{b1<b2}(r2)) = {1, 3}.
    let pushed = r2
        .select(&Predicate::cmp_attrs("b1", CompareOp::Lt, "b2"))
        .unwrap()
        .project(&["b1"])
        .unwrap();
    assert_eq!(pushed, relation! { ["b1"] => [1], [3] });
    // (f) r3 = {1, 3}: the original expression and the fully rewritten one agree.
    let expected = relation! { ["a"] => [1], [3] };
    assert_eq!(joined.divide(&r2).unwrap(), expected);
    let rewritten = r_star
        .divide(&pushed)
        .unwrap()
        .difference(
            &r_star
                .project(&["a"])
                .unwrap()
                .product(
                    &r2.select(&Predicate::cmp_attrs("b1", CompareOp::GtEq, "b2"))
                        .unwrap(),
                )
                .unwrap()
                .project(&["a"])
                .unwrap(),
        )
        .unwrap();
    assert_eq!(rewritten, expected);
}

#[test]
fn figure_10_law_11_intermediates() {
    let r0 = relation! {
        ["a", "x"] =>
        [1, 1], [1, 2], [1, 3],
        [2, 1], [2, 3],
        [3, 1], [3, 3], [3, 4],
    };
    // (b) r1 = aγsum(x)→b(r0).
    let r1 = r0
        .group_aggregate(&["a"], &[AggregateCall::sum("x", "b")])
        .unwrap();
    assert_eq!(r1, relation! { ["a", "b"] => [1, 6], [2, 4], [3, 8] });
    let r2 = relation! { ["b"] => [4] };
    // (d) r1 ⋉ r2 and (e) its projection on a.
    let semi = r1.semi_join(&r2).unwrap();
    assert_eq!(semi, relation! { ["a", "b"] => [2, 4] });
    let projected = semi.project(&["a"]).unwrap();
    assert_eq!(projected, relation! { ["a"] => [2] });
    // Law 11, case |r2| = 1: the projection is exactly the quotient.
    assert_eq!(r1.divide(&r2).unwrap(), projected);
}

#[test]
fn figure_11_law_12_intermediates() {
    let r0 = relation! {
        ["x", "b"] =>
        [1, 1], [1, 2], [1, 3],
        [2, 1], [2, 3],
        [3, 1], [3, 3], [3, 4],
    };
    // (b) r1 = bγsum(x)→a(r0) (the figure prints the columns as (a, b)).
    let r1 = r0
        .group_aggregate(&["b"], &[AggregateCall::sum("x", "a")])
        .unwrap();
    assert_eq!(
        r1.conform_to(&Schema::of(["a", "b"])).unwrap(),
        relation! { ["a", "b"] => [6, 1], [1, 2], [6, 3], [3, 4] }
    );
    let r2 = relation! { ["b"] => [1], [3] };
    // (d) r1 ⋉ r2 and (e) its projection on a.
    let semi = r1.semi_join(&r2).unwrap();
    assert_eq!(
        semi.conform_to(&Schema::of(["a", "b"])).unwrap(),
        relation! { ["a", "b"] => [6, 1], [6, 3] }
    );
    let projected = semi.project(&["a"]).unwrap();
    assert_eq!(projected, relation! { ["a"] => [6] });
    // Law 12: the single-tuple projection is the quotient.
    assert_eq!(r1.divide(&r2).unwrap(), projected);
}
