//! Property tests: every physical division / great-divide algorithm (and the
//! partition-parallel executions) agrees with the reference set semantics of
//! `div-algebra` on random inputs, and all execution strategies — row,
//! columnar, and partition-parallel columnar at several partition counts —
//! return byte-identical relations with consistent `ExecStats` row
//! accounting on every plan shape tested here.

use div_columnar::ColumnarBatch;
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::great_divide::{great_divide_with, GreatDivideAlgorithm};
use div_physical::parallel::{parallel_divide, parallel_great_divide};
use div_physical::{execute_on_backend, ExecStats, PhysicalPlan};
use division::prelude::*;
use proptest::prelude::*;

/// The execution strategies the differential tests sweep: the row backend,
/// the single-threaded columnar backend, and the Law 2 / Law 13
/// partition-parallel columnar backend at 2 and 7 partitions.
fn execution_configs() -> Vec<(&'static str, PlannerConfig)> {
    vec![
        ("row", PlannerConfig::default()),
        (
            "columnar",
            PlannerConfig::with_backend(ExecutionBackend::Columnar),
        ),
        ("parallel-columnar/2", PlannerConfig::with_parallelism(2)),
        ("parallel-columnar/7", PlannerConfig::with_parallelism(7)),
    ]
}

fn ab_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..8i64, 0..6i64), 0..max_rows)
}

fn rel_ab(pairs: &[(i64, i64)]) -> Relation {
    Relation::from_rows(["a", "b"], pairs.iter().map(|(a, b)| vec![*a, *b])).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All five small-divide algorithms produce the reference quotient.
    #[test]
    fn small_divide_algorithms_match_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec(0..6i64, 0..6),
    ) {
        let dividend = rel_ab(&dividend);
        let divisor =
            Relation::from_rows(["b"], divisor.iter().map(|b| vec![*b])).unwrap();
        let expected = dividend.divide(&divisor).unwrap();
        for algorithm in DivisionAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }

    /// All great-divide algorithms produce the reference quotient.
    #[test]
    fn great_divide_algorithms_match_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec((0..6i64, 0..4i64), 0..12),
    ) {
        let dividend = rel_ab(&dividend);
        let divisor = Relation::from_rows(
            ["b", "c"],
            divisor.iter().map(|(b, c)| vec![*b, *c]),
        )
        .unwrap();
        let expected = dividend.great_divide(&divisor).unwrap();
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result =
                great_divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }

    /// The Law-2 partition-parallel execution matches the sequential quotient
    /// for every partition count.
    #[test]
    fn parallel_divide_matches_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec(0..6i64, 0..6),
        partitions in 1..5usize,
    ) {
        let dividend = rel_ab(&dividend);
        let divisor =
            Relation::from_rows(["b"], divisor.iter().map(|b| vec![*b])).unwrap();
        let expected = dividend.divide(&divisor).unwrap();
        let (result, _) = parallel_divide(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            partitions,
        )
        .unwrap();
        prop_assert_eq!(result, expected);
    }

    /// The Law-13 partition-parallel great divide matches the sequential
    /// quotient for every partition count.
    #[test]
    fn parallel_great_divide_matches_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec((0..6i64, 0..4i64), 0..12),
        partitions in 1..5usize,
    ) {
        let dividend = rel_ab(&dividend);
        let divisor = Relation::from_rows(
            ["b", "c"],
            divisor.iter().map(|(b, c)| vec![*b, *c]),
        )
        .unwrap();
        let expected = dividend.great_divide(&divisor).unwrap();
        let (result, _) = parallel_great_divide(
            &dividend,
            &divisor,
            GreatDivideAlgorithm::HashSets,
            partitions,
        )
        .unwrap();
        prop_assert_eq!(result, expected);
    }

    /// Whole physical plans (planner + executor) match the logical reference
    /// evaluator for the Q2 query shape, for every division algorithm.
    #[test]
    fn physical_plans_match_logical_evaluation(
        supplies in ab_pairs(40),
        wanted in prop::collection::vec(0..6i64, 0..6),
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "supplies",
            Relation::from_rows(["s#", "p#"], supplies.iter().map(|(s, p)| vec![*s, *p])).unwrap(),
        );
        catalog.register(
            "wanted",
            Relation::from_rows(["p#"], wanted.iter().map(|p| vec![*p])).unwrap(),
        );
        let logical = PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("wanted"))
            .build();
        let expected = evaluate(&logical, &catalog).unwrap();
        for algorithm in DivisionAlgorithm::ALL {
            let physical =
                plan_query(&logical, &PlannerConfig::with_division_algorithm(algorithm)).unwrap();
            let result = execute(&physical, &catalog).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }

    /// `Relation -> ColumnarBatch -> Relation` round-trips losslessly on
    /// random relations.
    #[test]
    fn columnar_roundtrip_is_lossless(rows in ab_pairs(40)) {
        let relation = rel_ab(&rows);
        let batch = ColumnarBatch::from_relation(&relation);
        prop_assert_eq!(batch.num_rows(), relation.len());
        prop_assert_eq!(batch.to_relation().unwrap(), relation);
    }

    /// The row and columnar backends return identical relations (and agree
    /// on the output cardinality they report) on every plan shape this file
    /// exercises, over random catalogs.
    #[test]
    fn columnar_backend_matches_row_backend(
        supplies in ab_pairs(40),
        wanted in prop::collection::vec(0..6i64, 0..6),
        groups in prop::collection::vec((0..6i64, 0..4i64), 0..12),
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "supplies",
            Relation::from_rows(["s#", "p#"], supplies.iter().map(|(s, p)| vec![*s, *p])).unwrap(),
        );
        catalog.register(
            "wanted",
            Relation::from_rows(["p#"], wanted.iter().map(|p| vec![*p])).unwrap(),
        );
        catalog.register(
            "grouped",
            Relation::from_rows(["p#", "c"], groups.iter().map(|(b, c)| vec![*b, *c])).unwrap(),
        );
        for physical in differential_plans() {
            assert_backends_agree(&physical, &catalog);
        }
    }
}

/// The plan shapes the backend-differential property sweeps: one per
/// vectorized operator family — the original seven, plus shapes centered on
/// the five operators that used to fall back to the row executor
/// (intersection, difference, Cartesian product, theta-join, aggregation).
fn differential_plans() -> Vec<PhysicalPlan> {
    differential_logical_plans()
        .into_iter()
        .map(|logical| plan_query(&logical, &PlannerConfig::default()).unwrap())
        .collect()
}

/// The logical shapes behind [`differential_plans`], exposed separately so
/// the engine-vs-raw differential test can run them through the optimizing
/// [`Engine`] pipeline as well.
fn differential_logical_plans() -> Vec<LogicalPlan> {
    let q2 = PlanBuilder::scan("supplies")
        .divide(PlanBuilder::scan("wanted"))
        .build();
    let filtered_divide = PlanBuilder::scan("supplies")
        .select(Predicate::cmp_value("s#", CompareOp::Lt, 4))
        .divide(PlanBuilder::scan("wanted"))
        .project(["s#"])
        .build();
    let great = PlanBuilder::scan("supplies")
        .great_divide(PlanBuilder::scan("grouped"))
        .build();
    let join_project = PlanBuilder::scan("supplies")
        .natural_join(PlanBuilder::scan("wanted"))
        .project(["s#", "p#"])
        .build();
    let semi_union = PlanBuilder::scan("supplies")
        .semi_join(PlanBuilder::scan("wanted"))
        .union(PlanBuilder::scan("supplies").anti_semi_join(PlanBuilder::scan("wanted")))
        .build();
    let aggregate = PlanBuilder::scan("supplies")
        .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
        .project(["s#"])
        .build();
    let difference = PlanBuilder::scan("supplies")
        .rename([("p#", "x")])
        .difference(
            PlanBuilder::scan("supplies")
                .rename([("p#", "x")])
                .select(Predicate::cmp_value("x", CompareOp::GtEq, 3)),
        )
        .build();
    let intersect = PlanBuilder::scan("supplies")
        .intersect(PlanBuilder::scan("supplies").select(Predicate::cmp_value(
            "p#",
            CompareOp::Lt,
            3,
        )))
        .build();
    let product = PlanBuilder::scan("wanted")
        .rename([("p#", "x")])
        .product(PlanBuilder::scan("wanted").rename([("p#", "y")]))
        .build();
    let theta = PlanBuilder::scan("supplies")
        .theta_join(
            PlanBuilder::scan("wanted").rename([("p#", "w")]),
            Predicate::cmp_attrs("p#", CompareOp::LtEq, "w"),
        )
        .build();
    let sum_per_group = PlanBuilder::scan("supplies")
        .group_aggregate(
            ["s#"],
            [
                AggregateCall::count("p#", "n"),
                AggregateCall::sum("p#", "total"),
            ],
        )
        .build();
    vec![
        q2,
        filtered_divide,
        great,
        join_project,
        semi_union,
        aggregate,
        difference,
        intersect,
        product,
        theta,
        sum_per_group,
    ]
}

/// Execute `plan` on every execution strategy of [`execution_configs`] and
/// assert byte-identical relations and consistent `ExecStats` row accounting
/// (output cardinality and scanned rows are strategy-independent).
fn assert_backends_agree(physical: &PhysicalPlan, catalog: &Catalog) {
    let (row_result, row_stats) =
        execute_on_backend(physical, catalog, ExecutionBackend::RowAtATime).unwrap();
    for (name, config) in execution_configs() {
        let (result, stats) = execute_with_config(physical, catalog, &config).unwrap();
        assert_eq!(result, row_result, "{name} diverges on plan:\n{physical}");
        assert_eq!(
            stats.output_rows, row_stats.output_rows,
            "{name}: output_rows diverge on plan:\n{physical}"
        );
        assert_eq!(
            stats.rows_scanned, row_stats.rows_scanned,
            "{name}: rows_scanned diverge on plan:\n{physical}"
        );
    }
}

#[test]
fn cursor_streams_byte_identically_to_the_row_backend_on_every_shape() {
    // The streaming-API differential: for all eleven differential plan
    // shapes, at parallelism 1 and 4 and across chunk geometries (batch
    // sizes that divide, straddle and exceed the inputs), the relation
    // collected from an `Engine` `Cursor` must be byte-identical to the row
    // backend's, with matching `output_rows`.
    let mut catalog = Catalog::new();
    catalog.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [1, 3], [2, 1], [2, 2], [3, 2], [4, 1], [4, 3] },
    );
    catalog.register("wanted", relation! { ["p#"] => [1], [2] });
    catalog.register(
        "grouped",
        relation! { ["p#", "c"] => [1, 1], [2, 1], [1, 2], [3, 2], [2, 3] },
    );

    for (shape_idx, logical) in differential_logical_plans().into_iter().enumerate() {
        let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let (expected, row_stats) =
            execute_on_backend(&physical, &catalog, ExecutionBackend::RowAtATime).unwrap();
        for parallelism in [1usize, 4] {
            for batch_size in [1usize, 3, 4096] {
                let config = PlannerConfig::default()
                    .parallelism(parallelism)
                    .batch_size(batch_size);
                let engine = Engine::builder(catalog.clone())
                    .planner_config(config)
                    .without_optimizer() // differential: compare the raw plan
                    .build();
                let cursor = engine.stream_logical(&logical).unwrap();
                let output = cursor.collect().unwrap();
                assert_eq!(
                    output.relation, expected,
                    "shape #{shape_idx} diverges at parallelism {parallelism}, \
                     batch_size {batch_size}:\n{logical}"
                );
                assert_eq!(
                    output.stats.output_rows, row_stats.output_rows,
                    "shape #{shape_idx}: output_rows diverge at parallelism {parallelism}, \
                     batch_size {batch_size}"
                );
                assert_eq!(
                    output.stats.rows_scanned, row_stats.rows_scanned,
                    "shape #{shape_idx}: fully drained cursors scan everything exactly once"
                );
            }
        }
    }
}

#[test]
fn cursor_take_one_short_circuits_the_source_scan() {
    // The early-termination acceptance criterion: `cursor.take(1)` must
    // leave the scan's row counter strictly below the table cardinality.
    let table_rows = 50_000usize;
    let mut catalog = Catalog::new();
    let rows: Vec<Vec<i64>> = (0..table_rows as i64).map(|i| vec![i, i % 11]).collect();
    catalog.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
    let engine = Engine::builder(catalog)
        .planner_config(PlannerConfig::default().batch_size(512))
        .build();
    let mut cursor = engine.query("SELECT a, b FROM big WHERE b < 10").unwrap();
    let first: Vec<_> = cursor.by_ref().take(1).collect();
    assert_eq!(first.len(), 1);
    assert!(first[0].as_ref().unwrap().num_rows() > 0);
    let stats = cursor.finish_stats();
    assert!(
        stats.rows_scanned < table_rows,
        "take(1) scanned {} of {} rows — the scan did not short-circuit",
        stats.rows_scanned,
        table_rows
    );
    // With batch_size 512 and a ~10/11 selective filter, one batch suffices.
    assert_eq!(stats.rows_scanned, 512);
}

#[test]
fn engine_optimizer_matches_raw_plans_on_every_shape_and_strategy() {
    // The optimizer-in-the-loop differential: for all eleven differential
    // plan shapes, `Engine::execute_logical` (rewrite optimizer ON, the
    // default) must return byte-identical relations to the raw
    // `plan_query` → `execute_with_config` pipeline (optimizer OFF), on the
    // row backend, the columnar backend and the partition-parallel columnar
    // backend, at parallelism 1 and 4 each.
    let mut catalog = Catalog::new();
    catalog.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [1, 3], [2, 1], [2, 2], [3, 2], [4, 1], [4, 3] },
    );
    catalog.register("wanted", relation! { ["p#"] => [1], [2] });
    catalog.register(
        "grouped",
        relation! { ["p#", "c"] => [1, 1], [2, 1], [1, 2], [3, 2], [2, 3] },
    );

    let strategy_configs: Vec<(String, PlannerConfig)> =
        [ExecutionBackend::RowAtATime, ExecutionBackend::Columnar]
            .into_iter()
            .flat_map(|backend| {
                [1usize, 4].into_iter().map(move |parallelism| {
                    (
                        format!("{}/p{parallelism}", backend.name()),
                        PlannerConfig::with_backend(backend).parallelism(parallelism),
                    )
                })
            })
            .collect();

    for (shape_idx, logical) in differential_logical_plans().into_iter().enumerate() {
        for (name, config) in &strategy_configs {
            let optimizing = Engine::builder(catalog.clone())
                .planner_config(*config)
                .build();
            assert!(
                optimizing.optimizer_enabled(),
                "optimizer must be the default"
            );
            let optimized_out = optimizing.execute_logical(&logical).unwrap();

            let raw_physical = plan_query(&logical, config).unwrap();
            let (raw_relation, raw_stats) =
                execute_with_config(&raw_physical, &catalog, config).unwrap();

            assert_eq!(
                optimized_out.relation, raw_relation,
                "shape #{shape_idx} diverges on {name}:\n{logical}"
            );
            assert_eq!(
                optimized_out.stats.output_rows, raw_stats.output_rows,
                "shape #{shape_idx}: output_rows diverge on {name}"
            );
        }
    }
}

#[test]
fn simulation_intermediates_grow_quadratically_but_special_purpose_do_not() {
    // The paper's core performance argument (Sections 1 and 6): the
    // basic-operator simulation materializes |π_A(r1)| · |r2| tuples
    // (quadratic in the scale factor when both inputs grow), while the
    // special-purpose hash-division produces nothing beyond the quotient
    // itself.
    for scale in [20i64, 40, 80] {
        let (dividend, divisor) = div_bench_workload(scale, scale / 2);
        let mut sim = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::SimulatedBasicOperators,
            &mut sim,
        )
        .unwrap();
        let mut hash = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            &mut hash,
        )
        .unwrap();
        // Exactly the quadratic product π_A(r1) × r2 ...
        assert_eq!(sim.max_intermediate, (scale as usize) * divisor.len());
        // ... which dwarfs what the special-purpose operator materializes.
        assert!(
            sim.max_intermediate >= 10 * hash.intermediate_tuples.max(1),
            "scale {scale}: simulation {} vs hash-division {}",
            sim.max_intermediate,
            hash.intermediate_tuples
        );
    }
}

#[test]
fn columnar_roundtrip_covers_every_value_kind() {
    // Strings (dictionary-encoded), NULLs (validity masks), booleans, and
    // set values (the Mixed fallback) all survive the round trip exactly.
    let relation = Relation::new(
        Schema::of(["id", "color", "flag", "tags"]),
        [
            Tuple::new([
                Value::Int(1),
                Value::str("blue"),
                Value::Bool(true),
                Value::set([1, 2]),
            ]),
            Tuple::new([
                Value::Int(2),
                Value::str("red"),
                Value::Null,
                Value::set([3]),
            ]),
            Tuple::new([
                Value::Null,
                Value::str("blue"),
                Value::Bool(false),
                Value::Null,
            ]),
        ],
    )
    .unwrap();
    let batch = ColumnarBatch::from_relation(&relation);
    assert_eq!(batch.to_relation().unwrap(), relation);
}

#[test]
fn backends_agree_on_the_suppliers_parts_generator() {
    // The generated workload the benches sweep: Q2 with a string filter.
    let catalog = div_bench::suppliers_parts_catalog(120, 30, 0.5);
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
    assert_backends_agree(&physical, &catalog);
}

#[test]
fn all_strategies_agree_on_skewed_zipf_baskets() {
    // Skewed market baskets from `div-datagen` (Zipf item popularity,
    // s = 1.3): a handful of hot items dominate the dividend, so the Law 2
    // quotient-attribute partitions and the Law 13 divisor-group partitions
    // are heavily imbalanced — exactly the adversarial case for the
    // partition-parallel merge. Every strategy must still return the same
    // bytes and the same row accounting.
    use division::datagen::baskets::{self, candidates_relation};
    use division::datagen::BasketConfig;

    let data = baskets::generate(&BasketConfig {
        transactions: 300,
        items: 40,
        avg_length: 6,
        skew: 1.3,
        planted_probability: 0.35,
        seed: 20_260_728,
        ..BasketConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("transactions", data.transactions);
    catalog.register("candidates", candidates_relation(&data.planted));

    // Law 13 workload: transactions ÷* candidates (which transactions
    // contain which candidate itemsets).
    let law13 = PlanBuilder::scan("transactions")
        .great_divide(PlanBuilder::scan("candidates"))
        .build();
    // Law 2 workload: transactions ÷ (one candidate itemset), dividend
    // partitioned on the quotient attribute `tid`.
    let law2 = PlanBuilder::scan("transactions")
        .divide(
            PlanBuilder::scan("candidates")
                .select(Predicate::eq_value("itemset", 0))
                .project(["item"]),
        )
        .build();
    for logical in [law13, law2] {
        let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
        assert_backends_agree(&physical, &catalog);
    }
}

/// Local copy of the bench workload shape (kept independent of the bench
/// crate so the test exercises the public API only).
fn div_bench_workload(groups: i64, items: i64) -> (Relation, Relation) {
    let mut dividend_rows = Vec::new();
    for g in 0..groups {
        for i in 0..items {
            if g % 3 == 0 || i % 2 == 0 {
                dividend_rows.push(vec![g, i]);
            }
        }
    }
    let divisor_rows: Vec<Vec<i64>> = (0..items).map(|i| vec![i]).collect();
    (
        Relation::from_rows(["a", "b"], dividend_rows).unwrap(),
        Relation::from_rows(["b"], divisor_rows).unwrap(),
    )
}
