//! Property tests: every physical division / great-divide algorithm (and the
//! partition-parallel executions) agrees with the reference set semantics of
//! `div-algebra` on random inputs.

use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::great_divide::{great_divide_with, GreatDivideAlgorithm};
use div_physical::parallel::{parallel_divide, parallel_great_divide};
use div_physical::ExecStats;
use division::prelude::*;
use proptest::prelude::*;

fn ab_pairs(max_rows: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..8i64, 0..6i64), 0..max_rows)
}

fn rel_ab(pairs: &[(i64, i64)]) -> Relation {
    Relation::from_rows(["a", "b"], pairs.iter().map(|(a, b)| vec![*a, *b])).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All five small-divide algorithms produce the reference quotient.
    #[test]
    fn small_divide_algorithms_match_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec(0..6i64, 0..6),
    ) {
        let dividend = rel_ab(&dividend);
        let divisor =
            Relation::from_rows(["b"], divisor.iter().map(|b| vec![*b])).unwrap();
        let expected = dividend.divide(&divisor).unwrap();
        for algorithm in DivisionAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }

    /// All great-divide algorithms produce the reference quotient.
    #[test]
    fn great_divide_algorithms_match_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec((0..6i64, 0..4i64), 0..12),
    ) {
        let dividend = rel_ab(&dividend);
        let divisor = Relation::from_rows(
            ["b", "c"],
            divisor.iter().map(|(b, c)| vec![*b, *c]),
        )
        .unwrap();
        let expected = dividend.great_divide(&divisor).unwrap();
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result =
                great_divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }

    /// The Law-2 partition-parallel execution matches the sequential quotient
    /// for every partition count.
    #[test]
    fn parallel_divide_matches_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec(0..6i64, 0..6),
        partitions in 1..5usize,
    ) {
        let dividend = rel_ab(&dividend);
        let divisor =
            Relation::from_rows(["b"], divisor.iter().map(|b| vec![*b])).unwrap();
        let expected = dividend.divide(&divisor).unwrap();
        let (result, _) = parallel_divide(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            partitions,
        )
        .unwrap();
        prop_assert_eq!(result, expected);
    }

    /// The Law-13 partition-parallel great divide matches the sequential
    /// quotient for every partition count.
    #[test]
    fn parallel_great_divide_matches_reference(
        dividend in ab_pairs(40),
        divisor in prop::collection::vec((0..6i64, 0..4i64), 0..12),
        partitions in 1..5usize,
    ) {
        let dividend = rel_ab(&dividend);
        let divisor = Relation::from_rows(
            ["b", "c"],
            divisor.iter().map(|(b, c)| vec![*b, *c]),
        )
        .unwrap();
        let expected = dividend.great_divide(&divisor).unwrap();
        let (result, _) = parallel_great_divide(
            &dividend,
            &divisor,
            GreatDivideAlgorithm::HashSets,
            partitions,
        )
        .unwrap();
        prop_assert_eq!(result, expected);
    }

    /// Whole physical plans (planner + executor) match the logical reference
    /// evaluator for the Q2 query shape, for every division algorithm.
    #[test]
    fn physical_plans_match_logical_evaluation(
        supplies in ab_pairs(40),
        wanted in prop::collection::vec(0..6i64, 0..6),
    ) {
        let mut catalog = Catalog::new();
        catalog.register(
            "supplies",
            Relation::from_rows(["s#", "p#"], supplies.iter().map(|(s, p)| vec![*s, *p])).unwrap(),
        );
        catalog.register(
            "wanted",
            Relation::from_rows(["p#"], wanted.iter().map(|p| vec![*p])).unwrap(),
        );
        let logical = PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("wanted"))
            .build();
        let expected = evaluate(&logical, &catalog).unwrap();
        for algorithm in DivisionAlgorithm::ALL {
            let physical =
                plan_query(&logical, &PlannerConfig::with_division_algorithm(algorithm)).unwrap();
            let result = execute(&physical, &catalog).unwrap();
            prop_assert_eq!(&result, &expected, "algorithm {}", algorithm.name());
        }
    }
}

#[test]
fn simulation_intermediates_grow_quadratically_but_special_purpose_do_not() {
    // The paper's core performance argument (Sections 1 and 6): the
    // basic-operator simulation materializes |π_A(r1)| · |r2| tuples
    // (quadratic in the scale factor when both inputs grow), while the
    // special-purpose hash-division produces nothing beyond the quotient
    // itself.
    for scale in [20i64, 40, 80] {
        let (dividend, divisor) = div_bench_workload(scale, scale / 2);
        let mut sim = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::SimulatedBasicOperators,
            &mut sim,
        )
        .unwrap();
        let mut hash = ExecStats::default();
        divide_with(&dividend, &divisor, DivisionAlgorithm::HashDivision, &mut hash).unwrap();
        // Exactly the quadratic product π_A(r1) × r2 ...
        assert_eq!(sim.max_intermediate, (scale as usize) * divisor.len());
        // ... which dwarfs what the special-purpose operator materializes.
        assert!(
            sim.max_intermediate >= 10 * hash.intermediate_tuples.max(1),
            "scale {scale}: simulation {} vs hash-division {}",
            sim.max_intermediate,
            hash.intermediate_tuples
        );
    }
}

/// Local copy of the bench workload shape (kept independent of the bench
/// crate so the test exercises the public API only).
fn div_bench_workload(groups: i64, items: i64) -> (Relation, Relation) {
    let mut dividend_rows = Vec::new();
    for g in 0..groups {
        for i in 0..items {
            if g % 3 == 0 || i % 2 == 0 {
                dividend_rows.push(vec![g, i]);
            }
        }
    }
    let divisor_rows: Vec<Vec<i64>> = (0..items).map(|i| vec![i]).collect();
    (
        Relation::from_rows(["a", "b"], dividend_rows).unwrap(),
        Relation::from_rows(["b"], divisor_rows).unwrap(),
    )
}
