//! Wire-protocol conformance: framing, typed errors, robustness limits and
//! a differential check that the server streams exactly the bytes the
//! engine produces.

use div_algebra::{relation, Value};
use div_expr::Catalog;
use div_server::{protocol, Client, ClientError, ErrorCode, Server, ServerConfig, ServerHandle};
use div_sql::Engine;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn textbook_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
    );
    catalog.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    catalog
}

fn serve(config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(Engine::new(textbook_catalog()));
    Server::bind("127.0.0.1:0", engine, config).expect("bind ephemeral port")
}

const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";

#[test]
fn end_to_end_session_happy_path() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    let result = client.query(Q2).unwrap();
    assert_eq!(result.columns, vec!["s#"]);
    let mut rows = result.rows.clone();
    rows.sort();
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    assert_eq!(result.detail, "2 rows");

    client
        .prepare(
            "by_color",
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
        )
        .unwrap();
    let red = client
        .execute("by_color", &[("color", Value::from("red"))])
        .unwrap();
    assert_eq!(red.rows, vec![vec![Value::Int(2)]]);

    let plan = client.explain(Q2, false).unwrap();
    assert!(plan.contains("logical plan (before rewrite):"), "{plan}");
    let analyzed = client.explain(Q2, true).unwrap();
    assert!(analyzed.contains("execution stats:"), "{analyzed}");

    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("\"server\""), "{metrics}");
    assert!(metrics.contains("\"queries_executed\""), "{metrics}");

    client
        .register("gadgets", &["g#"], &[vec![7i64.into()]])
        .unwrap();
    let gadgets = client.query("SELECT g# FROM gadgets").unwrap();
    assert_eq!(gadgets.rows, vec![vec![Value::Int(7)]]);
    client.drop_table("gadgets").unwrap();
    let err = client.query("SELECT g# FROM gadgets").unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: Some(ErrorCode::Plan),
            ..
        }
    ));

    client.close().unwrap();
    server.shutdown();
}

#[test]
fn malformed_lines_get_typed_errors_and_the_session_survives() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (line, expected) in [
        ("FROBNICATE", ErrorCode::Malformed),
        ("QUERY", ErrorCode::Malformed),
        ("PREPARE onlyname", ErrorCode::Malformed),
        ("EXECUTE q $color", ErrorCode::Malformed),
        ("MUTATE REGISTER t (a) VALUES (1, 2)", ErrorCode::Malformed),
        ("QUERY SELECT FROM WHERE", ErrorCode::Parse),
        ("QUERY SELECT x FROM missing", ErrorCode::Plan),
        ("EXECUTE never_prepared", ErrorCode::UnknownStatement),
        (
            "QUERY SELECT s# FROM supplies WHERE p# = $p",
            ErrorCode::UnboundParameter,
        ),
    ] {
        let lines = client.exchange(line).unwrap();
        assert_eq!(lines.len(), 1, "errors are a single terminal: {lines:?}");
        let token = lines[0]
            .strip_prefix("ERR ")
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_default();
        assert_eq!(
            ErrorCode::parse(token),
            Some(expected),
            "line {line:?} answered {:?}",
            lines[0]
        );
    }
    // The session is still healthy after every rejection.
    let result = client.query(Q2).unwrap();
    assert_eq!(result.rows.len(), 2);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn oversized_requests_are_rejected_and_the_connection_closed() {
    let server = serve(ServerConfig {
        max_request_bytes: 256,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let huge = format!("QUERY SELECT s# FROM supplies -- {}", "x".repeat(4096));
    let lines = client.exchange(&huge).unwrap();
    assert!(
        lines.last().unwrap().starts_with("ERR TOO_LARGE"),
        "{lines:?}"
    );
    // The connection is closed after the rejection.
    assert!(matches!(client.exchange("PING"), Err(ClientError::Io(_))));
    // The server closed the oversized connection; a fresh one works.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.ping().unwrap();
    server.shutdown();
}

#[test]
fn mid_stream_disconnects_leave_the_server_healthy() {
    let server = serve(ServerConfig::default());
    // Register a table large enough that the result spans many batches.
    {
        let rows: Vec<Vec<Value>> = (0..20_000i64).map(|i| vec![Value::Int(i)]).collect();
        let relation = div_algebra::Relation::from_rows(["n"], rows).unwrap();
        server.engine().mutate_catalog(|c| {
            c.register("numbers", relation);
        });
    }
    // Raw socket: send the query, read a few bytes, vanish.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"QUERY SELECT n FROM numbers\n").unwrap();
        let mut first = [0u8; 64];
        let n = raw.read(&mut first).unwrap();
        assert!(n > 0, "server started streaming");
        drop(raw); // mid-stream disconnect
    }
    // The worker notices the dead peer and returns to the pool: subsequent
    // sessions are served (with the default 8 workers this passes even if
    // the dying stream lingers briefly).
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    let result = fresh.query(Q2).unwrap();
    assert_eq!(result.rows.len(), 2);
    fresh.close().unwrap();
    server.shutdown();
}

#[test]
fn admission_control_answers_busy_when_saturated() {
    let server = serve(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    // Occupy the single worker with a served session...
    let mut holder = Client::connect(server.local_addr()).unwrap();
    holder.ping().unwrap();
    // ...fill the one queue slot with a connection that never speaks...
    let _queued = TcpStream::connect(server.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // ...and the next connection is rejected with the typed overload error.
    let mut rejected =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(5)).unwrap();
    let lines = rejected.read_response().unwrap();
    let token = lines
        .last()
        .unwrap()
        .strip_prefix("ERR ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_default();
    assert_eq!(ErrorCode::parse(token), Some(ErrorCode::Busy));
    assert!(ErrorCode::Busy.retryable());
    let rejections = server
        .metrics()
        .connections_rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rejections >= 1, "rejection counted: {rejections}");
    holder.close().unwrap();
    server.shutdown();
}

#[test]
fn idle_connections_time_out_with_a_typed_error() {
    let server = serve(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_timeout(server.local_addr(), Duration::from_secs(5)).unwrap();
    // Say nothing; the server closes us with ERR TIMEOUT.
    let lines = client.read_response().unwrap();
    assert!(
        lines.last().unwrap().starts_with("ERR TIMEOUT"),
        "{lines:?}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_idle_sessions_with_a_typed_error() {
    let server = serve(ServerConfig::default());
    let mut idle = Client::connect_timeout(server.local_addr(), Duration::from_secs(5)).unwrap();
    idle.ping().unwrap();
    let drain = std::thread::spawn(move || server.shutdown());
    let lines = idle.read_response().unwrap();
    assert!(
        lines.last().unwrap().starts_with("ERR SHUTDOWN"),
        "{lines:?}"
    );
    drain.join().unwrap();
}

/// `SESSION` reports an id; `CANCEL` of an idle or unknown session is an
/// idempotent no-op with a typed acknowledgement either way.
#[test]
fn session_ids_are_reported_and_idle_cancel_is_a_noop() {
    let server = serve(ServerConfig::default());
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    let id_a = a.session_id().unwrap();
    let id_b = b.session_id().unwrap();
    assert_ne!(id_a, id_b, "sessions get distinct ids");
    // Asking again returns the same id: the id names the session, not the
    // request.
    assert_eq!(a.session_id().unwrap(), id_a);
    // Neither session has a statement in flight; unknown ids answer the
    // same way (an unknown and an idle session are indistinguishable).
    assert!(!b.cancel(id_a).unwrap());
    assert!(!b.cancel(u64::MAX).unwrap());
    // Cancelling did not poison anything.
    assert_eq!(a.query(Q2).unwrap().rows.len(), 2);
    a.close().unwrap();
    b.close().unwrap();
    server.shutdown();
}

mod codec_fuzz {
    use super::*;
    use proptest::prelude::*;
    use proptest::test_runner::TestRng;

    /// Hostile strings over a pool heavy in the codec's special characters:
    /// quotes, escapes, framing bytes, separators and multi-byte unicode.
    #[derive(Clone, Copy)]
    struct WireString {
        max_len: usize,
    }

    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        '7',
        ' ',
        '\'',
        '\\',
        '\n',
        '\r',
        '\t',
        '$',
        '=',
        ',',
        ';',
        '(',
        ')',
        '{',
        '}',
        '-',
        '#',
        '\u{e9}',
        '\u{4e16}',
        '\u{1f600}',
        'n',
        'r',
        't',
        'x',
    ];

    impl Strategy for WireString {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(self.max_len as u64 + 1) as usize;
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        }
    }

    /// Any value a result row can carry (sets excluded: no wire command
    /// accepts a set literal, matching the codec's documented domain).
    struct AnyValue;

    impl Strategy for AnyValue {
        type Value = Value;

        fn generate(&self, rng: &mut TestRng) -> Value {
            match rng.below(4) {
                0 => Value::Null,
                1 => Value::Bool(rng.below(2) == 0),
                2 => Value::Int(rng.next_u64() as i64),
                _ => Value::from(WireString { max_len: 24 }.generate(rng)),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// `encode_value` → `parse_value` is the identity for every value a
        /// result row can carry, and the encoding never breaks the
        /// one-line-per-message framing.
        #[test]
        fn value_codec_round_trips(value in AnyValue) {
            let encoded = protocol::encode_value(&value);
            prop_assert!(!encoded.contains('\n'), "framing-safe: {encoded:?}");
            prop_assert!(!encoded.contains('\r'), "framing-safe: {encoded:?}");
            let decoded = protocol::parse_value(&encoded)
                .expect("every encoding parses back");
            prop_assert_eq!(decoded, value);
        }

        /// Whole rows survive the tab-separated `ROW` framing.
        #[test]
        fn row_codec_round_trips(values in prop::collection::vec(AnyValue, 1..6)) {
            let line = protocol::encode_row(&values);
            let payload = line.strip_prefix("ROW ").expect("ROW prefix");
            let decoded: Vec<Value> = payload
                .split('\t')
                .map(|t| protocol::parse_value(t).expect("cell parses"))
                .collect();
            prop_assert_eq!(decoded, values);
        }

        /// The request parser never panics, whatever bytes arrive — every
        /// line either parses or is a typed `MalformedRequest`.
        #[test]
        fn request_parser_total_on_arbitrary_lines(line in WireString { max_len: 80 }) {
            let _ = protocol::parse_request(&line);
        }

        /// Adversarial near-grammar lines: a real verb with garbage
        /// arguments (quotes, escapes, unicode) must never panic either.
        #[test]
        fn request_parser_total_on_near_grammar_lines(
            verb in 0..8usize,
            garbage in WireString { max_len: 60 },
        ) {
            const VERBS: [&str; 8] = [
                "QUERY", "PREPARE", "EXECUTE", "MUTATE REGISTER",
                "MUTATE DROP", "EXPLAIN", "CANCEL", "SESSION",
            ];
            let _ = protocol::parse_request(&format!("{} {garbage}", VERBS[verb]));
        }

        /// `parse_value` is total too: arbitrary tokens either yield a
        /// value or a typed error, never a panic — including unterminated
        /// quotes and dangling escapes.
        #[test]
        fn value_parser_total_on_arbitrary_tokens(token in WireString { max_len: 40 }) {
            let _ = protocol::parse_value(&token);
        }
    }
}

/// The server's `ROW` lines are byte-identical to encoding the direct
/// engine result with the same codec — the serving layer adds framing, not
/// interpretation.
#[test]
fn server_results_are_byte_identical_to_direct_engine_output() {
    let data = div_datagen::scenarios::generate(&div_datagen::scenarios::ScenarioConfig {
        family: div_datagen::scenarios::ScenarioFamily::Rbac,
        entities: 40,
        items: 10,
        ..Default::default()
    });
    let engine = Arc::new(Engine::new(data.catalog()));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
        .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    for sql in [
        data.small_divide_sql(),
        data.great_divide_sql(),
        "SELECT user FROM user_roles WHERE role = 'role0'".to_string(),
    ] {
        let mut served: Vec<String> = client
            .exchange(&format!("QUERY {sql}"))
            .unwrap()
            .into_iter()
            .filter(|l| l.starts_with("ROW "))
            .collect();
        let mut direct: Vec<String> = Vec::new();
        let mut cursor = engine.query(&sql).unwrap();
        for batch in cursor.by_ref() {
            let batch = batch.unwrap();
            for i in 0..batch.num_rows() {
                direct.push(protocol::encode_row(batch.row(i).values()));
            }
        }
        // Hash-based operators need not emit in a deterministic order;
        // byte-identity is per row, compared as sorted sets of lines.
        served.sort();
        direct.sort();
        assert_eq!(served, direct, "for {sql}");
        assert!(!served.is_empty(), "nonempty workload for {sql}");
    }
    client.close().unwrap();
    server.shutdown();
}
