//! Chaos suite: fault injection at every operator boundary of every plan
//! shape.
//!
//! For each of the eleven plan shapes below, every `{label}.{phase}` site
//! the compiled physical plan exposes is armed in turn with an error
//! failpoint, and the streaming executor is driven to its terminal state.
//! The governance invariants under test:
//!
//! * **no panics** — every fault surfaces as a typed `Err`, never an
//!   unwind;
//! * **clean teardown** — after the abort, `resident_rows_on_finish` is
//!   exactly `0`: every operator released what it acquired, error paths
//!   included (the invariant that makes memory budgets trustworthy);
//! * **close is infallible** — faults at `.close` sites are swallowed and
//!   the query result is unchanged;
//! * **typed wire surface** — over TCP an injected fault terminates the
//!   response with `ERR PLAN` (the existing error channel, deliberately no
//!   bespoke code), the session survives, and the server metrics reconcile.
//!
//! The failpoint registry is process-global, so every test here serializes
//! on [`div_physical::failpoint::test_serial`] and disarms in all exit
//! paths.

use div_algebra::{relation, AggregateCall, CompareOp, Predicate, Relation};
use div_expr::{Catalog, ExprError, PlanBuilder};
use div_physical::{
    failpoint, plan_query, ExecStats, FailAction, PhysicalPlan, PlannerConfig, QueryGuard,
    StreamExecutor,
};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
    );
    c.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    c
}

/// Eleven logical shapes that together compile to every streaming operator:
/// scans, values, filter, project, rename, union, intersect, difference,
/// cross product, nested-loop (theta) join, hash join, semi/anti-semi
/// joins, aggregation, small divide and great divide.
fn shapes() -> Vec<div_expr::LogicalPlan> {
    vec![
        PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .build(),
        PlanBuilder::scan("supplies")
            .semi_join(PlanBuilder::scan("parts"))
            .union(PlanBuilder::scan("supplies").anti_semi_join(PlanBuilder::scan("parts")))
            .build(),
        PlanBuilder::scan("supplies")
            .rename([("p#", "x")])
            .difference(PlanBuilder::values(relation! { ["s#", "x"] => [1, 1] }))
            .build(),
        PlanBuilder::scan("supplies")
            .intersect(PlanBuilder::scan("supplies").select(Predicate::cmp_value(
                "p#",
                CompareOp::Lt,
                3,
            )))
            .build(),
        PlanBuilder::scan("parts")
            .project(["p#"])
            .rename([("p#", "x")])
            .product(
                PlanBuilder::scan("parts")
                    .project(["p#"])
                    .rename([("p#", "y")]),
            )
            .build(),
        PlanBuilder::scan("supplies")
            .theta_join(
                PlanBuilder::scan("parts")
                    .rename([("p#", "q")])
                    .project(["q"]),
                Predicate::cmp_attrs("p#", CompareOp::Lt, "q"),
            )
            .build(),
        PlanBuilder::scan("supplies")
            .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
            .build(),
        PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .build(),
        PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build(),
        PlanBuilder::scan("supplies")
            .select(Predicate::cmp_value("s#", CompareOp::GtEq, 1))
            .select(Predicate::cmp_value("p#", CompareOp::LtEq, 3))
            .project(["s#"])
            .build(),
        PlanBuilder::values(relation! { ["k"] => [1], [2] })
            .union(PlanBuilder::values(relation! { ["k"] => [2], [3] }))
            .build(),
    ]
}

/// Every distinct operator label of the compiled plan, depth-first.
fn labels(plan: &PhysicalPlan) -> BTreeSet<String> {
    fn walk(plan: &PhysicalPlan, out: &mut BTreeSet<String>) {
        out.insert(plan.label());
        for child in plan.children() {
            walk(child, out);
        }
    }
    let mut out = BTreeSet::new();
    walk(plan, &mut out);
    out
}

/// Drive a streaming execution to its terminal state: the collected result
/// or the aborting error, plus the final statistics (absent only when the
/// pipeline failed to compile — nothing was acquired, nothing can leak).
fn drive(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
    guard: QueryGuard,
) -> (Result<Relation, ExprError>, Option<ExecStats>) {
    let mut executor = match StreamExecutor::with_guard(plan, catalog, config, guard) {
        Ok(executor) => executor,
        Err(err) => return (Err(err), None),
    };
    let mut out = Relation::empty(executor.schema().clone());
    let mut failure = None;
    loop {
        match executor.next_batch() {
            Ok(Some(batch)) => {
                for i in 0..batch.num_rows() {
                    out.insert(batch.row(i)).unwrap();
                }
            }
            Ok(None) => break,
            Err(err) => {
                failure = Some(err);
                break;
            }
        }
    }
    let stats = executor.finish();
    match failure {
        Some(err) => (Err(err), Some(stats)),
        None => (Ok(out), Some(stats)),
    }
}

/// A drop guard so a failed assertion cannot leak an armed fault into the
/// next test in this process.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        failpoint::disarm_all();
    }
}

#[test]
fn every_fault_site_of_every_shape_aborts_cleanly() {
    let _serial = failpoint::test_serial();
    let _cleanup = DisarmOnDrop;
    failpoint::disarm_all();
    let c = catalog();
    // Small batches so multi-batch pipelines exercise mid-stream faults.
    let config = PlannerConfig::default().batch_size(2);
    let mut fired = 0usize;
    let mut sites_total = 0usize;
    for logical in shapes() {
        let plan = plan_query(&logical, &config).unwrap();
        let (baseline, baseline_stats) = drive(&plan, &c, &config, QueryGuard::default());
        let baseline = baseline.unwrap_or_else(|err| panic!("clean run failed: {err}\n{plan}"));
        assert_eq!(
            baseline_stats.unwrap().resident_rows_on_finish,
            0,
            "clean run leaks?!\n{plan}"
        );
        for label in labels(&plan) {
            for phase in ["open", "next_batch", "close"] {
                let site = format!("{label}.{phase}");
                sites_total += 1;
                failpoint::arm(&site, FailAction::Error("chaos".into()));
                let (result, stats) = drive(&plan, &c, &config, QueryGuard::default());
                failpoint::disarm(&site);
                if let Some(stats) = &stats {
                    assert_eq!(
                        stats.resident_rows_on_finish, 0,
                        "site {site} leaked resident rows\n{plan}"
                    );
                }
                match (phase, result) {
                    // Close is infallible: the armed error is swallowed and
                    // the result is untouched.
                    ("close", Ok(got)) => assert_eq!(got, baseline, "site {site}\n{plan}"),
                    ("close", Err(err)) => {
                        panic!("close-site fault must not abort, got {err}\n{plan}")
                    }
                    // Open faults abort compilation before any batch flows.
                    ("open", Ok(_)) => panic!("open-site fault {site} was ignored\n{plan}"),
                    ("open", Err(err)) => {
                        fired += 1;
                        assert!(
                            err.to_string().contains(&format!("failpoint {site}")),
                            "site {site} surfaced as {err}\n{plan}"
                        );
                    }
                    // An emission fault aborts *if the operator ever
                    // emits*; an operator whose output is empty (e.g. an
                    // anti-semi join that eliminates everything) finishes
                    // clean without reaching its emission site.
                    ("next_batch", Err(err)) => {
                        fired += 1;
                        assert!(
                            err.to_string().contains(&format!("failpoint {site}")),
                            "site {site} surfaced as {err}\n{plan}"
                        );
                    }
                    ("next_batch", Ok(got)) => {
                        assert_eq!(got, baseline, "unfired site {site}\n{plan}")
                    }
                    (other, _) => unreachable!("phase {other}"),
                }
            }
        }
    }
    // The suite is not vacuous: the overwhelming majority of sites actually
    // observed their fault (only empty-output emission sites may not).
    assert!(
        fired * 2 > sites_total,
        "only {fired} of {sites_total} sites fired"
    );
}

/// An injected *delay* under a wall-clock deadline surfaces as the typed
/// deadline error — the guard check directly after the stalled emission
/// observes the expiry, within one batch boundary.
#[test]
fn injected_delays_trip_an_armed_deadline() {
    let _serial = failpoint::test_serial();
    let _cleanup = DisarmOnDrop;
    failpoint::disarm_all();
    let c = catalog();
    let config = PlannerConfig::default().batch_size(2);
    let plan = plan_query(
        &PlanBuilder::scan("supplies").project(["s#"]).build(),
        &config,
    )
    .unwrap();
    failpoint::arm(
        "TableScan(supplies).next_batch",
        FailAction::Delay(Duration::from_millis(30)),
    );
    let guard = QueryGuard::default().with_deadline(Duration::from_millis(10));
    let (result, stats) = drive(&plan, &c, &config, guard);
    failpoint::disarm_all();
    let err = result.unwrap_err();
    assert!(
        matches!(err, ExprError::DeadlineExceeded { limit_ms: 10, .. }),
        "{err}"
    );
    assert_eq!(stats.unwrap().resident_rows_on_finish, 0);
    // Without the delay the same guarded plan finishes comfortably.
    let (result, _) = drive(
        &plan,
        &c,
        &config,
        QueryGuard::default().with_deadline(Duration::from_millis(10)),
    );
    assert!(result.is_ok());
}

/// Count the live spill directories this process has in the OS temp dir —
/// the invariant under spill chaos is that this number returns to its
/// starting value on every exit path (success *and* mid-spill abort).
fn live_spill_dirs() -> usize {
    let prefix = format!("div-spill-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
                .count()
        })
        .unwrap_or(0)
}

/// Faults at the spill-file boundary (`spill.write` on every partition
/// write, `spill.read` on every open and chunk read) abort the spilling
/// query with the typed failpoint error, release every resident row, and
/// leave no spill directory behind.
#[test]
fn spill_faults_abort_cleanly_and_leave_no_files() {
    let _serial = failpoint::test_serial();
    let _cleanup = DisarmOnDrop;
    failpoint::disarm_all();
    let mut c = Catalog::new();
    c.register(
        "supplies",
        Relation::from_rows(
            ["s#", "p#"],
            (0..60i64).flat_map(|s| (0..5i64).map(move |p| vec![s, p])),
        )
        .unwrap(),
    );
    c.register(
        "wanted",
        Relation::from_rows(["p#"], (0..5i64).map(|p| vec![p])).unwrap(),
    );
    let config = PlannerConfig::default()
        .batch_size(4)
        .memory_budget_rows(24)
        .spill_to_disk(true);
    let plan = plan_query(
        &PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("wanted"))
            .build(),
        &config,
    )
    .unwrap();
    let guard = || div_physical::QueryGuard::from_config(&config);
    let dirs_before = live_spill_dirs();

    // The clean run under this budget genuinely spills and cleans up.
    let (baseline, stats) = drive(&plan, &c, &config, guard());
    let baseline = baseline.expect("clean spilling run");
    assert_eq!(baseline.len(), 60, "all 60 groups are complete");
    let stats = stats.unwrap();
    assert!(stats.spill_partitions > 0, "budget 24 must force spilling");
    assert_eq!(stats.resident_rows_on_finish, 0);
    assert_eq!(
        live_spill_dirs(),
        dirs_before,
        "clean run leaked spill dirs"
    );

    for site in ["spill.write", "spill.read"] {
        failpoint::arm(site, FailAction::Error("spill chaos".into()));
        let (result, stats) = drive(&plan, &c, &config, guard());
        failpoint::disarm(site);
        let err = result.expect_err(site);
        assert!(
            err.to_string().contains(&format!("failpoint {site}")),
            "site {site} surfaced as {err}"
        );
        assert_eq!(
            stats.unwrap().resident_rows_on_finish,
            0,
            "site {site} leaked resident rows"
        );
        assert_eq!(
            live_spill_dirs(),
            dirs_before,
            "site {site} left spill files behind"
        );
    }

    // And the same plan still runs clean after the chaos.
    let (after, _) = drive(&plan, &c, &config, guard());
    assert_eq!(after.unwrap(), baseline);
}

/// `attach.open` chaos over the wire: a fault while opening the table file
/// surfaces as a typed `ERR`, the catalog stays unchanged, the session
/// survives, and a retry after disarming succeeds.
#[test]
fn attach_faults_surface_over_the_wire_and_leave_the_catalog_unchanged() {
    let _serial = failpoint::test_serial();
    let _cleanup = DisarmOnDrop;
    failpoint::disarm_all();
    use div_server::{Client, ClientError, Server, ServerConfig};
    use div_sql::Engine;
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("div_chaos_attach_{}.divcol", std::process::id()));
    let rel = relation! { ["a"] => [1], [2], [3] };
    div_storage::TableWriter::write_relation(&path, &rel, 2).unwrap();

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(Engine::new(Catalog::new())),
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let path_str = path.to_str().expect("utf-8 temp path");

    failpoint::arm("attach.open", FailAction::Error("attach chaos".into()));
    let err = client.attach("ext", path_str).unwrap_err();
    failpoint::disarm_all();
    match &err {
        ClientError::Server { message, .. } => {
            assert!(message.contains("failpoint attach.open"), "{message}")
        }
        other => panic!("expected a server error, got {other}"),
    }
    // The failed attach registered nothing.
    let err = client.query("SELECT a FROM ext").unwrap_err();
    assert!(err.to_string().contains("ext"), "{err}");

    // After disarming, the same attach succeeds and the table serves.
    client.attach("ext", path_str).unwrap();
    let rows = client.query("SELECT a FROM ext").unwrap().rows;
    assert_eq!(rows.len(), 3);

    client.close().unwrap();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Wire-level chaos: an injected fault reaches the client as the typed
/// `ERR PLAN` terminal (faults ride the existing error channel), the
/// session survives, and the server metrics reconcile with what the client
/// observed.
#[test]
fn injected_faults_surface_over_the_wire_and_the_session_survives() {
    let _serial = failpoint::test_serial();
    let _cleanup = DisarmOnDrop;
    failpoint::disarm_all();
    use div_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
    use div_sql::Engine;
    use std::sync::Arc;

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(Engine::new(catalog())),
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let sql = "SELECT s# FROM supplies";
    let clean = client.query(sql).unwrap();
    assert!(!clean.rows.is_empty());

    failpoint::arm(
        "TableScan(supplies).next_batch",
        FailAction::Error("wire chaos".into()),
    );
    let err = client.query(sql).unwrap_err();
    failpoint::disarm_all();
    match &err {
        ClientError::Server {
            code: Some(ErrorCode::Plan),
            message,
            ..
        } => assert!(
            message.contains("failpoint TableScan(supplies).next_batch"),
            "{message}"
        ),
        other => panic!("expected ERR PLAN, got {other}"),
    }

    // The session survived the fault and serves the same query again.
    let after = client.query(sql).unwrap();
    assert_eq!(after.rows, clean.rows);

    // Metrics reconcile with what the client observed: 3+ statements
    // served, exactly 1 failed, and the fault was not misclassified as a
    // governance abort. Counters are bumped after the terminal line is
    // written, so drain the server before reading them.
    let metrics = Arc::clone(server.metrics());
    client.close().unwrap();
    server.shutdown();
    assert_eq!(metrics.requests_failed.load(Ordering::Relaxed), 1);
    assert!(metrics.requests_served.load(Ordering::Relaxed) >= 3);
    assert_eq!(metrics.queries_cancelled.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.deadline_aborts.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.budget_aborts.load(Ordering::Relaxed), 0);
}
