//! The conformance suite: golden corpus, differential fuzz smoke, and
//! engine-metrics reconciliation under generated workloads.
//!
//! Environment knobs (see `crates/conformance`):
//!
//! * `CONFORMANCE_SEED` — base fuzz seed (decimal or `0x…`); a failing run
//!   prints the exact value to replay.
//! * `CONFORMANCE_CASES` — fuzz case count (default here: 300; CI's smoke
//!   job and `scripts/fuzz_smoke.sh` run far more).
//! * `CONFORMANCE_ARTIFACT` — where to write the failing-case repro file.
//! * `CONFORMANCE_BLESS=1` — re-record the golden `expect` blocks in place.

use div_conformance::fuzzer::{run, FuzzConfig};
use div_conformance::golden::{self, parse_file, render_file};
use div_conformance::grammar::CaseSpec;
use div_conformance::laws;
use div_sql::{Engine, Params};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Every checked-in golden file parses, replays through the full
/// differential matrix, and matches its recorded expectations; the corpus
/// holds at least 100 cases and covers all 17 laws.
#[test]
fn golden_suite_passes_and_covers_all_laws() {
    let files = golden::golden_files(&golden_dir());
    assert!(
        files.len() >= 6,
        "expected the full golden corpus under tests/golden/, found {} files",
        files.len()
    );
    let mut cases = 0;
    let mut laws_covered = BTreeSet::new();
    for path in files {
        let report = golden::run_file(&path).unwrap_or_else(|e| panic!("{e}"));
        cases += report.cases;
        laws_covered.extend(report.laws);
    }
    assert!(cases >= 100, "golden corpus has only {cases} cases");
    for law in 1..=17u8 {
        assert!(
            laws_covered.contains(&law),
            "law {law} is not covered by any golden case"
        );
    }
}

/// The checked-in corpus stays in sync with the code-defined skeleton in
/// `div_conformance::golden::default_corpus` — same files, same case names
/// in the same order. (Re-record with `CONFORMANCE_BLESS=1` after editing
/// the skeleton.)
#[test]
fn golden_corpus_matches_the_code_defined_skeleton() {
    for skeleton in golden::default_corpus() {
        let path = golden_dir().join(&skeleton.name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (bless the corpus first)", path.display()));
        let on_disk = parse_file(&skeleton.name, &text).unwrap_or_else(|e| panic!("{e}"));
        let disk_names: Vec<&str> = on_disk.cases.iter().map(|c| c.name.as_str()).collect();
        let skeleton_names: Vec<&str> = skeleton.cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            disk_names, skeleton_names,
            "{}: case list diverged from default_corpus()",
            skeleton.name
        );
    }
}

/// Golden files are a rendering fixpoint: parse → render reproduces the
/// exact on-disk bytes, so hand edits that would be lost by a bless run
/// are caught here.
#[test]
fn golden_files_are_canonically_rendered() {
    for path in golden::golden_files(&golden_dir()) {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_file(&name, &text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            render_file(&parsed),
            text,
            "{name}: not in canonical rendering (run a CONFORMANCE_BLESS=1 pass)"
        );
    }
}

/// Differential fuzz smoke: generated division queries agree across every
/// formulation and execution strategy. Scale with `CONFORMANCE_CASES`.
#[test]
fn fuzz_differential_smoke() {
    let config = FuzzConfig::from_env(300);
    let report = run(&config)
        .unwrap_or_else(|m| panic!("differential mismatch (replay with CONFORMANCE_SEED):\n{m}"));
    eprintln!(
        "fuzz smoke: {} cases, {} formulations, {} executions, \
         {} great divides, {} empty divisors, {} parameterized",
        report.cases,
        report.formulations,
        report.executions,
        report.great_divides,
        report.empty_divisors,
        report.parameterized
    );
    assert_eq!(report.cases, config.cases);
    // The grammar must keep exercising the interesting corners.
    if config.cases >= 300 {
        assert!(report.great_divides > 0, "no great divides generated");
        assert!(report.empty_divisors > 0, "no empty divisors generated");
        assert!(report.parameterized > 0, "no parameterized cases generated");
    }
}

/// The engine's metrics registry reconciles with per-cursor stats under a
/// generated workload: one query per generated case, counting executions,
/// returned rows, prepared statements and plan-cache hits.
#[test]
fn engine_metrics_reconcile_under_generated_workloads() {
    // One shared catalog: the first generated spec's tables.
    let spec = CaseSpec::generate(0x5eed);
    let engine = Engine::new(spec.catalog());
    let base = engine.metrics();

    let mut executed = 0u64;
    let mut rows = 0u64;
    for round in 0..8u64 {
        let output = engine
            .query_collect(&spec.divide_by_sql(false))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        executed += 1;
        rows += output.relation.len() as u64;
        // Per-cursor stats must agree with the materialized relation.
        assert_eq!(output.stats.output_rows, output.relation.len());
    }

    // Prepared path: same SQL prepared twice → one miss, one cache hit.
    let sql = spec.divide_by_sql(true);
    let has_params = sql.contains('$');
    let params = match spec.divisor_filter.as_ref().and_then(|f| f.param.clone()) {
        Some(name) => {
            let value = spec.divisor_filter.as_ref().unwrap().value.clone();
            Params::new().bind(name, value)
        }
        None => Params::new(),
    };
    let first = engine.prepare(&sql).expect("prepare");
    let second = engine.prepare(&sql).expect("re-prepare");
    for prepared in [&first, &second] {
        let output = prepared
            .execute_collect(&engine, &params)
            .expect("prepared execution");
        executed += 1;
        rows += output.relation.len() as u64;
        assert_eq!(output.stats.output_rows, output.relation.len());
    }
    let _ = has_params;

    let snapshot = engine.metrics();
    assert_eq!(
        snapshot.queries_executed - base.queries_executed,
        executed,
        "queries_executed diverged from the cursors actually collected"
    );
    assert_eq!(
        snapshot.rows_returned - base.rows_returned,
        rows,
        "rows_returned diverged from the relations actually materialized"
    );
    assert_eq!(snapshot.statements_prepared - base.statements_prepared, 2);
    assert_eq!(
        snapshot.prepared_cache_misses - base.prepared_cache_misses,
        1
    );
    assert_eq!(snapshot.prepared_cache_hits - base.prepared_cache_hits, 1);
}

/// Regression: preparing a query whose divisor filter is `$parameterized`
/// must not let a data-dependent law (Law 4's replication) fire at prepare
/// time — a later binding can empty the divisor, where the law is unsound.
#[test]
fn prepared_statements_stay_sound_when_a_binding_empties_the_divisor() {
    use div_algebra::relation;
    let mut catalog = div_expr::Catalog::new();
    catalog.register(
        "r",
        relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1], [3, 2] },
    );
    catalog.register("s", relation! { ["b"] => [1], [2] });
    let engine = Engine::new(catalog);
    let sql = "SELECT * FROM r DIVIDE BY (SELECT * FROM s WHERE s.b = $p) AS d ON r.b = d.b";
    let prepared = engine.prepare(sql).expect("prepare");
    for bound in [1i64, 99, 2, 99] {
        let got = prepared
            .execute_collect(&engine, &Params::new().bind("p", bound))
            .expect("prepared execution")
            .relation;
        let literal = engine
            .query_collect(&sql.replace("$p", &bound.to_string()))
            .expect("literal execution")
            .relation;
        assert_eq!(
            got, literal,
            "binding p={bound} diverged from the literal query"
        );
    }
}

/// The optimizer-on/off plan-comparison hook: `Explain::plan_signature`
/// distinguishes physical shapes, so a law that fires shows up as a
/// signature change against an optimizer-off engine.
#[test]
fn plan_signatures_expose_optimizer_effects() {
    let case = laws::find("law04").expect("registry shape");
    let catalog = case.catalog();
    // Render Law 4's SQL shape over the registry catalog.
    let sql = "SELECT * FROM r1 DIVIDE BY (SELECT * FROM r2 WHERE r2.b < 3) AS d ON r1.b = d.b";
    let optimizing = Engine::new(catalog.clone());
    let raw = Engine::builder(catalog).without_optimizer().build();
    let opt_explain = optimizing.explain(sql).expect("explain");
    let raw_explain = raw.explain(sql).expect("explain");
    assert!(
        opt_explain.rewritten(),
        "law 4 should fire on its registry shape"
    );
    assert_ne!(
        opt_explain.plan_signature(),
        raw_explain.plan_signature(),
        "a fired law must change the physical signature"
    );
    // And the signature is stable across repeated compilations.
    assert_eq!(
        opt_explain.plan_signature(),
        optimizing.explain(sql).expect("explain").plan_signature()
    );
}
