//! Integration tests of the streaming execution API: the `Engine`'s
//! incremental `Cursor`, its compatibility shims, and the peak-resident
//! accounting of the streaming executor — exercised through the public
//! facade only.

use division::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
    );
    c.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    c
}

const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";

#[test]
fn cursor_schema_iteration_and_collect_agree() {
    let engine = Engine::builder(catalog())
        .planner_config(PlannerConfig::default().batch_size(1))
        .build();
    // One compile feeds the incremental path...
    let mut cursor = engine.query(Q2).unwrap();
    assert_eq!(cursor.schema().names(), vec!["s#"]);
    let mut streamed = Relation::empty(cursor.schema().clone());
    for batch in cursor.by_ref() {
        let batch = batch.unwrap();
        for i in 0..batch.num_rows() {
            streamed.insert(batch.row(i)).unwrap();
        }
    }
    let streamed_stats = cursor.finish_stats();
    // ...and another the one-call compatibility shim; both agree.
    let collected = engine.query_collect(Q2).unwrap();
    assert_eq!(streamed, collected.relation);
    assert_eq!(streamed, relation! { ["s#"] => [1], [2] });
    assert_eq!(streamed_stats.output_rows, collected.stats.output_rows);
    assert_eq!(streamed_stats.rows_scanned, collected.stats.rows_scanned);
}

#[test]
fn prepared_statements_stream_through_cursors() {
    let engine = Engine::new(catalog());
    let stmt = engine
        .prepare(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
        )
        .unwrap();
    let cursor = stmt
        .execute(&engine, &Params::new().bind("color", "blue"))
        .unwrap();
    assert_eq!(cursor.schema().names(), vec!["s#"]);
    assert_eq!(
        cursor.collect_relation().unwrap(),
        relation! { ["s#"] => [1], [2] }
    );
    assert_eq!(
        engine.compile_count(),
        1,
        "streaming executions don't compile"
    );
}

#[test]
fn dropping_a_cursor_early_is_safe_and_cheap() {
    let mut catalog = Catalog::new();
    let rows: Vec<Vec<i64>> = (0..20_000).map(|i| vec![i, i % 5]).collect();
    catalog.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
    let engine = Engine::builder(catalog)
        .planner_config(PlannerConfig::default().batch_size(256))
        .build();
    let mut cursor = engine.query("SELECT a FROM big WHERE b = 1").unwrap();
    let _first = cursor.next().unwrap().unwrap();
    drop(cursor); // no stats, no drain — upstream work simply never happens
}

#[test]
fn deep_pipeline_peak_is_bounded_by_batch_size_not_table_size() {
    // The streaming pitch end to end: a deep filter pipeline over a 30k-row
    // table with batch_size 128 keeps the executor's peak resident rows at
    // a small multiple of the batch size, while the materializing backend's
    // largest intermediate is table-sized.
    let table_rows = 30_000usize;
    let mut c = Catalog::new();
    let rows: Vec<Vec<i64>> = (0..table_rows as i64).map(|i| vec![i, i % 13]).collect();
    c.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
    let engine = Engine::builder(c.clone())
        .planner_config(PlannerConfig::default().batch_size(128))
        .build();
    let sql = "SELECT b FROM big WHERE b < 12";
    let output = engine.query_collect(sql).unwrap();
    assert_eq!(output.relation.len(), 12);
    assert!(
        output.stats.peak_resident_rows <= 8 * 128,
        "peak {} should be O(batch_size); the table has {} rows",
        output.stats.peak_resident_rows,
        table_rows
    );
    // Reference point: the materializing columnar backend holds a
    // table-sized intermediate for the same query.
    let materializing = Engine::builder(c)
        .planner_config(PlannerConfig::with_backend(ExecutionBackend::Columnar))
        .build();
    let analyzed = materializing.explain(sql).unwrap();
    let (_, mat_stats) = execute_with_config(
        &analyzed.physical,
        &materializing.catalog(),
        materializing.planner_config(),
    )
    .unwrap();
    assert!(mat_stats.max_intermediate >= 12);
    assert_eq!(
        mat_stats.peak_resident_rows, 0,
        "materializing path reports no peaks"
    );
}

#[test]
fn blocking_operators_still_stream_their_output_in_chunks() {
    // Aggregation is a blocking boundary, but its *output* still arrives in
    // batch_size chunks.
    let mut c = Catalog::new();
    let rows: Vec<Vec<i64>> = (0..1_000).map(|i| vec![i, i % 2]).collect();
    c.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
    let engine = Engine::builder(c)
        .planner_config(PlannerConfig::default().batch_size(64))
        .build();
    let logical = PlanBuilder::scan("big")
        .group_aggregate(["a"], [AggregateCall::count("b", "n")])
        .build();
    let mut cursor = engine.stream_logical(&logical).unwrap();
    let mut batches = 0usize;
    let mut rows = 0usize;
    for batch in cursor.by_ref() {
        let batch = batch.unwrap();
        assert!(batch.num_rows() <= 64, "chunks respect batch_size");
        batches += 1;
        rows += batch.num_rows();
    }
    assert_eq!(rows, 1_000);
    assert!(batches >= 1_000 / 64, "the blocking result is re-chunked");
    let stats = cursor.finish_stats();
    assert_eq!(stats.output_rows, 1_000);
    // Resident accounting across a blocking boundary: the buffered input
    // (1000 rows) and the aggregate result (1000 rows) coexist briefly,
    // plus a few in-flight chunks — but served chunks must not be
    // double-counted or leak, so the peak stays near 2× the blocking state.
    assert!(
        stats.peak_resident_rows <= 2_600,
        "peak {} suggests leaked or double-counted chunks",
        stats.peak_resident_rows
    );
}

#[test]
fn run_query_shim_routes_through_the_cursor() {
    // The deprecated free function now collects a Cursor internally: same
    // bytes, same output accounting, streaming kernel labels in the stats.
    #[allow(deprecated)]
    let (relation, stats) = run_query(Q2, &catalog(), &PlannerConfig::default()).unwrap();
    assert_eq!(relation, relation! { ["s#"] => [1], [2] });
    assert_eq!(stats.output_rows, 2);
    assert!(stats.rows_per_operator.contains_key("ColumnarHashDivision"));
    assert!(stats.peak_resident_batches > 0);
}
