//! A minimal stand-in for the parts of the crates.io `parking_lot` API this
//! workspace uses (`Mutex` and `RwLock` with their `new`/`lock`/`read`/
//! `write`/`into_inner` surface), implemented on top of `std::sync`.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `parking_lot` cannot be fetched. The semantic
//! difference that matters here is poisoning: `parking_lot` has none, so
//! these wrappers transparently recover the data from a poisoned std lock.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the mutex, ignoring poisoning like `parking_lot` does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards never return a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new readers-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire shared read access, ignoring poisoning like `parking_lot`.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write_and_into_inner() {
        let mut l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 3);
    }
}
