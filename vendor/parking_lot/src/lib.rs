//! A minimal stand-in for the parts of the crates.io `parking_lot` API this
//! workspace uses (`Mutex::new`, `lock`, `into_inner`), implemented on top of
//! `std::sync::Mutex`.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `parking_lot` cannot be fetched. The semantic
//! difference that matters here is poisoning: `parking_lot` has none, so this
//! wrapper transparently recovers the data from a poisoned std mutex.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the mutex, ignoring poisoning like `parking_lot` does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
