//! A minimal stand-in for `crossbeam::scope` (implemented with
//! `std::thread::scope`, stabilized in Rust 1.63 after crossbeam's scoped
//! threads were designed) plus the bounded MPMC [`channel`] used by
//! `div_server`'s admission-controlled worker pool.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `crossbeam` cannot be fetched. API differences kept
//! for compatibility: the spawn closure receives a scope handle argument
//! (unused by this workspace), and `scope` returns a `Result` even though
//! `std::thread::scope` converts child panics into a panic of the parent.

#![forbid(unsafe_code)]

pub mod channel;

use std::any::Any;

/// Error payload of a panicking scope (never produced by this stand-in;
/// `std::thread::scope` resumes the panic instead).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Handle passed to [`scope`]'s closure and to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope handle so nested
    /// spawns are possible, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning threads that may borrow from the caller.
///
/// All spawned threads are joined before `scope` returns. If a child thread
/// panics, the panic is resumed on the caller (so the `Err` variant is never
/// actually returned; callers that `.expect(..)` the result behave the same
/// as with crossbeam).
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("threads must not panic");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
