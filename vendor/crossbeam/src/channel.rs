//! A minimal stand-in for `crossbeam-channel`'s bounded MPMC channel,
//! implemented with `std::sync::{Mutex, Condvar}`.
//!
//! Only the surface this workspace uses is provided: [`bounded`] channels
//! with [`Sender::send`] / [`Sender::try_send`] and [`Receiver::recv`] /
//! [`Receiver::recv_timeout`]. Both halves are cloneable (multi-producer,
//! multi-consumer); the channel disconnects when every handle of either
//! side is dropped, which is the worker-pool shutdown signal `div_server`
//! relies on.

#![allow(clippy::new_without_default)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error of [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error of [`Sender::send`]: every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of [`Receiver::recv`]: the queue is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when a message is enqueued or the last sender leaves.
    not_empty: Condvar,
}

/// The sending half of a [`bounded`] channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a [`bounded`] channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded multi-producer multi-consumer channel holding at most
/// `capacity` queued messages (`capacity` is clamped to at least one; the
/// real crossbeam's zero-capacity rendezvous mode is not reproduced).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue without blocking; fails when the queue is full or every
    /// receiver is gone. This is the admission-control primitive: a full
    /// queue is an overload signal, not something to wait out.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, spinning on short waits while the queue is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue, blocking until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .pop_front()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake every blocked receiver so it can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers -= 1;
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<i32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn receivers_drain_across_threads_and_observe_disconnect() {
        let (tx, rx) = bounded::<usize>(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..20 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn recv_timeout_times_out_on_an_empty_channel() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }
}
