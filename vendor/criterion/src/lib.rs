//! A minimal, dependency-free stand-in for the parts of the crates.io
//! `criterion` API this workspace's benches use: [`Criterion`],
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `criterion` cannot be fetched. This stand-in runs a
//! short warm-up, then times a fixed wall-clock window per benchmark and
//! prints a single `name  median-iteration-time` line. It has no statistical
//! machinery, plots or CLI; it exists so `cargo bench` compiles, runs, and
//! reports usable relative numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// How long each benchmark is warmed up for.
const WARMUP_WINDOW: Duration = Duration::from_millis(60);

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a common prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, &mut f);
        self
    }

    /// Run one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(routine());
            warm_iters += 1;
        }
        // Measure in batches sized so one batch is ~1/20 of the window.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = ((MEASURE_WINDOW.as_nanos() / 20 / per_iter.max(1)) as u64).clamp(1, 1 << 20);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_WINDOW {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!("{label:<60} {median:>12.2?}/iter"),
        None => println!("{label:<60} (no samples)"),
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Generate the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 100).label, "algo/100");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
