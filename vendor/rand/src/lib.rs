//! A minimal, dependency-free stand-in for the parts of the crates.io `rand`
//! API this workspace uses (`Rng::gen`, `gen_bool`, `gen_range`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `rand` cannot be fetched. The generators only need a
//! reproducible, reasonably uniform PRNG, which the SplitMix64 generator
//! below provides. The API is call-compatible with the real crate for the
//! subset used here, so swapping the real dependency back in is a one-line
//! manifest change.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values that can be drawn uniformly from a full-range generator.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty, like
    /// the real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

// For the 64-bit-wide types, `end.wrapping_sub(start) as u64` is the exact
// span (two's complement); narrower types widen through i64 first so a span
// larger than the signed maximum does not sign-extend into garbage.
macro_rules! impl_sample_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_64!(i64, u64, usize);

macro_rules! impl_sample_range_32 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (i64::from(end) - i64::from(start)) as u64;
                (i64::from(start) + uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_32!(i32, u32);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea &
    /// Flood 2014). Passes BigCrush on 64-bit outputs and is more than
    /// uniform enough for synthetic workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(1..=16);
            assert!((1..=16).contains(&w));
        }
    }

    #[test]
    fn gen_range_i32_spans_wider_than_i32_max() {
        // The span -2e9..2e9 (4e9) exceeds i32::MAX; widening through i64
        // must keep every sample in bounds.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-2_000_000_000i32..2_000_000_000i32);
            assert!((-2_000_000_000..2_000_000_000).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
