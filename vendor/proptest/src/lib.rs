//! A minimal, dependency-free stand-in for the parts of the crates.io
//! `proptest` API this workspace uses: the [`proptest!`] macro, range and
//! tuple [`Strategy`]s, `prop::collection::vec`, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `proptest` cannot be fetched. This stand-in runs
//! each property for `ProptestConfig::cases` deterministic pseudo-random
//! cases. It does not implement shrinking: a failing case panics with the
//! ordinary `assert!` message, which is enough for the property tests here
//! because every generated value is small and printed by the assertion.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Execution parameters of a property, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator driving the properties.
pub mod test_runner {
    /// SplitMix64 with a fixed seed: every `cargo test` run replays the same
    /// cases, so failures are reproducible without persistence files.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fresh deterministic generator.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5eed_cafe_f00d_d1ce,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A value generator. The real proptest `Strategy` also carries a value tree
/// for shrinking; this stand-in only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, usize, i32, u32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy combinators, mirroring the `proptest::prop` module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// Strategy for `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Define property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        @funcs ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @funcs ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @funcs ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Skip the current case when its precondition does not hold.
///
/// Expands to a `continue` of the surrounding case loop, so it must appear at
/// the top level of a property body (which is how this workspace uses it).
/// Unlike the real proptest, skipped cases still count toward `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0..6i64, y in 1..5usize) {
            prop_assert!((0..6).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((0..4i64, 0..3i64), 0..10)) {
            prop_assert!(pairs.len() < 10);
            for (a, b) in pairs {
                prop_assert!((0..4).contains(&a));
                prop_assert!((0..3).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in prop::collection::vec(0..3i64, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
