//! A minimal, dependency-free stand-in for the parts of the crates.io
//! `proptest` API this workspace uses: the [`proptest!`] macro, range and
//! tuple [`Strategy`]s, `prop::collection::vec`, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the real `proptest` cannot be fetched. This stand-in runs
//! each property for `ProptestConfig::cases` deterministic pseudo-random
//! cases. It does not implement shrinking: a failing case panics with the
//! ordinary `assert!` message, which is enough for the property tests here
//! because every generated value is small and printed by the assertion.
//!
//! Seeding is reproducible per *case*: every case derives its own seed from
//! a base seed ([`test_runner::seed_for`]; case 0 reuses the base verbatim),
//! a failing case prints its test name, case index and a
//! `PROPTEST_SEED=0x…` replay line, and the base seed can be overridden via
//! the `PROPTEST_SEED` (or `CONFORMANCE_SEED`) environment variable — set it
//! to a printed failing seed to replay that case as case 0.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Execution parameters of a property, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator driving the properties.
pub mod test_runner {
    /// Base seed used when no environment override is present.
    pub const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_d1ce;

    /// The base seed for this test run: `PROPTEST_SEED` if set (decimal or
    /// `0x…` hexadecimal), else `CONFORMANCE_SEED` (so one knob drives both
    /// this stub and the conformance fuzzer), else [`DEFAULT_SEED`].
    pub fn base_seed() -> u64 {
        for var in ["PROPTEST_SEED", "CONFORMANCE_SEED"] {
            if let Some(seed) = std::env::var(var).ok().and_then(|s| parse_seed(&s)) {
                return seed;
            }
        }
        DEFAULT_SEED
    }

    fn parse_seed(text: &str) -> Option<u64> {
        let text = text.trim();
        if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            text.parse().ok()
        }
    }

    /// The seed of case `case` under base seed `base`. Case 0 uses the base
    /// itself, so replaying a printed failing seed via `PROPTEST_SEED` hits
    /// the failure on the first case.
    pub fn seed_for(base: u64, case: u64) -> u64 {
        if case == 0 {
            return base;
        }
        let mut z = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Prints the failing case's replay line if dropped during a panic. The
    /// [`crate::proptest!`] macro keeps one alive across each case body.
    #[derive(Debug)]
    pub struct FailureReporter {
        /// Test function name.
        pub test: &'static str,
        /// Zero-based case index.
        pub case: u32,
        /// The case's derived seed.
        pub seed: u64,
    }

    impl Drop for FailureReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: test `{}` failed at case {} (seed {:#x})",
                    self.test, self.case, self.seed
                );
                eprintln!(
                    "proptest: replay with PROPTEST_SEED={:#x} cargo test {}",
                    self.seed, self.test
                );
            }
        }
    }

    /// SplitMix64: every `cargo test` run replays the same cases (unless
    /// `PROPTEST_SEED` overrides the base), so failures are reproducible
    /// without persistence files.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fresh deterministic generator with the fixed default seed.
        pub fn deterministic() -> Self {
            TestRng::from_seed(DEFAULT_SEED)
        }

        /// A generator seeded explicitly (used per case by `proptest!`).
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A value generator. The real proptest `Strategy` also carries a value tree
/// for shrinking; this stand-in only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, usize, i32, u32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy combinators, mirroring the `proptest::prop` module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// Strategy for `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Define property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        @funcs ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::test_runner::base_seed();
                for _case in 0..config.cases {
                    let _seed = $crate::test_runner::seed_for(base, _case as u64);
                    let mut rng = $crate::test_runner::TestRng::from_seed(_seed);
                    let _reporter = $crate::test_runner::FailureReporter {
                        test: stringify!($name),
                        case: _case,
                        seed: _seed,
                    };
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @funcs ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @funcs ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Skip the current case when its precondition does not hold.
///
/// Expands to a `continue` of the surrounding case loop, so it must appear at
/// the top level of a property body (which is how this workspace uses it).
/// Unlike the real proptest, skipped cases still count toward `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0..6i64, y in 1..5usize) {
            prop_assert!((0..6).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((0..4i64, 0..3i64), 0..10)) {
            prop_assert!(pairs.len() < 10);
            for (a, b) in pairs {
                prop_assert!((0..4).contains(&a));
                prop_assert!((0..3).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in prop::collection::vec(0..3i64, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn case_zero_replays_the_base_seed() {
        assert_eq!(crate::test_runner::seed_for(0x1234, 0), 0x1234);
        assert_ne!(
            crate::test_runner::seed_for(0x1234, 1),
            crate::test_runner::seed_for(0x1234, 2)
        );
        assert_ne!(
            crate::test_runner::seed_for(0x1234, 1),
            crate::test_runner::seed_for(0x1235, 1)
        );
    }

    #[test]
    fn explicit_seeds_drive_distinct_sequences() {
        let mut a = crate::test_runner::TestRng::from_seed(1);
        let mut b = crate::test_runner::TestRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = crate::test_runner::TestRng::from_seed(1);
        assert_eq!(
            crate::test_runner::TestRng::from_seed(1).next_u64(),
            a2.next_u64()
        );
    }
}
