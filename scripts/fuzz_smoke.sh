#!/usr/bin/env bash
# Differential fuzz smoke over the conformance grammar.
#
# Usage: scripts/fuzz_smoke.sh [cases]
#
# Runs the release-mode conformance fuzzer (grammar-generated division
# queries, checked across every formulation x execution strategy). Defaults
# to 10,000 cases — the acceptance bar for a local pre-merge run; CI runs a
# 2,000-case smoke on every push.
#
# Environment:
#   CONFORMANCE_SEED      base seed (decimal or 0x-hex); printed on failure
#   CONFORMANCE_ARTIFACT  path for the failing-case repro file
#                         (default: target/conformance-failure.txt)
set -euo pipefail
cd "$(dirname "$0")/.."

CASES="${1:-10000}"
ARTIFACT="${CONFORMANCE_ARTIFACT:-target/conformance-failure.txt}"

exec cargo run --release -q -p div-conformance --bin conformance_fuzz -- \
    --cases "$CASES" --artifact "$ARTIFACT"
