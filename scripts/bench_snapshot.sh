#!/usr/bin/env bash
# Run the key_pipeline criterion group and record its medians as JSON.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The output (default BENCH_key_pipeline.json at the repo root) is the
# repo's recorded perf-trajectory point for the vectorized key pipeline:
# per-benchmark median iteration times in nanoseconds, plus the
# keyvector-vs-rowkey speedup for every paired workload. Re-run after
# touching crates/columnar/src/{key_vector,hash_table}.rs or any hash
# kernel, and commit the refreshed JSON alongside the change.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_key_pipeline.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cargo bench -p div-bench --bench key_pipeline | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v cores="$(nproc 2>/dev/null || echo 1)" '
# Bench lines look like:  key_pipeline/string_join/keyvector/1000   28.54µs/iter
$NF ~ /\/iter$/ && NF == 2 {
    label = $1
    v = $2
    sub(/\/iter$/, "", v)
    mult = 1000000000
    if (v ~ /ns$/)      { mult = 1;       sub(/ns$/, "", v) }
    else if (v ~ /µs$/) { mult = 1000;    sub(/µs$/, "", v) }
    else if (v ~ /ms$/) { mult = 1000000; sub(/ms$/, "", v) }
    else                {                 sub(/s$/,  "", v) }
    ns[label] = v * mult
    order[n++] = label
}
END {
    printf "{\n"
    printf "  \"bench\": \"key_pipeline\",\n"
    printf "  \"recorded_at\": \"%s\",\n", date
    printf "  \"host_parallelism\": %s,\n", cores
    printf "  \"median_ns\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %.0f%s\n", order[i], ns[order[i]], (i < n - 1) ? "," : ""
    }
    printf "  },\n"
    printf "  \"speedup_vs_rowkey\": {\n"
    m = 0
    for (i = 0; i < n; i++) {
        label = order[i]
        if (label !~ /keyvector/) continue
        other = label
        sub(/keyvector/, "rowkey", other)
        if (other in ns && ns[label] > 0) {
            pair = label
            sub(/\/keyvector/, "", pair)
            lines[m++] = sprintf("    \"%s\": %.2f", pair, ns[other] / ns[label])
        }
    }
    for (i = 0; i < m; i++) printf "%s%s\n", lines[i], (i < m - 1) ? "," : ""
    printf "  }\n"
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
