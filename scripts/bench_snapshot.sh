#!/usr/bin/env bash
# Run a criterion bench group and record its medians as JSON — the repo's
# recorded perf-trajectory points.
#
# Usage: scripts/bench_snapshot.sh [bench] [output.json]
#
#   scripts/bench_snapshot.sh                  # key_pipeline -> BENCH_key_pipeline.json
#   scripts/bench_snapshot.sh streaming        # streaming    -> BENCH_streaming.json
#   scripts/bench_snapshot.sh serving          # serving      -> BENCH_serving.json
#
# Each snapshot records per-benchmark median iteration times in nanoseconds
# plus a fast-vs-slow speedup for every paired workload:
#
#   * key_pipeline pairs `keyvector` labels against their `rowkey` replicas
#     (vectorized key pipeline vs the pre-pipeline kernels);
#   * streaming pairs `cursor` labels against their `materialized`
#     counterparts (streaming executor vs whole-batch columnar execution —
#     the `first_batch` rows are the pagination-latency win);
#   * observability pairs `untraced` labels against their `traced`
#     counterparts (per-operator wall-clock tracing off vs on — the
#     "speedup" is the tracing overhead, expected close to 1.0);
#   * governance pairs `unguarded` labels against their `guarded`
#     counterparts (QueryGuard cancellation/deadline/budget checks off vs
#     fully armed — the "speedup" is the guard overhead, expected close
#     to 1.0);
#   * out_of_core pairs `inmemory` labels against their `spilled`
#     counterparts (unbudgeted execution vs hybrid hash operators squeezed
#     to an eighth of their input — the "speedup" is the spill overhead
#     factor), plus unpaired `file_scan/*` medians for the persistent
#     columnar format (full drain vs zone-map skip vs RAM baseline).
#
# Re-run after touching the measured modules and commit the refreshed JSON
# alongside the change.
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-key_pipeline}"

# The serving bench is not a criterion group: it drives a real TCP server
# with concurrent clients and emits the snapshot JSON itself (QPS and
# latency percentiles per workload mix — ad-hoc vs prepared vs mutating).
if [ "$bench" = serving ]; then
    out="${2:-BENCH_serving.json}"
    BENCH_RECORDED_AT="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
        cargo run --release --bin serving_bench >"$out"
    echo "wrote $out"
    exit 0
fi

case "$bench" in
key_pipeline)
    fast="keyvector"
    slow="rowkey"
    ;;
streaming)
    fast="cursor"
    slow="materialized"
    ;;
observability)
    fast="untraced"
    slow="traced"
    ;;
governance)
    fast="unguarded"
    slow="guarded"
    ;;
out_of_core)
    fast="inmemory"
    slow="spilled"
    ;;
*)
    echo "unknown bench '$bench' (expected key_pipeline, streaming, observability, governance or out_of_core)" >&2
    exit 1
    ;;
esac
out="${2:-BENCH_${bench}.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

cargo bench -p div-bench --bench "$bench" | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v cores="$(nproc 2>/dev/null || echo 1)" \
    -v bench="$bench" -v fast="$fast" -v slow="$slow" '
# Bench lines look like:  key_pipeline/string_join/keyvector/1000   28.54µs/iter
$NF ~ /\/iter$/ && NF == 2 {
    label = $1
    v = $2
    sub(/\/iter$/, "", v)
    mult = 1000000000
    if (v ~ /ns$/)      { mult = 1;       sub(/ns$/, "", v) }
    else if (v ~ /µs$/) { mult = 1000;    sub(/µs$/, "", v) }
    else if (v ~ /ms$/) { mult = 1000000; sub(/ms$/, "", v) }
    else                {                 sub(/s$/,  "", v) }
    ns[label] = v * mult
    order[n++] = label
}
END {
    printf "{\n"
    printf "  \"bench\": \"%s\",\n", bench
    printf "  \"recorded_at\": \"%s\",\n", date
    printf "  \"host_parallelism\": %s,\n", cores
    printf "  \"median_ns\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %.0f%s\n", order[i], ns[order[i]], (i < n - 1) ? "," : ""
    }
    printf "  },\n"
    printf "  \"speedup_vs_%s\": {\n", slow
    m = 0
    for (i = 0; i < n; i++) {
        label = order[i]
        if (label !~ fast) continue
        other = label
        sub(fast, slow, other)
        if (other in ns && ns[label] > 0) {
            pair = label
            sub("/" fast, "", pair)
            lines[m++] = sprintf("    \"%s\": %.2f", pair, ns[other] / ns[label])
        }
    }
    for (i = 0; i < m; i++) printf "%s%s\n", lines[i], (i < m - 1) ? "," : ""
    printf "  }\n"
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
