//! Workspace umbrella crate.
//!
//! This crate exists so the repository-level integration tests in `tests/`
//! and the runnable examples in `examples/` have a package to belong to; the
//! actual library code lives in the `crates/` members (start with the
//! [`division`] facade crate, or go straight to the [`Engine`] session API).

pub use division;
pub use division::prelude::{Cursor, Engine, EngineBuilder, Explain, Params, PreparedStatement};
