//! QPS / latency-percentile benchmark of the `div_server` serving layer.
//!
//! Drives a real TCP server with concurrent client threads over three
//! workload mixes and prints one JSON object (the `BENCH_serving.json`
//! schema) to stdout:
//!
//! * `adhoc` — every request is a full `QUERY` (parse → optimize → plan →
//!   execute per request);
//! * `prepared` — each client prepares once and then only `EXECUTE`s
//!   (the plan-cache path the paper's repeated-query serving argument is
//!   about);
//! * `mixed_mutating` — half ad-hoc, half prepared, with a concurrent
//!   catalog mutator flipping the divisor mid-flight (the snapshot-swap
//!   and transparent-replan overhead case).
//!
//! Usage: `serving_bench [--quick]`. `--quick` shrinks the request counts
//! for CI smoke runs. Set `BENCH_RECORDED_AT` to stamp the snapshot (the
//! wrapper script does); unset, the stamp is `"unstamped"`.

use div_datagen::scenarios::{generate, ScenarioConfig, ScenarioFamily};
use div_server::{Client, Server, ServerConfig};
use div_sql::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;

struct MixReport {
    name: &'static str,
    qps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    requests: usize,
    rows_per_request: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one mix: `clients` threads × `requests` requests each, returning
/// per-request latencies and the wall-clock of the whole mix.
fn run_mix(
    name: &'static str,
    addr: std::net::SocketAddr,
    sql: &str,
    requests: usize,
    prepared_fraction: f64,
) -> MixReport {
    let started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let sql = sql.to_string();
            let prepared = (i as f64) < prepared_fraction * CLIENTS as f64;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                if prepared {
                    client.prepare("bench", &sql).expect("prepare succeeds");
                }
                let mut latencies = Vec::with_capacity(requests);
                let mut rows = 0usize;
                for _ in 0..requests {
                    let t0 = Instant::now();
                    let result = if prepared {
                        client.execute("bench", &[])
                    } else {
                        client.query(&sql)
                    };
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    match result {
                        Ok(r) => {
                            rows += r.rows.len();
                            latencies.push(elapsed);
                        }
                        // Retryable wire errors (BUSY, a STALE_PLAN race in
                        // the mutating mix) don't contribute a latency.
                        Err(err) if err.is_retryable() => {}
                        Err(div_server::ClientError::Server { .. }) => {}
                        Err(err) => panic!("bench request failed: {err}"),
                    }
                }
                let _ = client.close();
                (latencies, rows)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rows = 0usize;
    for worker in workers {
        let (l, r) = worker.join().expect("bench client thread");
        latencies.extend(l);
        rows += r;
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    let completed = latencies.len();
    MixReport {
        name,
        qps: completed as f64 / wall.as_secs_f64(),
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
        requests: completed,
        rows_per_request: if completed == 0 {
            0.0
        } else {
            rows as f64 / completed as f64
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 20 } else { 150 };

    let data = generate(&ScenarioConfig {
        family: ScenarioFamily::Rbac,
        entities: 200,
        items: 16,
        membership: 0.6,
        full_entities: 0.1,
        null_density: 0.0,
        ..ScenarioConfig::default()
    });
    let names = data.names();
    let sql = data.small_divide_sql();
    let engine = Arc::new(Engine::new(data.catalog()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: CLIENTS + 2,
            queue_depth: CLIENTS * 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let adhoc = run_mix("adhoc", addr, &sql, requests, 0.0);
    let prepared = run_mix("prepared", addr, &sql, requests, 1.0);

    // Mixed mix: 50/50 ad-hoc/prepared with a concurrent catalog mutator.
    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let stop = Arc::clone(&stop);
        let rows_a: Vec<Vec<div_algebra::Value>> =
            data.divisor.tuples().map(|t| t.values().to_vec()).collect();
        let rows_b: Vec<Vec<div_algebra::Value>> = rows_a
            .iter()
            .take(1.max(rows_a.len() / 2))
            .cloned()
            .collect();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("mutator connects");
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rows = if flips.is_multiple_of(2) {
                    &rows_b
                } else {
                    &rows_a
                };
                client
                    .register(names.divisor_table, &[names.item_column], rows)
                    .expect("mutation accepted");
                flips += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = client.close();
        })
    };
    let mixed = run_mix("mixed_mutating", addr, &sql, requests, 0.5);
    stop.store(true, Ordering::Relaxed);
    mutator.join().expect("mutator thread");

    let snapshot = engine.metrics();
    let server_metrics = server.metrics().to_json();
    let recorded_at =
        std::env::var("BENCH_RECORDED_AT").unwrap_or_else(|_| "unstamped".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("{{");
    println!("  \"bench\": \"serving\",");
    println!("  \"recorded_at\": \"{recorded_at}\",");
    println!("  \"host_parallelism\": {cores},");
    println!("  \"clients\": {CLIENTS},");
    println!("  \"requests_per_client\": {requests},");
    println!("  \"mixes\": {{");
    for (i, mix) in [&adhoc, &prepared, &mixed].iter().enumerate() {
        println!(
            "    \"{}\": {{\"qps\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"requests\": {}, \"rows_per_request\": {:.1}}}{}",
            mix.name,
            mix.qps,
            mix.p50_ns,
            mix.p95_ns,
            mix.p99_ns,
            mix.requests,
            mix.rows_per_request,
            if i < 2 { "," } else { "" }
        );
    }
    println!("  }},");
    println!(
        "  \"prepared_speedup\": {:.2},",
        if adhoc.qps > 0.0 {
            prepared.qps / adhoc.qps
        } else {
            0.0
        }
    );
    println!(
        "  \"engine\": {{\"queries_executed\": {}, \"prepared_cache_hits\": {}, \
         \"prepared_cache_misses\": {}}},",
        snapshot.queries_executed, snapshot.prepared_cache_hits, snapshot.prepared_cache_misses
    );
    println!("  \"server\": {server_metrics}");
    println!("}}");

    server.shutdown();
}
