//! Support counting strategies.

use div_algebra::{AggregateCall, Relation, Value};
use div_expr::ExprError;
use div_physical::great_divide::{great_divide_with, GreatDivideAlgorithm};
use div_physical::ExecStats;
use std::collections::{BTreeMap, BTreeSet};

/// How to count candidate supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportCounting {
    /// One great divide of `transactions(tid, item)` by
    /// `candidates(item, itemset)` followed by a group count — the strategy
    /// Section 3 of the paper advocates.
    GreatDivide(GreatDivideAlgorithm),
    /// The SQL-style baseline: for each candidate itemset, a k-way
    /// self-join-like containment test per transaction (implemented as a scan
    /// over per-transaction item sets), counting matches candidate by
    /// candidate.
    PerCandidateScan,
}

impl SupportCounting {
    /// Short display name for benchmark output.
    pub fn name(&self) -> String {
        match self {
            SupportCounting::GreatDivide(alg) => format!("great-divide/{}", alg.name()),
            SupportCounting::PerCandidateScan => "per-candidate-scan".to_string(),
        }
    }
}

/// Count, for every candidate itemset, the number of transactions containing
/// all of its items.
///
/// * `transactions` must have schema `(tid, item)`.
/// * `candidates` maps a candidate id to its item list.
///
/// Returns a map from candidate id to support count, plus execution
/// statistics for the chosen strategy.
pub fn count_support(
    transactions: &Relation,
    candidates: &BTreeMap<i64, Vec<i64>>,
    strategy: SupportCounting,
) -> Result<(BTreeMap<i64, usize>, ExecStats), ExprError> {
    match strategy {
        SupportCounting::GreatDivide(algorithm) => {
            count_with_great_divide(transactions, candidates, algorithm)
        }
        SupportCounting::PerCandidateScan => count_with_scan(transactions, candidates),
    }
}

/// Build the vertical `candidates(item, itemset)` relation of Section 3.
pub fn candidates_to_relation(candidates: &BTreeMap<i64, Vec<i64>>) -> Result<Relation, ExprError> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (id, items) in candidates {
        for item in items {
            rows.push(vec![Value::Int(*item), Value::Int(*id)]);
        }
    }
    Relation::from_rows(["item", "itemset"], rows).map_err(ExprError::from)
}

fn count_with_great_divide(
    transactions: &Relation,
    candidates: &BTreeMap<i64, Vec<i64>>,
    algorithm: GreatDivideAlgorithm,
) -> Result<(BTreeMap<i64, usize>, ExecStats), ExprError> {
    let mut stats = ExecStats::default();
    if candidates.is_empty() {
        return Ok((BTreeMap::new(), stats));
    }
    let candidate_relation = candidates_to_relation(candidates)?;
    // quotient(tid, itemset) = transactions ÷* candidates.
    let quotient = great_divide_with(transactions, &candidate_relation, algorithm, &mut stats)?;
    // support(itemset, n) = γ_{itemset; count(tid)→n}(quotient).
    let support = quotient
        .group_aggregate(&["itemset"], &[AggregateCall::count("tid", "n")])
        .map_err(ExprError::from)?;
    let mut out: BTreeMap<i64, usize> = candidates.keys().map(|id| (*id, 0)).collect();
    for t in support.tuples() {
        let id = t.values()[0].as_int().expect("itemset ids are integers");
        let n = t.values()[1].as_int().expect("counts are integers") as usize;
        out.insert(id, n);
    }
    Ok((out, stats))
}

fn count_with_scan(
    transactions: &Relation,
    candidates: &BTreeMap<i64, Vec<i64>>,
) -> Result<(BTreeMap<i64, usize>, ExecStats), ExprError> {
    let mut stats = ExecStats::default();
    // Materialize each transaction's item set.
    let mut baskets: BTreeMap<i64, BTreeSet<i64>> = BTreeMap::new();
    for t in transactions.tuples() {
        let tid = t.values()[0].as_int().expect("tid is an integer");
        let item = t.values()[1].as_int().expect("item is an integer");
        baskets.entry(tid).or_default().insert(item);
    }
    stats.record("PerCandidateScan/baskets", baskets.len(), false, false);
    let mut out: BTreeMap<i64, usize> = BTreeMap::new();
    let mut probes = 0usize;
    for (id, items) in candidates {
        let mut count = 0usize;
        for basket in baskets.values() {
            probes += items.len();
            if items.iter().all(|i| basket.contains(i)) {
                count += 1;
            }
        }
        out.insert(*id, count);
    }
    stats.add_probes(probes);
    stats.record("PerCandidateScan", out.len(), false, false);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn transactions() -> Relation {
        relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 30],
            [3, 20], [3, 30],
            [4, 10], [4, 20], [4, 30], [4, 40],
        }
    }

    fn candidates() -> BTreeMap<i64, Vec<i64>> {
        BTreeMap::from([
            (0, vec![10, 30]),
            (1, vec![20, 30]),
            (2, vec![40]),
            (3, vec![10, 20, 30]),
            (4, vec![99]),
        ])
    }

    #[test]
    fn all_strategies_agree_on_support_counts() {
        let expected = BTreeMap::from([(0i64, 3usize), (1, 3), (2, 1), (3, 2), (4, 0)]);
        let transactions = transactions();
        let candidates = candidates();
        let strategies = [
            SupportCounting::PerCandidateScan,
            SupportCounting::GreatDivide(GreatDivideAlgorithm::GroupLoop),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::SortMerge),
        ];
        for strategy in strategies {
            let (counts, _) = count_support(&transactions, &candidates, strategy).unwrap();
            assert_eq!(counts, expected, "strategy {}", strategy.name());
        }
    }

    #[test]
    fn mixed_size_candidates_are_counted_in_one_pass() {
        // The paper highlights that the great divide does not require all
        // candidates to have the same size k.
        let (counts, _) = count_support(
            &transactions(),
            &candidates(),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
        )
        .unwrap();
        assert_eq!(counts[&2], 1); // singleton
        assert_eq!(counts[&3], 2); // triple
    }

    #[test]
    fn empty_candidates_yield_empty_counts() {
        let (counts, _) = count_support(
            &transactions(),
            &BTreeMap::new(),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
        )
        .unwrap();
        assert!(counts.is_empty());
    }

    #[test]
    fn candidates_relation_has_vertical_layout() {
        let rel = candidates_to_relation(&candidates()).unwrap();
        assert_eq!(rel.schema().names(), vec!["item", "itemset"]);
        assert_eq!(rel.len(), 9);
    }
}
