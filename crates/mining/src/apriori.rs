//! The Apriori frequent-itemset algorithm, parameterized by the support
//! counting strategy.
//!
//! Section 3 of the paper describes the two-phase structure: candidate
//! generation (join frequent (k−1)-itemsets that share a prefix, prune those
//! with an infrequent subset) and support counting. The counting phase is
//! delegated to [`crate::support`], which is where the great divide enters.

use crate::support::{count_support, SupportCounting};
use div_algebra::Relation;
use div_expr::ExprError;
use div_physical::ExecStats;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a mining run.
#[derive(Debug, Clone, Copy)]
pub struct AprioriConfig {
    /// Minimum support as an absolute transaction count.
    pub min_support: usize,
    /// Upper bound on the itemset size explored (0 means unbounded).
    pub max_size: usize,
    /// Support counting strategy.
    pub counting: SupportCounting,
}

/// One discovered frequent itemset.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<i64>,
    /// Number of transactions containing all of the items.
    pub support: usize,
}

/// The result of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// All frequent itemsets, sorted by (size, items).
    pub itemsets: Vec<FrequentItemset>,
    /// Number of Apriori iterations executed.
    pub iterations: usize,
    /// Total number of candidates whose support was counted.
    pub candidates_counted: usize,
    /// Merged execution statistics of every counting phase.
    pub stats: ExecStats,
}

impl MiningResult {
    /// The frequent itemsets of a specific size.
    pub fn of_size(&self, k: usize) -> Vec<&FrequentItemset> {
        self.itemsets
            .iter()
            .filter(|i| i.items.len() == k)
            .collect()
    }

    /// `true` if `items` (in any order) was found frequent.
    pub fn contains(&self, items: &[i64]) -> bool {
        let mut sorted = items.to_vec();
        sorted.sort_unstable();
        self.itemsets.iter().any(|i| i.items == sorted)
    }
}

/// Run Apriori over a vertical `transactions(tid, item)` relation.
pub fn mine_frequent_itemsets(
    transactions: &Relation,
    config: &AprioriConfig,
) -> Result<MiningResult, ExprError> {
    let mut stats = ExecStats::default();
    let mut itemsets: Vec<FrequentItemset> = Vec::new();
    let mut candidates_counted = 0usize;

    // Iteration 1: count individual items directly from the vertical table.
    let item_counts = single_item_counts(transactions)?;
    let mut frequent_prev: Vec<Vec<i64>> = item_counts
        .iter()
        .filter(|(_, &n)| n >= config.min_support)
        .map(|(item, _)| vec![*item])
        .collect();
    frequent_prev.sort();
    for items in &frequent_prev {
        itemsets.push(FrequentItemset {
            items: items.clone(),
            support: item_counts[&items[0]],
        });
    }
    let mut iterations = 1usize;

    // Iterations k = 2, 3, …
    let mut k = 2usize;
    while !frequent_prev.is_empty() && (config.max_size == 0 || k <= config.max_size) {
        let candidates = generate_candidates(&frequent_prev);
        if candidates.is_empty() {
            break;
        }
        iterations += 1;
        candidates_counted += candidates.len();
        let candidate_map: BTreeMap<i64, Vec<i64>> = candidates
            .iter()
            .enumerate()
            .map(|(i, items)| (i as i64, items.clone()))
            .collect();
        let (counts, phase_stats) = count_support(transactions, &candidate_map, config.counting)?;
        stats.merge(&phase_stats);

        let mut frequent_now: Vec<(Vec<i64>, usize)> = Vec::new();
        for (id, items) in &candidate_map {
            let support = counts.get(id).copied().unwrap_or(0);
            if support >= config.min_support {
                frequent_now.push((items.clone(), support));
            }
        }
        frequent_now.sort();
        frequent_prev = frequent_now
            .iter()
            .map(|(items, _)| items.clone())
            .collect();
        for (items, support) in frequent_now {
            itemsets.push(FrequentItemset { items, support });
        }
        k += 1;
    }

    itemsets.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    Ok(MiningResult {
        itemsets,
        iterations,
        candidates_counted,
        stats,
    })
}

/// Count the support of every single item with one pass over the vertical
/// transactions table (iteration 1 of Apriori).
fn single_item_counts(transactions: &Relation) -> Result<BTreeMap<i64, usize>, ExprError> {
    let mut seen: BTreeMap<i64, BTreeSet<i64>> = BTreeMap::new();
    let tid_idx = transactions
        .schema()
        .require("tid")
        .map_err(ExprError::from)?;
    let item_idx = transactions
        .schema()
        .require("item")
        .map_err(ExprError::from)?;
    for t in transactions.tuples() {
        let tid = t.values()[tid_idx]
            .as_int()
            .ok_or_else(|| ExprError::invalid("transactions.tid must be an integer attribute"))?;
        let item = t.values()[item_idx]
            .as_int()
            .ok_or_else(|| ExprError::invalid("transactions.item must be an integer attribute"))?;
        seen.entry(item).or_default().insert(tid);
    }
    Ok(seen
        .into_iter()
        .map(|(item, tids)| (item, tids.len()))
        .collect())
}

/// Apriori candidate generation: join frequent (k−1)-itemsets sharing the
/// first k−2 items, then prune candidates with an infrequent (k−1)-subset.
fn generate_candidates(frequent_prev: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let previous: BTreeSet<&Vec<i64>> = frequent_prev.iter().collect();
    let mut candidates = Vec::new();
    for (i, a) in frequent_prev.iter().enumerate() {
        for b in &frequent_prev[i + 1..] {
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                continue;
            }
            let mut candidate = a.clone();
            candidate.push(b[k - 1]);
            candidate.sort_unstable();
            // Prune: every (k−1)-subset must be frequent.
            let all_subsets_frequent = (0..candidate.len()).all(|skip| {
                let subset: Vec<i64> = candidate
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| *idx != skip)
                    .map(|(_, v)| *v)
                    .collect();
                previous.contains(&subset)
            });
            if all_subsets_frequent {
                candidates.push(candidate);
            }
        }
    }
    candidates.sort();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_physical::great_divide::GreatDivideAlgorithm;

    fn transactions() -> Relation {
        // Classic toy dataset: {10,20,30} frequent together, 40 rare.
        relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 20], [2, 30],
            [3, 10], [3, 20],
            [4, 20], [4, 30],
            [5, 10], [5, 20], [5, 30], [5, 40],
        }
    }

    fn config(counting: SupportCounting) -> AprioriConfig {
        AprioriConfig {
            min_support: 3,
            max_size: 0,
            counting,
        }
    }

    #[test]
    fn finds_expected_itemsets_with_great_divide_counting() {
        let result = mine_frequent_itemsets(
            &transactions(),
            &config(SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets)),
        )
        .unwrap();
        assert!(result.contains(&[10]));
        assert!(result.contains(&[20]));
        assert!(result.contains(&[30]));
        assert!(!result.contains(&[40]));
        assert!(result.contains(&[10, 20]));
        assert!(result.contains(&[20, 30]));
        assert!(result.contains(&[10, 30]));
        assert!(result.contains(&[10, 20, 30]));
        assert_eq!(result.of_size(3).len(), 1);
        assert_eq!(result.of_size(3)[0].support, 3);
        assert!(result.iterations >= 3);
        assert!(result.candidates_counted >= 4);
    }

    #[test]
    fn all_counting_strategies_agree() {
        let strategies = [
            SupportCounting::PerCandidateScan,
            SupportCounting::GreatDivide(GreatDivideAlgorithm::GroupLoop),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::SortMerge),
        ];
        let reference = mine_frequent_itemsets(&transactions(), &config(strategies[0])).unwrap();
        for strategy in &strategies[1..] {
            let result = mine_frequent_itemsets(&transactions(), &config(*strategy)).unwrap();
            assert_eq!(result.itemsets, reference.itemsets, "{}", strategy.name());
        }
    }

    #[test]
    fn min_support_above_data_size_yields_nothing() {
        let result = mine_frequent_itemsets(
            &transactions(),
            &AprioriConfig {
                min_support: 100,
                max_size: 0,
                counting: SupportCounting::PerCandidateScan,
            },
        )
        .unwrap();
        assert!(result.itemsets.is_empty());
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn max_size_caps_the_exploration() {
        let result = mine_frequent_itemsets(
            &transactions(),
            &AprioriConfig {
                min_support: 3,
                max_size: 2,
                counting: SupportCounting::PerCandidateScan,
            },
        )
        .unwrap();
        assert!(result.of_size(3).is_empty());
        assert!(!result.of_size(2).is_empty());
    }

    #[test]
    fn candidate_generation_prunes_infrequent_subsets() {
        // {1,2} and {1,3} frequent but {2,3} not: no candidate {1,2,3}.
        let candidates = generate_candidates(&[vec![1, 2], vec![1, 3]]);
        assert!(candidates.is_empty());
        // With {2,3} present the triple is generated.
        let candidates = generate_candidates(&[vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(candidates, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn invalid_transaction_schema_is_reported() {
        let bad = relation! { ["a", "b"] => [1, 1] };
        assert!(mine_frequent_itemsets(&bad, &config(SupportCounting::PerCandidateScan)).is_err());
    }
}
