//! # div-mining
//!
//! Frequent itemset discovery on top of the great divide (Section 3 of the
//! paper).
//!
//! The paper's observation: the *support counting* phase of Apriori — "probe
//! the candidate k-itemsets against the transactions to check how many times a
//! candidate is contained in a transaction" — is exactly a great divide of the
//! vertical `transactions(tid, item)` table by the vertical
//! `candidates(item, itemset)` table, followed by a group-count on `itemset`.
//! Crucially, candidates of *different sizes* can be counted in one operator
//! invocation.
//!
//! This crate implements
//!
//! * [`support`] — support counting via the great divide (several physical
//!   algorithms) and via the SQL-style k-way join/group/count baseline used by
//!   the literature the paper contrasts with,
//! * [`apriori`] — the full Apriori loop (candidate generation + pruning)
//!   parameterized by the counting strategy, so the benchmark can compare
//!   end-to-end mining runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod support;

pub use apriori::{mine_frequent_itemsets, AprioriConfig, FrequentItemset, MiningResult};
pub use support::{count_support, SupportCounting};
