//! Execution statistics: query-level aggregates plus the per-operator
//! span tree.
//!
//! The metric the paper cares about is the *size of intermediate results*
//! (Section 6: any basic-algebra simulation of division must produce
//! quadratic intermediates), and the aggregate counters here measure exactly
//! that — tuples scanned, intermediate volume, peak intermediate, probes.
//! Two later layers extended the picture:
//!
//! * **resident accounting** for the streaming executor
//!   ([`crate::stream`]): `peak_resident_batches` / `peak_resident_rows`
//!   track the executor-materialized footprint, the O(pipeline depth ×
//!   batch size) memory claim streaming exists to make;
//! * **per-operator attribution** ([`crate::trace`]): `operators` holds an
//!   [`OperatorStats`] node per plan operator, keyed by its pre-order
//!   [`OperatorId`](crate::trace::OperatorId), with that operator's own
//!   rows in/out, probes, retained peak and (when tracing is enabled)
//!   wall-clock spans. This is the tree `EXPLAIN ANALYZE` renders.
//!
//! The older `rows_per_operator` map survives as a *deprecated aggregated
//! view*: it keys by label, so two operators with the same label merge into
//! one entry, and kernel-level pseudo-operators (e.g. `ColumnarHashDivision`
//! inside a `Divide` node) appear alongside plan operators. Prefer the
//! `operators` tree for anything positional.

use crate::trace::OperatorStats;
use std::collections::BTreeMap;

/// Aggregated execution statistics for one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples read from base tables.
    pub rows_scanned: usize,
    /// Tuples produced by intermediate (non-root, non-scan) operators.
    pub intermediate_tuples: usize,
    /// Largest single intermediate result.
    pub max_intermediate: usize,
    /// Tuples produced by the root operator (the query result size).
    pub output_rows: usize,
    /// Total tuple comparisons / hash probes performed by division and join
    /// algorithms (a proxy for CPU work).
    pub probes: usize,
    /// Tuples produced per operator *label* — the legacy aggregated view.
    ///
    /// Deprecated in favor of [`ExecStats::operators`]: labels are not
    /// unique (two identical `Filter`s merge into one entry) and kernel
    /// pseudo-operators are mixed in. Kept for compatibility; it will not
    /// grow new information.
    pub rows_per_operator: BTreeMap<String, usize>,
    /// Number of operator executions recorded (plan operators plus
    /// kernel-level pseudo-operators; summed across parallel partitions).
    pub operators_executed: usize,
    /// The per-operator span tree: one [`OperatorStats`] node per plan
    /// operator, indexed by its pre-order
    /// [`OperatorId`](crate::trace::OperatorId) (`operators[i].id.0 == i`).
    /// Row/probe/retained counters are always filled; the wall-clock fields
    /// are non-zero only when tracing was enabled
    /// ([`PlannerConfig::tracing`](crate::PlannerConfig::tracing)). Empty
    /// for kernel-level executions that never ran a plan (e.g. the
    /// per-partition worker stats inside [`crate::parallel`]).
    pub operators: Vec<OperatorStats>,
    /// Peak number of executor-materialized batches simultaneously resident
    /// during a *streaming* execution ([`crate::stream`]): in-flight chunks
    /// plus blocking-operator state (build sides, buffered inputs, distinct
    /// stores). Base-table snapshots held by scans are excluded — they
    /// belong to the catalog, not the pipeline. Always `0` on the
    /// materializing backends.
    pub peak_resident_batches: usize,
    /// Peak number of rows across the resident batches above. For a
    /// pipeline of streaming operators this is O(pipeline depth ×
    /// batch size), not O(table) — the memory claim the streaming executor
    /// exists to make.
    pub peak_resident_rows: usize,
    /// Rows still resident when the streaming executor finished (after the
    /// root pipeline was closed). Must be `0`: any other value means an
    /// operator leaked accounting on an abort path. The governance
    /// regression tests assert on this after cancelled / deadline-tripped /
    /// budget-tripped drains. Always `0` on the materializing backends.
    pub resident_rows_on_finish: usize,
    /// Chunks of an attached (file-backed) table the scan skipped without
    /// reading because the chunk's zone maps proved the pushed-down filter
    /// cannot match any row in it.
    pub chunks_skipped: usize,
    /// Spill partition files created by the hybrid hash operators (every
    /// recursion level counts its own files).
    pub spill_partitions: usize,
    /// Rows written to spill files. With multi-level recursion a row is
    /// counted once per level it is rewritten at, so this exceeding the
    /// input cardinality is evidence of recursive re-partitioning.
    pub spill_rows_written: usize,
    /// Rows read back from spill files.
    pub spill_rows_read: usize,
}

impl ExecStats {
    /// Record one operator execution.
    pub fn record(&mut self, label: &str, output_rows: usize, is_scan: bool, is_root: bool) {
        self.operators_executed += 1;
        if is_scan {
            self.rows_scanned += output_rows;
        } else if !is_root {
            self.intermediate_tuples += output_rows;
            self.max_intermediate = self.max_intermediate.max(output_rows);
        }
        if is_root {
            self.output_rows = output_rows;
        }
        *self.rows_per_operator.entry(label.to_string()).or_insert(0) += output_rows;
    }

    /// Record probe/comparison work done inside an operator.
    pub fn add_probes(&mut self, probes: usize) {
        self.probes += probes;
    }

    /// Record the current resident-batch footprint of a streaming
    /// execution; peaks are kept, lower values are ignored.
    pub fn note_resident(&mut self, batches: usize, rows: usize) {
        self.peak_resident_batches = self.peak_resident_batches.max(batches);
        self.peak_resident_rows = self.peak_resident_rows.max(rows);
    }

    /// Merge statistics from a sub-execution (e.g. a parallel partition).
    ///
    /// Aggregates are summed (peaks maxed) as before. The operator trees
    /// merge structurally: if `self` has no tree, `other`'s is adopted; if
    /// both trees describe the same plan shape (same length and labels),
    /// nodes are combined pairwise (rows and probes summed, retained peaks
    /// and times maxed — partitions run concurrently); trees of different
    /// shapes keep `self`'s.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.intermediate_tuples += other.intermediate_tuples;
        self.max_intermediate = self.max_intermediate.max(other.max_intermediate);
        self.probes += other.probes;
        self.operators_executed += other.operators_executed;
        self.peak_resident_batches = self.peak_resident_batches.max(other.peak_resident_batches);
        self.peak_resident_rows = self.peak_resident_rows.max(other.peak_resident_rows);
        // A leak in any sub-execution is a leak of the whole execution.
        self.resident_rows_on_finish = self
            .resident_rows_on_finish
            .max(other.resident_rows_on_finish);
        self.chunks_skipped += other.chunks_skipped;
        self.spill_partitions += other.spill_partitions;
        self.spill_rows_written += other.spill_rows_written;
        self.spill_rows_read += other.spill_rows_read;
        for (label, rows) in &other.rows_per_operator {
            *self.rows_per_operator.entry(label.clone()).or_insert(0) += rows;
        }
        if self.operators.is_empty() {
            self.operators = other.operators.clone();
        } else if same_shape(&self.operators, &other.operators) {
            for (mine, theirs) in self.operators.iter_mut().zip(&other.operators) {
                mine.rows_in += theirs.rows_in;
                mine.rows_out += theirs.rows_out;
                mine.probes += theirs.probes;
                mine.peak_retained_rows = mine.peak_retained_rows.max(theirs.peak_retained_rows);
                mine.time_open_ns = mine.time_open_ns.max(theirs.time_open_ns);
                mine.time_next_ns = mine.time_next_ns.max(theirs.time_next_ns);
                mine.time_close_ns = mine.time_close_ns.max(theirs.time_close_ns);
            }
        }
    }
}

fn same_shape(a: &[OperatorStats], b: &[OperatorStats]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.label == y.label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OperatorId, QueryTrace};
    use crate::PhysicalPlan;

    #[test]
    fn record_distinguishes_scans_intermediates_and_root() {
        let mut stats = ExecStats::default();
        stats.record("TableScan(r1)", 100, true, false);
        stats.record("HashDivision", 40, false, false);
        stats.record("Filter", 10, false, true);
        assert_eq!(stats.rows_scanned, 100);
        assert_eq!(stats.intermediate_tuples, 40);
        assert_eq!(stats.max_intermediate, 40);
        assert_eq!(stats.output_rows, 10);
        assert_eq!(stats.operators_executed, 3);
        assert_eq!(stats.rows_per_operator["HashDivision"], 40);
    }

    #[test]
    fn merge_accumulates_and_takes_max() {
        let mut a = ExecStats::default();
        a.record("scan", 10, true, false);
        a.record("div", 5, false, false);
        a.add_probes(7);
        a.note_resident(2, 100);
        let mut b = ExecStats::default();
        b.record("scan", 20, true, false);
        b.record("div", 50, false, false);
        b.add_probes(3);
        b.note_resident(5, 60);
        a.merge(&b);
        assert_eq!(a.rows_scanned, 30);
        assert_eq!(a.intermediate_tuples, 55);
        assert_eq!(a.max_intermediate, 50);
        assert_eq!(a.probes, 10);
        assert_eq!(a.rows_per_operator["div"], 55);
        assert_eq!(a.peak_resident_batches, 5);
        assert_eq!(a.peak_resident_rows, 100);
    }

    #[test]
    fn note_resident_keeps_peaks_only() {
        let mut stats = ExecStats::default();
        stats.note_resident(3, 300);
        stats.note_resident(1, 50);
        assert_eq!(stats.peak_resident_batches, 3);
        assert_eq!(stats.peak_resident_rows, 300);
    }

    fn scan_tree(rows: usize) -> Vec<OperatorStats> {
        let plan = PhysicalPlan::TableScan { table: "t".into() };
        let mut trace = QueryTrace::from_plan(&plan);
        trace.set_rows_out(OperatorId(0), rows);
        trace.finish()
    }

    fn with_tree(rows: usize) -> ExecStats {
        ExecStats {
            operators: scan_tree(rows),
            ..ExecStats::default()
        }
    }

    #[test]
    fn merge_adopts_a_tree_when_self_has_none() {
        let mut a = ExecStats::default();
        let b = with_tree(7);
        a.merge(&b);
        assert_eq!(a.operators.len(), 1);
        assert_eq!(a.operators[0].rows_out, 7);
    }

    #[test]
    fn merge_combines_same_shape_trees_nodewise() {
        let mut a = with_tree(7);
        a.operators[0].peak_retained_rows = 10;
        let mut b = with_tree(5);
        b.operators[0].probes = 3;
        b.operators[0].peak_retained_rows = 4;
        a.merge(&b);
        assert_eq!(a.operators[0].rows_out, 12);
        assert_eq!(a.operators[0].probes, 3);
        assert_eq!(a.operators[0].peak_retained_rows, 10);
    }

    #[test]
    fn merge_keeps_own_tree_on_shape_mismatch() {
        let mut a = with_tree(7);
        let mut b = with_tree(5);
        b.operators[0].label = "SomethingElse".into();
        a.merge(&b);
        assert_eq!(a.operators[0].rows_out, 7);
    }
}
