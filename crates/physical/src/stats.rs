//! Execution statistics.
//!
//! The metric the paper cares about is the *size of intermediate results*
//! (Section 6: any basic-algebra simulation of division must produce
//! quadratic intermediates). Every physical operator therefore reports the
//! number of tuples it consumed and produced, and the executor aggregates the
//! peak and total intermediate volumes so benches and tests can compare
//! algorithms on exactly that axis.

use std::collections::BTreeMap;

/// Aggregated execution statistics for one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples read from base tables.
    pub rows_scanned: usize,
    /// Tuples produced by intermediate (non-root, non-scan) operators.
    pub intermediate_tuples: usize,
    /// Largest single intermediate result.
    pub max_intermediate: usize,
    /// Tuples produced by the root operator (the query result size).
    pub output_rows: usize,
    /// Total tuple comparisons / hash probes performed by division and join
    /// algorithms (a proxy for CPU work).
    pub probes: usize,
    /// Tuples produced per operator label.
    pub rows_per_operator: BTreeMap<String, usize>,
    /// Number of operators executed.
    pub operators: usize,
    /// Peak number of executor-materialized batches simultaneously resident
    /// during a *streaming* execution ([`crate::stream`]): in-flight chunks
    /// plus blocking-operator state (build sides, buffered inputs, distinct
    /// stores). Base-table snapshots held by scans are excluded — they
    /// belong to the catalog, not the pipeline. Always `0` on the
    /// materializing backends.
    pub peak_resident_batches: usize,
    /// Peak number of rows across the resident batches above. For a
    /// pipeline of streaming operators this is O(pipeline depth ×
    /// batch size), not O(table) — the memory claim the streaming executor
    /// exists to make.
    pub peak_resident_rows: usize,
}

impl ExecStats {
    /// Record one operator execution.
    pub fn record(&mut self, label: &str, output_rows: usize, is_scan: bool, is_root: bool) {
        self.operators += 1;
        if is_scan {
            self.rows_scanned += output_rows;
        } else if !is_root {
            self.intermediate_tuples += output_rows;
            self.max_intermediate = self.max_intermediate.max(output_rows);
        }
        if is_root {
            self.output_rows = output_rows;
        }
        *self.rows_per_operator.entry(label.to_string()).or_insert(0) += output_rows;
    }

    /// Record probe/comparison work done inside an operator.
    pub fn add_probes(&mut self, probes: usize) {
        self.probes += probes;
    }

    /// Record the current resident-batch footprint of a streaming
    /// execution; peaks are kept, lower values are ignored.
    pub fn note_resident(&mut self, batches: usize, rows: usize) {
        self.peak_resident_batches = self.peak_resident_batches.max(batches);
        self.peak_resident_rows = self.peak_resident_rows.max(rows);
    }

    /// Merge statistics from a sub-execution (e.g. a parallel partition).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.intermediate_tuples += other.intermediate_tuples;
        self.max_intermediate = self.max_intermediate.max(other.max_intermediate);
        self.probes += other.probes;
        self.operators += other.operators;
        self.peak_resident_batches = self.peak_resident_batches.max(other.peak_resident_batches);
        self.peak_resident_rows = self.peak_resident_rows.max(other.peak_resident_rows);
        for (label, rows) in &other.rows_per_operator {
            *self.rows_per_operator.entry(label.clone()).or_insert(0) += rows;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_distinguishes_scans_intermediates_and_root() {
        let mut stats = ExecStats::default();
        stats.record("TableScan(r1)", 100, true, false);
        stats.record("HashDivision", 40, false, false);
        stats.record("Filter", 10, false, true);
        assert_eq!(stats.rows_scanned, 100);
        assert_eq!(stats.intermediate_tuples, 40);
        assert_eq!(stats.max_intermediate, 40);
        assert_eq!(stats.output_rows, 10);
        assert_eq!(stats.operators, 3);
        assert_eq!(stats.rows_per_operator["HashDivision"], 40);
    }

    #[test]
    fn merge_accumulates_and_takes_max() {
        let mut a = ExecStats::default();
        a.record("scan", 10, true, false);
        a.record("div", 5, false, false);
        a.add_probes(7);
        a.note_resident(2, 100);
        let mut b = ExecStats::default();
        b.record("scan", 20, true, false);
        b.record("div", 50, false, false);
        b.add_probes(3);
        b.note_resident(5, 60);
        a.merge(&b);
        assert_eq!(a.rows_scanned, 30);
        assert_eq!(a.intermediate_tuples, 55);
        assert_eq!(a.max_intermediate, 50);
        assert_eq!(a.probes, 10);
        assert_eq!(a.rows_per_operator["div"], 55);
        assert_eq!(a.peak_resident_batches, 5);
        assert_eq!(a.peak_resident_rows, 100);
    }

    #[test]
    fn note_resident_keeps_peaks_only() {
        let mut stats = ExecStats::default();
        stats.note_resident(3, 300);
        stats.note_resident(1, 50);
        assert_eq!(stats.peak_resident_batches, 3);
        assert_eq!(stats.peak_resident_rows, 300);
    }
}
