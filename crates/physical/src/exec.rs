//! The *materializing* row executor — now the compatibility layer.
//!
//! This executor evaluates every operator on its fully materialized input
//! and returns one whole [`Relation`]: the right tool for measuring
//! algorithms and intermediate-result volumes, and the reference the
//! differential tests compare every other strategy against. The *default
//! execution path* of the system, however, is the streaming executor of
//! [`crate::stream`] (Volcano-style `open`/`next_batch`/`close` over
//! columnar chunks), which `div_sql`'s `Engine` serves through its
//! incremental `Cursor` — use [`crate::stream::StreamExecutor`] when memory
//! should scale with the pipeline depth instead of the largest
//! intermediate.
//!
//! The *algorithms* inside the operators here are the real ones: hash joins
//! build hash tables, the division nodes dispatch to the special-purpose
//! algorithms of [`crate::division`] and [`crate::great_divide`], and the
//! executor records per-operator row counts into [`ExecStats`].

use crate::division;
use crate::great_divide;
use crate::guard::QueryGuard;
use crate::plan::PhysicalPlan;
use crate::planner::{ExecutionBackend, PlannerConfig};
use crate::stats::ExecStats;
use crate::trace::{OperatorId, QueryTrace};
use crate::Result;
use div_algebra::{Relation, Tuple};
use div_expr::{Catalog, ExprError};
use std::collections::HashMap;

/// Execute a physical plan against a catalog (row backend).
pub fn execute(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Relation> {
    exec_root(plan, catalog, false, &QueryGuard::default()).map(|(relation, _)| relation)
}

/// Execute a physical plan and return the execution statistics as well
/// (row backend).
pub fn execute_with_stats(plan: &PhysicalPlan, catalog: &Catalog) -> Result<(Relation, ExecStats)> {
    execute_on_backend(plan, catalog, ExecutionBackend::RowAtATime)
}

/// Row-backend entry point: runs the plan with a per-operator trace
/// (wall-clock spans only when `timing` is on) and publishes the finished
/// tree as [`ExecStats::operators`]. The guard is consulted once per
/// operator, after its output materializes — coarser than the streaming
/// executor's per-batch checks, but enough to stop a runaway plan between
/// operators.
pub(crate) fn exec_root(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    timing: bool,
    guard: &QueryGuard,
) -> Result<(Relation, ExecStats)> {
    let mut stats = ExecStats::default();
    let mut trace = QueryTrace::from_plan(plan).with_timing(timing);
    let mut next_id = 0;
    let result = exec_node(
        plan,
        catalog,
        &mut stats,
        &mut trace,
        &mut next_id,
        true,
        guard,
    )?;
    stats.operators = trace.finish();
    Ok((result, stats))
}

/// Execute a physical plan on an explicitly chosen backend (single-threaded;
/// use [`execute_with_config`] to select partition parallelism as well).
///
/// Both backends return identical relations; the statistics differ only in
/// the backend-internal operator labels (see [`crate::columnar_exec`]).
///
/// This is the *materializing* compatibility entry point: the whole result
/// (and every intermediate) is built before anything is returned. New code
/// that wants memory bounded by the pipeline, incremental consumption or
/// early termination should drive a [`StreamExecutor`](crate::stream::StreamExecutor)
/// instead.
#[doc(alias = "StreamExecutor")]
#[doc(alias = "compile_stream")]
pub fn execute_on_backend(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    backend: ExecutionBackend,
) -> Result<(Relation, ExecStats)> {
    match backend {
        ExecutionBackend::RowAtATime => exec_root(plan, catalog, false, &QueryGuard::default()),
        ExecutionBackend::Columnar => {
            crate::columnar_exec::execute_columnar_with_stats(plan, catalog)
        }
    }
}

/// Execute a physical plan on the backend the [`PlannerConfig`] selects,
/// honoring [`PlannerConfig::parallelism`] on the columnar backend (the row
/// backend parallelizes at the operator level instead, via
/// [`crate::parallel`]).
///
/// Like [`execute_on_backend`], this is the *materializing* compatibility
/// entry point; the streaming equivalent is
/// [`StreamExecutor::new`](crate::stream::StreamExecutor::new) followed by a
/// pull loop.
#[doc(alias = "StreamExecutor")]
#[doc(alias = "compile_stream")]
pub fn execute_with_config(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> Result<(Relation, ExecStats)> {
    let guard = QueryGuard::from_config(config);
    match config.backend {
        ExecutionBackend::RowAtATime => exec_root(plan, catalog, config.tracing, &guard),
        ExecutionBackend::Columnar => crate::columnar_exec::exec_columnar_root(
            plan,
            catalog,
            config.parallelism,
            config.tracing,
            &guard,
        ),
    }
}

pub(crate) fn exec_node(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
    trace: &mut QueryTrace,
    next_id: &mut usize,
    is_root: bool,
    guard: &QueryGuard,
) -> Result<Relation> {
    // Pre-order id assignment, matching the skeleton built from the plan.
    let id = OperatorId(*next_id);
    *next_id += 1;
    let started = trace.span_start();
    let result = match plan {
        PhysicalPlan::TableScan { table } => catalog.table(table)?.clone(),
        PhysicalPlan::Values { relation } => relation.clone(),
        PhysicalPlan::Filter { input, predicate } => {
            exec_node(input, catalog, stats, trace, next_id, false, guard)?.select(predicate)?
        }
        PhysicalPlan::Project { input, attributes } => {
            exec_node(input, catalog, stats, trace, next_id, false, guard)?
                .project_owned(attributes)?
        }
        PhysicalPlan::Rename { input, renames } => {
            let rel = exec_node(input, catalog, stats, trace, next_id, false, guard)?;
            rel.rename_with(|name| {
                renames
                    .iter()
                    .find(|(from, _)| from == name)
                    .map(|(_, to)| to.clone())
                    .unwrap_or_else(|| name.to_string())
            })?
        }
        PhysicalPlan::Union { left, right } => {
            exec_node(left, catalog, stats, trace, next_id, false, guard)?.union(&exec_node(
                right, catalog, stats, trace, next_id, false, guard,
            )?)?
        }
        PhysicalPlan::Intersect { left, right } => {
            exec_node(left, catalog, stats, trace, next_id, false, guard)?.intersect(&exec_node(
                right, catalog, stats, trace, next_id, false, guard,
            )?)?
        }
        PhysicalPlan::Difference { left, right } => {
            exec_node(left, catalog, stats, trace, next_id, false, guard)?.difference(
                &exec_node(right, catalog, stats, trace, next_id, false, guard)?,
            )?
        }
        PhysicalPlan::CrossProduct { left, right } => {
            exec_node(left, catalog, stats, trace, next_id, false, guard)?.product(&exec_node(
                right, catalog, stats, trace, next_id, false, guard,
            )?)?
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = exec_node(left, catalog, stats, trace, next_id, false, guard)?;
            let r = exec_node(right, catalog, stats, trace, next_id, false, guard)?;
            stats.add_probes(l.len() * r.len());
            trace.add_probes(id, l.len() * r.len());
            l.theta_join(&r, predicate)?
        }
        PhysicalPlan::HashJoin { left, right } => {
            let l = exec_node(left, catalog, stats, trace, next_id, false, guard)?;
            let r = exec_node(right, catalog, stats, trace, next_id, false, guard)?;
            kernel_probes(stats, trace, id, |stats| hash_natural_join(&l, &r, stats))?
        }
        PhysicalPlan::HashSemiJoin { left, right } => {
            let l = exec_node(left, catalog, stats, trace, next_id, false, guard)?;
            let r = exec_node(right, catalog, stats, trace, next_id, false, guard)?;
            kernel_probes(stats, trace, id, |stats| {
                hash_semi_join(&l, &r, stats, false)
            })?
        }
        PhysicalPlan::HashAntiSemiJoin { left, right } => {
            let l = exec_node(left, catalog, stats, trace, next_id, false, guard)?;
            let r = exec_node(right, catalog, stats, trace, next_id, false, guard)?;
            kernel_probes(stats, trace, id, |stats| {
                hash_semi_join(&l, &r, stats, true)
            })?
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rel = exec_node(input, catalog, stats, trace, next_id, false, guard)?;
            let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
            rel.group_aggregate(&refs, aggregates)?
        }
        PhysicalPlan::Divide {
            dividend,
            divisor,
            algorithm,
        } => {
            let d = exec_node(dividend, catalog, stats, trace, next_id, false, guard)?;
            let v = exec_node(divisor, catalog, stats, trace, next_id, false, guard)?;
            kernel_probes(stats, trace, id, |stats| {
                division::divide_with(&d, &v, *algorithm, stats)
            })?
        }
        PhysicalPlan::GreatDivide {
            dividend,
            divisor,
            algorithm,
        } => {
            let d = exec_node(dividend, catalog, stats, trace, next_id, false, guard)?;
            let v = exec_node(divisor, catalog, stats, trace, next_id, false, guard)?;
            kernel_probes(stats, trace, id, |stats| {
                great_divide::great_divide_with(&d, &v, *algorithm, stats)
            })?
        }
    };
    let is_scan = matches!(
        plan,
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. }
    );
    // On a materializing backend the operator's whole output is the
    // resident quantity the budget meters.
    guard.check(result.len(), &plan.label())?;
    stats.record(&plan.label(), result.len(), is_scan, is_root);
    trace.set_rows_out(id, result.len());
    if let Some(started) = started {
        // One inclusive execution span per operator — the materializing
        // counterpart of the streaming open/next/close split.
        trace.add_next(id, started.elapsed());
    }
    Ok(result)
}

/// Run a kernel that records probes into the aggregate counter and
/// attribute the delta to operator `id` in the trace. The children of `id`
/// have already executed when the kernel runs, so the delta is exactly the
/// operator's own work.
fn kernel_probes<T>(
    stats: &mut ExecStats,
    trace: &mut QueryTrace,
    id: OperatorId,
    kernel: impl FnOnce(&mut ExecStats) -> Result<T>,
) -> Result<T> {
    let before = stats.probes;
    let out = kernel(stats)?;
    trace.add_probes(id, stats.probes - before);
    Ok(out)
}

/// Hash-based natural join: build a hash table over the right input keyed by
/// the common attributes, probe with the left input.
fn hash_natural_join(left: &Relation, right: &Relation, stats: &mut ExecStats) -> Result<Relation> {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left
        .schema()
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    let right_key = right
        .schema()
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    let right_extra: Vec<&str> = right
        .schema()
        .names()
        .into_iter()
        .filter(|n| !left.schema().contains(n))
        .collect();
    let right_extra_idx = right
        .schema()
        .projection_indices(&right_extra)
        .map_err(ExprError::from)?;

    // Build.
    let mut table: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
    for t in right.tuples() {
        table
            .entry(t.project(&right_key))
            .or_default()
            .push(t.project(&right_extra_idx));
    }
    // Probe.
    let out_schema = left.schema().natural_union(right.schema());
    let mut out = Relation::empty(out_schema);
    let mut probes = 0usize;
    for t in left.tuples() {
        probes += 1;
        if let Some(matches) = table.get(&t.project(&left_key)) {
            for extra in matches {
                out.insert(t.concat(extra)).map_err(ExprError::from)?;
            }
        }
    }
    stats.add_probes(probes);
    Ok(out)
}

/// Hash-based semi-join (`anti = false`) or anti-semi-join (`anti = true`).
fn hash_semi_join(
    left: &Relation,
    right: &Relation,
    stats: &mut ExecStats,
    anti: bool,
) -> Result<Relation> {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left
        .schema()
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    let right_key = right
        .schema()
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    let keys: std::collections::HashSet<Tuple> =
        right.tuples().map(|t| t.project(&right_key)).collect();
    let mut out = Relation::empty(left.schema().clone());
    let mut probes = 0usize;
    for t in left.tuples() {
        probes += 1;
        let matched = keys.contains(&t.project(&left_key));
        if matched != anti {
            out.insert(t.clone()).map_err(ExprError::from)?;
        }
    }
    stats.add_probes(probes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::division::DivisionAlgorithm;
    use crate::great_divide::GreatDivideAlgorithm;
    use div_algebra::{relation, AggregateCall, CompareOp, Predicate};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! {
                ["s#", "p#"] =>
                [1, 1], [1, 2],
                [2, 1], [2, 2], [2, 3],
                [3, 2],
            },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    #[test]
    fn hash_join_matches_reference_natural_join() {
        let c = catalog();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            right: Box::new(PhysicalPlan::TableScan {
                table: "parts".into(),
            }),
        };
        let result = execute(&plan, &c).unwrap();
        let expected = c
            .table("supplies")
            .unwrap()
            .natural_join(c.table("parts").unwrap())
            .unwrap();
        assert_eq!(result, expected);
    }

    #[test]
    fn semi_and_anti_joins_partition_the_left_input() {
        let c = catalog();
        let semi = PhysicalPlan::HashSemiJoin {
            left: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "parts".into(),
                }),
                predicate: Predicate::eq_value("color", "red"),
            }),
        };
        let anti = PhysicalPlan::HashAntiSemiJoin {
            left: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "parts".into(),
                }),
                predicate: Predicate::eq_value("color", "red"),
            }),
        };
        let semi_result = execute(&semi, &c).unwrap();
        let anti_result = execute(&anti, &c).unwrap();
        assert_eq!(semi_result.len() + anti_result.len(), 6);
        assert_eq!(semi_result, relation! { ["s#", "p#"] => [2, 3] });
    }

    #[test]
    fn full_query_with_division_and_aggregation() {
        // Suppliers supplying all blue parts, counted per supplier-less query:
        // π_{s#}(supplies ÷ π_{p#}(σ_{color=blue}(parts))).
        let c = catalog();
        let plan = PhysicalPlan::Divide {
            dividend: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            divisor: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::TableScan {
                        table: "parts".into(),
                    }),
                    predicate: Predicate::eq_value("color", "blue"),
                }),
                attributes: vec!["p#".into()],
            }),
            algorithm: DivisionAlgorithm::MergeSortDivision,
        };
        let (result, stats) = execute_with_stats(&plan, &c).unwrap();
        assert_eq!(result, relation! { ["s#"] => [1], [2] });
        assert_eq!(stats.output_rows, 2);
        assert!(stats.rows_scanned >= 9);
        assert!(stats.rows_per_operator.contains_key("MergeSortDivision"));

        // Aggregate the quotient (how many qualifying suppliers?).
        let agg = PhysicalPlan::HashAggregate {
            input: Box::new(plan),
            group_by: vec![],
            aggregates: vec![AggregateCall::count("s#", "n")],
        };
        let result = execute(&agg, &c).unwrap();
        assert_eq!(result, relation! { ["n"] => [2] });
    }

    #[test]
    fn great_divide_node_executes() {
        let c = catalog();
        let plan = PhysicalPlan::GreatDivide {
            dividend: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            divisor: Box::new(PhysicalPlan::TableScan {
                table: "parts".into(),
            }),
            algorithm: GreatDivideAlgorithm::HashSets,
        };
        let result = execute(&plan, &c).unwrap();
        let expected = relation! {
            ["s#", "color"] =>
            [1, "blue"], [2, "blue"], [2, "red"],
        };
        assert_eq!(result, expected);
    }

    #[test]
    fn set_operators_and_filters_compose() {
        let c = catalog();
        let plan = PhysicalPlan::Difference {
            left: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "supplies".into(),
                }),
                attributes: vec!["s#".into()],
            }),
            right: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::TableScan {
                        table: "supplies".into(),
                    }),
                    predicate: Predicate::cmp_value("p#", CompareOp::GtEq, 3),
                }),
                attributes: vec!["s#".into()],
            }),
        };
        let result = execute(&plan, &c).unwrap();
        assert_eq!(result, relation! { ["s#"] => [1], [3] });
    }

    #[test]
    fn unknown_table_errors() {
        let c = catalog();
        let plan = PhysicalPlan::TableScan {
            table: "nope".into(),
        };
        assert!(execute(&plan, &c).is_err());
    }
}
