//! Lowering logical plans to physical plans.
//!
//! This is the second half of query optimization in the paper's terminology
//! (Section 7): after the logical rewrite (done by `div-rewrite`), each
//! logical operator is mapped to a physical operator. The mapping is driven by
//! a [`PlannerConfig`], which most importantly selects the division
//! algorithms; the benchmark harness sweeps that choice to reproduce the
//! algorithm comparisons.

use crate::division::DivisionAlgorithm;
use crate::great_divide::GreatDivideAlgorithm;
use crate::plan::PhysicalPlan;
use crate::Result;
use div_expr::LogicalPlan;
use std::time::Duration;

/// The executor a plan runs on.
///
/// The physical plan tree is backend-neutral; the backend decides *how* each
/// operator is evaluated. [`ExecutionBackend::RowAtATime`] is the original
/// tuple-materializing executor of [`crate::exec`];
/// [`ExecutionBackend::Columnar`] routes **every** operator through the
/// batch kernels of [`div_columnar`] (optionally partition-parallel, see
/// [`PlannerConfig::parallelism`]). Both backends produce identical
/// relations and compatible [`crate::ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionBackend {
    /// Tuple-at-a-time execution over materialized [`div_algebra::Relation`]s.
    #[default]
    RowAtATime,
    /// Batch-at-a-time execution over [`div_columnar::ColumnarBatch`]es.
    Columnar,
}

impl ExecutionBackend {
    /// Both backends, for exhaustive differential testing.
    pub const ALL: [ExecutionBackend; 2] =
        [ExecutionBackend::RowAtATime, ExecutionBackend::Columnar];

    /// Short display name (used in benchmark output).
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionBackend::RowAtATime => "row",
            ExecutionBackend::Columnar => "columnar",
        }
    }
}

/// Configuration of the logical-to-physical mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Algorithm used for every small-divide node.
    pub division_algorithm: DivisionAlgorithm,
    /// Algorithm used for every great-divide node.
    pub great_divide_algorithm: GreatDivideAlgorithm,
    /// Executor the plan is intended to run on (consumed by
    /// [`crate::exec::execute_with_config`]).
    pub backend: ExecutionBackend,
    /// Partition count for the partition-parallel columnar kernels (Law 2
    /// partitions the dividend on the quotient attributes, Law 13 the
    /// divisor groups; filters and hash joins partition likewise). `1` (the
    /// default) executes single-threaded; the value is clamped to ≥ 1.
    /// Consulted by [`ExecutionBackend::Columnar`] and by the per-chunk
    /// filter kernels of the streaming executor ([`crate::stream`]).
    pub parallelism: usize,
    /// Chunk size of the streaming executor ([`crate::stream`]): scans emit
    /// base tables in batches of at most this many rows, and every
    /// pipelining operator processes one such batch at a time. Clamped to
    /// ≥ 1; defaults to [`PlannerConfig::DEFAULT_BATCH_SIZE`]. Ignored by
    /// the materializing backends.
    pub batch_size: usize,
    /// Record wall-clock spans in the per-operator trace
    /// ([`crate::trace`]). Row, probe and retained-state attribution is
    /// always on (it is O(1) bookkeeping the executors do anyway); this
    /// flag only gates the `Instant` reads. Defaults to `false`; the
    /// `Engine` turns it on for `explain_analyze`.
    pub tracing: bool,
    /// Wall-clock deadline for query execution, measured from cursor open.
    /// Enforced cooperatively by [`crate::guard::QueryGuard`] at every
    /// batch boundary of the streaming executor and at every operator
    /// boundary of the materializing executors; a trip surfaces
    /// [`div_expr::ExprError::DeadlineExceeded`]. `None` (the default)
    /// disables the check.
    pub deadline: Option<Duration>,
    /// Resident-row memory budget: the maximum rows the streaming executor
    /// may hold resident (in-flight batches plus blocking-operator state,
    /// the quantity tracked as `peak_resident_rows`) at any batch boundary.
    /// The materializing executors check each operator's output cardinality
    /// against the same ceiling. A trip surfaces
    /// [`div_expr::ExprError::MemoryBudget`]. `None` (the default) disables
    /// the check.
    pub memory_budget_rows: Option<usize>,
    /// Spill to disk instead of aborting when the memory budget would trip.
    /// When `true` *and* a [`PlannerConfig::memory_budget_rows`] budget is
    /// set, the streaming executor compiles the hybrid partitioned-hash
    /// variants of hash join, divide and aggregation: they stay in memory
    /// while the build state fits, partition their inputs to disk (via
    /// `div-storage` spill files) when the budget would trip, and recurse
    /// per partition — Graefe's hybrid hash-division design. Without a
    /// budget the flag is inert. Defaults to `false`: the budget aborts
    /// with [`div_expr::ExprError::MemoryBudget`] as before.
    pub spill_to_disk: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            division_algorithm: DivisionAlgorithm::HashDivision,
            great_divide_algorithm: GreatDivideAlgorithm::HashSets,
            backend: ExecutionBackend::RowAtATime,
            parallelism: 1,
            batch_size: PlannerConfig::DEFAULT_BATCH_SIZE,
            tracing: false,
            deadline: None,
            memory_budget_rows: None,
            spill_to_disk: false,
        }
    }
}

impl PlannerConfig {
    /// Default streaming batch size: large enough to amortize per-batch key
    /// normalization, small enough that a handful of resident batches stay
    /// cache-friendly.
    pub const DEFAULT_BATCH_SIZE: usize = 1024;

    /// Default configuration with a specific small-divide algorithm.
    pub fn with_division_algorithm(algorithm: DivisionAlgorithm) -> Self {
        PlannerConfig {
            division_algorithm: algorithm,
            ..PlannerConfig::default()
        }
    }

    /// Default configuration with a specific great-divide algorithm.
    pub fn with_great_divide_algorithm(algorithm: GreatDivideAlgorithm) -> Self {
        PlannerConfig {
            great_divide_algorithm: algorithm,
            ..PlannerConfig::default()
        }
    }

    /// Default configuration with a specific execution backend.
    pub fn with_backend(backend: ExecutionBackend) -> Self {
        PlannerConfig {
            backend,
            ..PlannerConfig::default()
        }
    }

    /// This configuration with the backend replaced.
    pub fn backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Default configuration running the columnar backend with the given
    /// partition parallelism.
    pub fn with_parallelism(parallelism: usize) -> Self {
        PlannerConfig::with_backend(ExecutionBackend::Columnar).parallelism(parallelism)
    }

    /// This configuration with the partition parallelism replaced (clamped
    /// to ≥ 1).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Default configuration with a specific streaming batch size.
    pub fn with_batch_size(batch_size: usize) -> Self {
        PlannerConfig::default().batch_size(batch_size)
    }

    /// This configuration with the streaming batch size replaced (clamped
    /// to ≥ 1).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// This configuration with wall-clock span recording switched on or
    /// off (see [`PlannerConfig::tracing`]).
    pub fn tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// This configuration with a wall-clock execution deadline (see
    /// [`PlannerConfig::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This configuration with a resident-row memory budget, clamped to
    /// ≥ 1 (see [`PlannerConfig::memory_budget_rows`]).
    pub fn memory_budget_rows(mut self, budget: usize) -> Self {
        self.memory_budget_rows = Some(budget.max(1));
        self
    }

    /// This configuration spilling to disk instead of aborting on memory
    /// pressure (see [`PlannerConfig::spill_to_disk`]).
    pub fn spill_to_disk(mut self, spill: bool) -> Self {
        self.spill_to_disk = spill;
        self
    }

    /// Whether any governance limit (deadline or memory budget) is set.
    pub fn is_governed(&self) -> bool {
        self.deadline.is_some() || self.memory_budget_rows.is_some()
    }
}

/// Map a logical plan to a physical plan under the given configuration.
pub fn plan_query(logical: &LogicalPlan, config: &PlannerConfig) -> Result<PhysicalPlan> {
    let physical = match logical {
        LogicalPlan::Scan { table } => PhysicalPlan::TableScan {
            table: table.clone(),
        },
        LogicalPlan::Values { relation } => PhysicalPlan::Values {
            relation: relation.clone(),
        },
        LogicalPlan::Select { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(plan_query(input, config)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, attributes } => PhysicalPlan::Project {
            input: Box::new(plan_query(input, config)?),
            attributes: attributes.clone(),
        },
        LogicalPlan::Rename { input, renames } => PhysicalPlan::Rename {
            input: Box::new(plan_query(input, config)?),
            renames: renames.clone(),
        },
        LogicalPlan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::Intersect { left, right } => PhysicalPlan::Intersect {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::Product { left, right } => PhysicalPlan::CrossProduct {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::ThetaJoin {
            left,
            right,
            predicate,
        } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::NaturalJoin { left, right } => PhysicalPlan::HashJoin {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::SemiJoin { left, right } => PhysicalPlan::HashSemiJoin {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::AntiSemiJoin { left, right } => PhysicalPlan::HashAntiSemiJoin {
            left: Box::new(plan_query(left, config)?),
            right: Box::new(plan_query(right, config)?),
        },
        LogicalPlan::SmallDivide { dividend, divisor } => PhysicalPlan::Divide {
            dividend: Box::new(plan_query(dividend, config)?),
            divisor: Box::new(plan_query(divisor, config)?),
            algorithm: config.division_algorithm,
        },
        LogicalPlan::GreatDivide { dividend, divisor } => PhysicalPlan::GreatDivide {
            dividend: Box::new(plan_query(dividend, config)?),
            divisor: Box::new(plan_query(divisor, config)?),
            algorithm: config.great_divide_algorithm,
        },
        LogicalPlan::GroupAggregate {
            input,
            group_by,
            aggregates,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(plan_query(input, config)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    };
    Ok(physical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use div_algebra::{relation, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    fn q2_plan() -> div_expr::LogicalPlan {
        PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build()
    }

    #[test]
    fn planner_maps_division_algorithm_choice() {
        let logical = q2_plan();
        for algorithm in DivisionAlgorithm::ALL {
            let physical =
                plan_query(&logical, &PlannerConfig::with_division_algorithm(algorithm)).unwrap();
            assert!(physical.explain().contains(algorithm.name()));
        }
    }

    #[test]
    fn physical_results_match_logical_evaluation_for_every_algorithm() {
        let c = catalog();
        let logical = q2_plan();
        let expected = evaluate(&logical, &c).unwrap();
        for algorithm in DivisionAlgorithm::ALL {
            let physical =
                plan_query(&logical, &PlannerConfig::with_division_algorithm(algorithm)).unwrap();
            assert_eq!(
                execute(&physical, &c).unwrap(),
                expected,
                "{}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn natural_join_lowers_to_hash_join() {
        let logical = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .build();
        let hash = plan_query(&logical, &PlannerConfig::default()).unwrap();
        assert!(matches!(hash, PhysicalPlan::HashJoin { .. }));
        // The physical join produces the same rows as the reference semantics.
        let c = catalog();
        assert_eq!(execute(&hash, &c).unwrap(), evaluate(&logical, &c).unwrap());
    }

    #[test]
    fn great_divide_lowering_covers_all_algorithms() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .build();
        let expected = evaluate(&logical, &c).unwrap();
        for algorithm in GreatDivideAlgorithm::ALL {
            let physical = plan_query(
                &logical,
                &PlannerConfig::with_great_divide_algorithm(algorithm),
            )
            .unwrap();
            assert_eq!(
                execute(&physical, &c).unwrap(),
                expected,
                "{}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn every_logical_operator_kind_lowers() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .rename([("p#", "part")])
            .project(["s#", "part"])
            .union(PlanBuilder::scan("supplies").rename([("p#", "part")]))
            .intersect(PlanBuilder::scan("supplies").rename([("p#", "part")]))
            .difference(PlanBuilder::values(
                relation! { ["s#", "part"] => [99, 99] },
            ))
            .semi_join(PlanBuilder::scan("parts").rename([("p#", "part")]))
            .anti_semi_join(PlanBuilder::values(relation! { ["s#"] => [3] }))
            .group_aggregate(["s#"], [div_algebra::AggregateCall::count("part", "n")])
            .build();
        let physical = plan_query(&logical, &PlannerConfig::default()).unwrap();
        assert_eq!(
            execute(&physical, &c).unwrap(),
            evaluate(&logical, &c).unwrap()
        );
    }
}
