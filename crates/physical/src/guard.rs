//! Cooperative query lifecycle governance: cancellation tokens, wall-clock
//! deadlines and resident-row memory budgets.
//!
//! The streaming executor of [`crate::stream`] already *accounts* for every
//! resident row (PR 5's `peak_resident_rows`); this module turns that
//! accounting into *enforcement*. A [`QueryGuard`] is built once per cursor
//! (deadline measured from construction, i.e. cursor open) and consulted:
//!
//! * at every [`BatchStream::next_batch`](crate::stream::BatchStream)
//!   emission boundary of the streaming executor — so a runaway operator is
//!   stopped within one batch of the limit, and the batch that tripped is
//!   rolled back from the resident accounting before the error propagates;
//! * after every operator of the materializing executors ([`crate::exec`],
//!   [`crate::columnar_exec`]), where the operator's full output is the
//!   resident quantity.
//!
//! Checks are cooperative and cheap: an ungoverned guard (the default) is
//! one branch per batch; a governed one adds an atomic load and, when a
//! deadline is set, one `Instant::now()` read. The three trips surface as
//! typed errors carrying the operator span that observed them:
//! [`ExprError::Cancelled`], [`ExprError::DeadlineExceeded`],
//! [`ExprError::MemoryBudget`].

use crate::planner::PlannerConfig;
use div_expr::ExprError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, clonable cancellation flag.
///
/// One token may govern one in-flight statement; any holder of a clone
/// (another session serving a `CANCEL` command, a timeout supervisor, a
/// test) can trip it, and the executor observes the trip at its next batch
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the token: every guard sharing it reports
    /// [`ExprError::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The per-query governance bundle: optional cancellation token, wall-clock
/// deadline and resident-row budget.
///
/// The default guard is ungoverned: every check passes with a single
/// branch. Deadlines are armed at construction time — build the guard when
/// the cursor opens, not when the query text arrives.
#[derive(Debug, Clone, Default)]
pub struct QueryGuard {
    token: Option<CancelToken>,
    deadline: Option<(Instant, Duration)>,
    budget_rows: Option<usize>,
    spill: bool,
}

impl QueryGuard {
    /// Build a guard from the governance fields of a [`PlannerConfig`]
    /// (deadline measured from now). No cancellation token is attached;
    /// chain [`QueryGuard::with_token`] for one.
    pub fn from_config(config: &PlannerConfig) -> Self {
        let mut guard = QueryGuard::default();
        if let Some(limit) = config.deadline {
            guard = guard.with_deadline(limit);
        }
        if let Some(budget) = config.memory_budget_rows {
            guard = guard.with_budget_rows(budget);
        }
        guard.spill = config.spill_to_disk;
        guard
    }

    /// This guard observing `token` for cancellation.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// This guard with a wall-clock deadline of `limit` from now.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some((Instant::now() + limit, limit));
        self
    }

    /// This guard with a resident-row budget (clamped to ≥ 1).
    pub fn with_budget_rows(mut self, budget: usize) -> Self {
        self.budget_rows = Some(budget.max(1));
        self
    }

    /// This guard preferring spill-to-disk over aborting on memory
    /// pressure. The budget check itself is unchanged — it remains the
    /// backstop — but operators that *can* spill consult
    /// [`QueryGuard::spill_budget`] and partition to disk before the
    /// budget would trip.
    pub fn with_spill(mut self, spill: bool) -> Self {
        self.spill = spill;
        self
    }

    /// The resident-row threshold at which spilling operators should start
    /// partitioning to disk: the memory budget when spilling is enabled,
    /// `None` otherwise (operators then run fully in memory and the budget,
    /// if any, aborts).
    pub fn spill_budget(&self) -> Option<usize> {
        if self.spill {
            self.budget_rows
        } else {
            None
        }
    }

    /// Whether any limit is armed — `false` means [`QueryGuard::check`] is
    /// a single branch.
    pub fn is_governed(&self) -> bool {
        self.token.is_some() || self.deadline.is_some() || self.budget_rows.is_some()
    }

    /// The cancellation token this guard observes, if any.
    pub fn token(&self) -> Option<&CancelToken> {
        self.token.as_ref()
    }

    /// Check every armed limit against the current state; `operator` is the
    /// span label reported by the error. Trip order when several limits are
    /// exceeded simultaneously: cancellation, deadline, budget.
    pub fn check(&self, resident_rows: usize, operator: &str) -> Result<(), ExprError> {
        if !self.is_governed() {
            return Ok(());
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(ExprError::Cancelled {
                    operator: operator.to_string(),
                });
            }
        }
        if let Some((deadline, limit)) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExprError::DeadlineExceeded {
                    operator: operator.to_string(),
                    limit_ms: u64::try_from(limit.as_millis()).unwrap_or(u64::MAX),
                });
            }
        }
        if let Some(budget) = self.budget_rows {
            if resident_rows > budget {
                return Err(ExprError::MemoryBudget {
                    operator: operator.to_string(),
                    budget_rows: budget,
                    resident_rows,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_guard_always_passes() {
        let guard = QueryGuard::default();
        assert!(!guard.is_governed());
        assert!(guard.check(usize::MAX, "Scan").is_ok());
    }

    #[test]
    fn cancellation_trips_from_any_clone() {
        let token = CancelToken::new();
        let guard = QueryGuard::default().with_token(token.clone());
        assert!(guard.check(0, "Scan").is_ok());
        token.clone().cancel();
        let err = guard.check(0, "Filter(x)").unwrap_err();
        assert!(matches!(err, ExprError::Cancelled { operator } if operator == "Filter(x)"));
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let guard = QueryGuard::default().with_deadline(Duration::from_millis(5));
        assert!(guard.check(0, "Scan").is_ok());
        std::thread::sleep(Duration::from_millis(10));
        let err = guard.check(0, "Scan").unwrap_err();
        assert!(matches!(
            err,
            ExprError::DeadlineExceeded { limit_ms: 5, .. }
        ));
    }

    #[test]
    fn budget_trips_above_the_ceiling_only() {
        let guard = QueryGuard::default().with_budget_rows(100);
        assert!(guard.check(100, "Union").is_ok());
        let err = guard.check(101, "Union").unwrap_err();
        assert!(matches!(
            err,
            ExprError::MemoryBudget {
                budget_rows: 100,
                resident_rows: 101,
                ..
            }
        ));
    }

    #[test]
    fn config_roundtrip_arms_both_limits() {
        let config = PlannerConfig::default()
            .deadline(Duration::from_secs(1))
            .memory_budget_rows(10);
        assert!(config.is_governed());
        let guard = QueryGuard::from_config(&config);
        assert!(guard.is_governed());
        assert!(guard.check(11, "Scan").is_err());
        assert!(!QueryGuard::from_config(&PlannerConfig::default()).is_governed());
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let token = CancelToken::new();
        token.cancel();
        let guard = QueryGuard::default().with_token(token).with_budget_rows(1);
        assert!(matches!(
            guard.check(10, "Scan").unwrap_err(),
            ExprError::Cancelled { .. }
        ));
    }
}
