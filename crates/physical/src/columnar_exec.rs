//! The columnar (batch-at-a-time) *materializing* executor.
//!
//! Each operator still sees its whole input as one batch; for the
//! pull-based variant that chunks inputs and bounds memory by the pipeline
//! depth, see [`crate::stream`] — this module remains the vectorized
//! reference for whole-input kernels and the host of the Law 2 / Law 13
//! partition-parallel execution.
//!
//! Walks the same [`PhysicalPlan`] tree as the row executor of
//! [`crate::exec`], but keeps data in [`ColumnarBatch`]es and evaluates
//! **every** operator with the batch kernels of [`div_columnar`] — there is
//! no row fallback left: scan, filter, project, rename, the set operators,
//! Cartesian product, theta-join, the hash join family, hash aggregation and
//! both division operators all run vectorized. Any plan the row backend can
//! run, this backend runs fully columnar — with identical results.
//!
//! With `parallelism > 1` the partitionable operators (filter, the hash
//! joins, theta-join, small and great divide) execute partition-parallel
//! through [`crate::parallel_columnar`], following the strategies the paper
//! attaches to Law 2 (dividend partitioned on the quotient attributes, each
//! partition divided independently) and Law 13 (divisor groups distributed
//! across workers). Results are merged in partition order, so for every
//! plan and every partition count the produced relation is byte-identical
//! to the sequential one.
//!
//! Statistics discipline matches the row executor: every operator records its
//! output cardinality under its plan label, scans count into `rows_scanned`,
//! the root into `output_rows`, and the division/join kernels report one
//! probe per input row. For the dividend-partitioned operators (small
//! divide, joins, filters) per-partition probes sum to the sequential
//! count, so probes are independent of the partition count; the great
//! divide replicates the dividend to every worker with a nonempty divisor
//! slice (Law 13), so its probes grow to `nonempty_partitions × |dividend|`
//! — see [`crate::parallel_columnar`].
//! Row counts (`output_rows`, `rows_scanned`, per-operator cardinalities)
//! are partition-count-invariant for every operator. Division nodes
//! additionally record the columnar kernel that actually ran (e.g.
//! `ColumnarHashDivision`), since the
//! [`DivisionAlgorithm`](crate::DivisionAlgorithm) chosen by the planner
//! selects among *row* algorithms and is not consulted here.

use crate::guard::QueryGuard;
use crate::parallel_columnar::{
    parallel_divide_batches, parallel_filter_batches, parallel_great_divide_batches,
    parallel_join_batches, parallel_theta_join_batches, JoinKind,
};
use crate::plan::PhysicalPlan;
use crate::stats::ExecStats;
use crate::trace::{OperatorId, QueryTrace};
use crate::Result;
use div_algebra::Relation;
use div_columnar::{kernels, ColumnarBatch};
use div_expr::{Catalog, ExprError};

/// Execute a physical plan on the columnar backend (single-threaded).
pub fn execute_columnar(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Relation> {
    Ok(execute_columnar_with_stats(plan, catalog)?.0)
}

/// Execute a physical plan on the columnar backend, returning statistics
/// (single-threaded).
pub fn execute_columnar_with_stats(
    plan: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<(Relation, ExecStats)> {
    execute_columnar_parallel_with_stats(plan, catalog, 1)
}

/// Execute a physical plan on the columnar backend with the given partition
/// parallelism (Law 2 / Law 13 partition-parallel kernels for
/// `parallelism > 1`), returning statistics.
pub fn execute_columnar_parallel_with_stats(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    parallelism: usize,
) -> Result<(Relation, ExecStats)> {
    exec_columnar_root(plan, catalog, parallelism, false, &QueryGuard::default())
}

/// Columnar-backend entry point: runs the plan with a per-operator trace
/// (wall-clock spans only when `timing` is on) and publishes the finished
/// tree as [`ExecStats::operators`]. The guard is consulted once per
/// operator, after its output batch materializes.
pub(crate) fn exec_columnar_root(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    parallelism: usize,
    timing: bool,
    guard: &QueryGuard,
) -> Result<(Relation, ExecStats)> {
    let mut stats = ExecStats::default();
    let mut trace = QueryTrace::from_plan(plan).with_timing(timing);
    let mut next_id = 0;
    let batch = exec_batch(
        plan,
        catalog,
        &mut stats,
        &mut trace,
        &mut next_id,
        true,
        parallelism.max(1),
        guard,
    )?;
    stats.operators = trace.finish();
    let relation = batch.to_relation().map_err(ExprError::from)?;
    Ok((relation, stats))
}

#[allow(clippy::too_many_arguments)]
fn exec_batch(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
    trace: &mut QueryTrace,
    next_id: &mut usize,
    is_root: bool,
    parallelism: usize,
    guard: &QueryGuard,
) -> Result<ColumnarBatch> {
    // Pre-order id assignment, matching the skeleton built from the plan.
    let id = OperatorId(*next_id);
    *next_id += 1;
    let started = trace.span_start();
    let batch = match plan {
        PhysicalPlan::TableScan { table } => ColumnarBatch::from_relation(catalog.table(table)?),
        PhysicalPlan::Values { relation } => ColumnarBatch::from_relation(relation),
        PhysicalPlan::Filter { input, predicate } => {
            let child = exec_batch(
                input,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            parallel_filter_batches(&child, predicate, parallelism)?
        }
        PhysicalPlan::Project { input, attributes } => {
            let child = exec_batch(
                input,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            kernels::project(&child, &refs).map_err(ExprError::from)?
        }
        PhysicalPlan::Rename { input, renames } => {
            let child = exec_batch(
                input,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            kernels::rename(&child, renames).map_err(ExprError::from)?
        }
        PhysicalPlan::Union { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            kernels::union(&l, &r).map_err(ExprError::from)?
        }
        PhysicalPlan::Intersect { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            kernels::intersect(&l, &r).map_err(ExprError::from)?
        }
        PhysicalPlan::Difference { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            kernels::difference(&l, &r).map_err(ExprError::from)?
        }
        PhysicalPlan::CrossProduct { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            kernels::cross_product(&l, &r).map_err(ExprError::from)?
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_theta_join_batches(&l, &r, predicate, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            out.batch
        }
        PhysicalPlan::HashJoin { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_join_batches(&l, &r, JoinKind::Natural, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            out.batch
        }
        PhysicalPlan::HashSemiJoin { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_join_batches(&l, &r, JoinKind::Semi, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            out.batch
        }
        PhysicalPlan::HashAntiSemiJoin { left, right } => {
            let l = exec_batch(
                left,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let r = exec_batch(
                right,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_join_batches(&l, &r, JoinKind::Anti, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            out.batch
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let child = exec_batch(
                input,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
            kernels::hash_aggregate(&child, &refs, aggregates).map_err(ExprError::from)?
        }
        PhysicalPlan::Divide {
            dividend, divisor, ..
        } => {
            let d = exec_batch(
                dividend,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let v = exec_batch(
                divisor,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_divide_batches(&d, &v, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            stats.record("ColumnarHashDivision", out.batch.num_rows(), false, false);
            out.batch
        }
        PhysicalPlan::GreatDivide {
            dividend, divisor, ..
        } => {
            let d = exec_batch(
                dividend,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let v = exec_batch(
                divisor,
                catalog,
                stats,
                trace,
                next_id,
                false,
                parallelism,
                guard,
            )?;
            let out = parallel_great_divide_batches(&d, &v, parallelism)?;
            stats.add_probes(out.probes);
            trace.add_probes(id, out.probes);
            stats.record(
                "ColumnarCountingGreatDivision",
                out.batch.num_rows(),
                false,
                false,
            );
            out.batch
        }
    };
    let is_scan = matches!(
        plan,
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. }
    );
    // On a materializing backend the operator's whole output is the
    // resident quantity the budget meters.
    guard.check(batch.num_rows(), &plan.label())?;
    stats.record(&plan.label(), batch.num_rows(), is_scan, is_root);
    trace.set_rows_out(id, batch.num_rows());
    if let Some(started) = started {
        // One inclusive execution span per operator — the materializing
        // counterpart of the streaming open/next/close split.
        trace.add_next(id, started.elapsed());
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_with_stats;
    use crate::planner::{plan_query, PlannerConfig};
    use div_algebra::{relation, AggregateCall, CompareOp, Predicate};
    use div_expr::{evaluate, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    fn q2_physical() -> PhysicalPlan {
        let logical = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        plan_query(&logical, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn q2_matches_row_backend_and_reference() {
        let c = catalog();
        let plan = q2_physical();
        let (row_result, row_stats) = execute_with_stats(&plan, &c).unwrap();
        let (col_result, col_stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(col_result, row_result);
        assert_eq!(col_stats.output_rows, row_stats.output_rows);
        assert_eq!(col_stats.rows_scanned, row_stats.rows_scanned);
        assert!(col_stats
            .rows_per_operator
            .contains_key("ColumnarHashDivision"));
    }

    #[test]
    fn q2_is_partition_count_invariant() {
        // The Law-2 parallel execution returns the same relation AND the same
        // statistics accounting for every partition count.
        let c = catalog();
        let plan = q2_physical();
        let (sequential, seq_stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        for parallelism in [2, 3, 7] {
            let (result, stats) =
                execute_columnar_parallel_with_stats(&plan, &c, parallelism).unwrap();
            assert_eq!(result, sequential, "parallelism = {parallelism}");
            assert_eq!(stats, seq_stats, "parallelism = {parallelism}");
        }
    }

    #[test]
    fn aggregate_runs_vectorized_and_matches_reference() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
            .build();
        let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let expected = evaluate(&logical, &c).unwrap();
        let (result, stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(result, expected);
        assert_eq!(stats.output_rows, expected.len());
    }

    #[test]
    fn every_former_fallback_operator_runs_columnar() {
        // Intersect, difference, cross product, theta-join and aggregation —
        // the five operators that used to fall back to the row executor — all
        // match the reference evaluation end to end.
        let c = catalog();
        let intersect = PlanBuilder::scan("supplies")
            .intersect(PlanBuilder::scan("supplies").select(Predicate::cmp_value(
                "p#",
                CompareOp::Lt,
                3,
            )))
            .build();
        let difference = PlanBuilder::scan("supplies")
            .difference(PlanBuilder::values(relation! { ["s#", "p#"] => [1, 1] }))
            .build();
        let product = PlanBuilder::scan("supplies")
            .rename([("s#", "s"), ("p#", "p")])
            .product(PlanBuilder::scan("parts").rename([("p#", "q")]))
            .build();
        let theta = PlanBuilder::scan("supplies")
            .rename([("p#", "p")])
            .theta_join(
                PlanBuilder::scan("parts").rename([("p#", "q")]),
                Predicate::cmp_attrs("p", CompareOp::Lt, "q"),
            )
            .build();
        let aggregate = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .group_aggregate(["color"], [AggregateCall::count("s#", "n")])
            .project(["color"])
            .build();
        for logical in [intersect, difference, product, theta, aggregate] {
            let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
            let expected = evaluate(&logical, &c).unwrap();
            for parallelism in [1, 4] {
                let (result, _) =
                    execute_columnar_parallel_with_stats(&plan, &c, parallelism).unwrap();
                assert_eq!(result, expected, "parallelism = {parallelism}");
            }
        }
    }

    #[test]
    fn great_divide_node_matches_row_backend() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .build();
        let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let (row_result, _) = execute_with_stats(&plan, &c).unwrap();
        let (col_result, col_stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(col_result, row_result);
        assert!(col_stats
            .rows_per_operator
            .contains_key("ColumnarCountingGreatDivision"));
    }

    #[test]
    fn errors_propagate() {
        let c = catalog();
        let plan = PhysicalPlan::TableScan {
            table: "nope".into(),
        };
        assert!(execute_columnar(&plan, &c).is_err());
    }
}
