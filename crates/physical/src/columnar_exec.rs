//! The columnar (batch-at-a-time) executor.
//!
//! Walks the same [`PhysicalPlan`] tree as the row executor of
//! [`crate::exec`], but keeps data in [`ColumnarBatch`]es and evaluates the
//! vectorizable operators — scan, filter, project, rename, union, the hash
//! join family and both division operators — with the batch kernels of
//! [`div_columnar`]. Operators without a vectorized kernel yet (set
//! intersection/difference, Cartesian product, nested-loop theta-join, hash
//! aggregation) fall back to the row executor for their whole subtree and the
//! resulting relation is converted back into a batch, so every plan the row
//! backend can run, this backend can run too — with identical results.
//!
//! Statistics discipline matches the row executor: every operator records its
//! output cardinality under its plan label, scans count into `rows_scanned`,
//! the root into `output_rows`, and the division/join kernels report one
//! probe per input row. Division nodes additionally record the columnar
//! kernel that actually ran (e.g. `ColumnarHashDivision`), since the
//! [`DivisionAlgorithm`](crate::DivisionAlgorithm) chosen by the planner
//! selects among *row* algorithms and is not consulted here.

use crate::plan::PhysicalPlan;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::Relation;
use div_columnar::{kernels, ColumnarBatch};
use div_expr::{Catalog, ExprError};

/// Execute a physical plan on the columnar backend.
pub fn execute_columnar(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Relation> {
    Ok(execute_columnar_with_stats(plan, catalog)?.0)
}

/// Execute a physical plan on the columnar backend, returning statistics.
pub fn execute_columnar_with_stats(
    plan: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<(Relation, ExecStats)> {
    let mut stats = ExecStats::default();
    let batch = exec_batch(plan, catalog, &mut stats, true)?;
    let relation = batch.to_relation().map_err(ExprError::from)?;
    Ok((relation, stats))
}

fn exec_batch(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
    is_root: bool,
) -> Result<ColumnarBatch> {
    let batch = match plan {
        PhysicalPlan::TableScan { table } => ColumnarBatch::from_relation(catalog.table(table)?),
        PhysicalPlan::Values { relation } => ColumnarBatch::from_relation(relation),
        PhysicalPlan::Filter { input, predicate } => {
            let child = exec_batch(input, catalog, stats, false)?;
            kernels::filter(&child, predicate).map_err(ExprError::from)?
        }
        PhysicalPlan::Project { input, attributes } => {
            let child = exec_batch(input, catalog, stats, false)?;
            let refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            kernels::project(&child, &refs).map_err(ExprError::from)?
        }
        PhysicalPlan::Rename { input, renames } => {
            let child = exec_batch(input, catalog, stats, false)?;
            kernels::rename(&child, renames).map_err(ExprError::from)?
        }
        PhysicalPlan::Union { left, right } => {
            let l = exec_batch(left, catalog, stats, false)?;
            let r = exec_batch(right, catalog, stats, false)?;
            kernels::union(&l, &r).map_err(ExprError::from)?
        }
        PhysicalPlan::HashJoin { left, right } => {
            let l = exec_batch(left, catalog, stats, false)?;
            let r = exec_batch(right, catalog, stats, false)?;
            let out = kernels::hash_natural_join(&l, &r).map_err(ExprError::from)?;
            stats.add_probes(out.probes);
            out.batch
        }
        PhysicalPlan::HashSemiJoin { left, right } => {
            let l = exec_batch(left, catalog, stats, false)?;
            let r = exec_batch(right, catalog, stats, false)?;
            let out = kernels::hash_semi_join(&l, &r, false).map_err(ExprError::from)?;
            stats.add_probes(out.probes);
            out.batch
        }
        PhysicalPlan::HashAntiSemiJoin { left, right } => {
            let l = exec_batch(left, catalog, stats, false)?;
            let r = exec_batch(right, catalog, stats, false)?;
            let out = kernels::hash_semi_join(&l, &r, true).map_err(ExprError::from)?;
            stats.add_probes(out.probes);
            out.batch
        }
        PhysicalPlan::Divide {
            dividend, divisor, ..
        } => {
            let d = exec_batch(dividend, catalog, stats, false)?;
            let v = exec_batch(divisor, catalog, stats, false)?;
            let out = kernels::hash_divide(&d, &v).map_err(ExprError::from)?;
            stats.add_probes(out.probes);
            stats.record("ColumnarHashDivision", out.batch.num_rows(), false, false);
            out.batch
        }
        PhysicalPlan::GreatDivide {
            dividend, divisor, ..
        } => {
            let d = exec_batch(dividend, catalog, stats, false)?;
            let v = exec_batch(divisor, catalog, stats, false)?;
            let out = kernels::hash_great_divide(&d, &v).map_err(ExprError::from)?;
            stats.add_probes(out.probes);
            stats.record(
                "ColumnarCountingGreatDivision",
                out.batch.num_rows(),
                false,
                false,
            );
            out.batch
        }
        // Not vectorized yet: run the whole subtree on the row executor
        // (which records its own statistics, including for this node) and
        // convert the result.
        PhysicalPlan::Intersect { .. }
        | PhysicalPlan::Difference { .. }
        | PhysicalPlan::CrossProduct { .. }
        | PhysicalPlan::NestedLoopJoin { .. }
        | PhysicalPlan::HashAggregate { .. } => {
            let relation = crate::exec::exec_node(plan, catalog, stats, is_root)?;
            return Ok(ColumnarBatch::from_relation(&relation));
        }
    };
    let is_scan = matches!(
        plan,
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. }
    );
    stats.record(&plan.label(), batch.num_rows(), is_scan, is_root);
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_with_stats;
    use crate::planner::{plan_query, PlannerConfig};
    use div_algebra::{relation, AggregateCall, Predicate};
    use div_expr::{evaluate, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    fn q2_physical() -> PhysicalPlan {
        let logical = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        plan_query(&logical, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn q2_matches_row_backend_and_reference() {
        let c = catalog();
        let plan = q2_physical();
        let (row_result, row_stats) = execute_with_stats(&plan, &c).unwrap();
        let (col_result, col_stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(col_result, row_result);
        assert_eq!(col_stats.output_rows, row_stats.output_rows);
        assert_eq!(col_stats.rows_scanned, row_stats.rows_scanned);
        assert!(col_stats
            .rows_per_operator
            .contains_key("ColumnarHashDivision"));
    }

    #[test]
    fn fallback_operators_still_execute() {
        // Aggregation is not vectorized: the subtree runs on the row backend.
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
            .build();
        let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let expected = evaluate(&logical, &c).unwrap();
        let (result, stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(result, expected);
        assert_eq!(stats.output_rows, expected.len());
    }

    #[test]
    fn mixed_vectorized_and_fallback_plan() {
        // Projection (vectorized) over an aggregate (fallback); the whole
        // aggregate subtree, including the join below it, runs row-at-a-time.
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .group_aggregate(["color"], [AggregateCall::count("s#", "n")])
            .project(["color"])
            .build();
        let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let expected = evaluate(&logical, &c).unwrap();
        let (result, _) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(result, expected);
    }

    #[test]
    fn great_divide_node_matches_row_backend() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .build();
        let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
        let (row_result, _) = execute_with_stats(&plan, &c).unwrap();
        let (col_result, col_stats) = execute_columnar_with_stats(&plan, &c).unwrap();
        assert_eq!(col_result, row_result);
        assert!(col_stats
            .rows_per_operator
            .contains_key("ColumnarCountingGreatDivision"));
    }

    #[test]
    fn errors_propagate() {
        let c = catalog();
        let plan = PhysicalPlan::TableScan {
            table: "nope".into(),
        };
        assert!(execute_columnar(&plan, &c).is_err());
    }
}
