//! Partition-parallel execution of the division operators.
//!
//! The paper attaches explicit parallelization strategies to two of its laws:
//!
//! * **Law 2 + condition `c2`** (Section 5.1.1): partition the dividend on
//!   the quotient attributes `A` into disjoint ranges/hash buckets — then
//!   `c2` holds by construction — and divide every partition independently.
//! * **Law 13** (Section 5.2.1): distribute the divisor groups by a hash
//!   function on `C` across `n` nodes; with the dividend replicated, the
//!   execution time drops to roughly `1/n` provided the division dominates
//!   the final union.
//!
//! This module implements both strategies with OS threads (crossbeam's scoped
//! threads stand in for the query-engine nodes). Results and statistics are
//! merged exactly as the laws prescribe, and the unit tests check equivalence
//! with the sequential algorithms.
//!
//! These entry points run *kernels* over relations, not plans, so the
//! per-worker [`ExecStats`] carry no operator span tree
//! ([`ExecStats::operators`] stays empty; [`ExecStats::merge`] treats
//! empty trees as a no-op). Plan-level parallel execution with full
//! per-operator attribution goes through
//! [`crate::columnar_exec`] / [`crate::parallel_columnar`] instead.

use crate::division::{self, DivisionAlgorithm};
use crate::great_divide::{self, GreatDivideAlgorithm};
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::Relation;
use div_expr::ExprError;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn bucket_of<H: Hash>(value: &H, partitions: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    (hasher.finish() as usize) % partitions.max(1)
}

/// Hash-partition `relation` into `partitions` buckets on the given key
/// attributes. Every output partition keeps the full schema.
pub fn hash_partition(
    relation: &Relation,
    key_attributes: &[&str],
    partitions: usize,
) -> Result<Vec<Relation>> {
    let key_idx = relation
        .schema()
        .projection_indices(key_attributes)
        .map_err(ExprError::from)?;
    let mut out = vec![Relation::empty(relation.schema().clone()); partitions.max(1)];
    for t in relation.tuples() {
        let bucket = bucket_of(&t.project(&key_idx), partitions);
        out[bucket].insert(t.clone()).map_err(ExprError::from)?;
    }
    Ok(out)
}

/// Law 2 (under `c2`): divide a dividend partitioned on the quotient
/// attributes in parallel and union the partial quotients.
///
/// Returns the quotient plus the merged statistics of all workers.
pub fn parallel_divide(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: DivisionAlgorithm,
    partitions: usize,
) -> Result<(Relation, ExecStats)> {
    let attrs = dividend
        .division_attributes(divisor)
        .map_err(ExprError::from)?;
    let quotient_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
    let parts = hash_partition(dividend, &quotient_refs, partitions)?;

    let results: Mutex<Vec<(Relation, ExecStats)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<ExprError>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for part in &parts {
            scope.spawn(|_| {
                let mut stats = ExecStats::default();
                match division::divide_with(part, divisor, algorithm, &mut stats) {
                    Ok(rel) => results.lock().push((rel, stats)),
                    Err(err) => errors.lock().push(err),
                }
            });
        }
    })
    .expect("partition worker threads must not panic");

    if let Some(err) = errors.into_inner().pop() {
        return Err(err);
    }
    let mut merged_stats = ExecStats::default();
    let mut quotient: Option<Relation> = None;
    for (rel, stats) in results.into_inner() {
        merged_stats.merge(&stats);
        quotient = Some(match quotient {
            None => rel,
            Some(acc) => acc.union(&rel).map_err(ExprError::from)?,
        });
    }
    let quotient = quotient.unwrap_or_else(|| {
        Relation::empty(
            dividend
                .schema()
                .project(&quotient_refs)
                .expect("quotient attributes exist"),
        )
    });
    // The workers never see the plan root, so `merge` cannot learn the final
    // cardinality; record it here like an executor would for the root node.
    merged_stats.output_rows = quotient.len();
    Ok((quotient, merged_stats))
}

/// Law 13: partition the divisor groups by hashing on the group attributes
/// `C`, run the great divide per partition in parallel (the dividend is
/// shared), and union the results. The partition on `C` guarantees the law's
/// disjointness precondition by construction.
pub fn parallel_great_divide(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: GreatDivideAlgorithm,
    partitions: usize,
) -> Result<(Relation, ExecStats)> {
    let attrs = dividend
        .great_division_attributes(divisor)
        .map_err(ExprError::from)?;
    if attrs.group.is_empty() {
        // Degenerate case: no group attributes to partition on; fall back to
        // the dividend-partitioned strategy of Law 2.
        return parallel_divide(
            dividend,
            divisor,
            DivisionAlgorithm::HashDivision,
            partitions,
        );
    }
    let group_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();
    let parts = hash_partition(divisor, &group_refs, partitions)?;

    let results: Mutex<Vec<(Relation, ExecStats)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<ExprError>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for part in &parts {
            scope.spawn(|_| {
                let mut stats = ExecStats::default();
                match great_divide::great_divide_with(dividend, part, algorithm, &mut stats) {
                    Ok(rel) => results.lock().push((rel, stats)),
                    Err(err) => errors.lock().push(err),
                }
            });
        }
    })
    .expect("partition worker threads must not panic");

    if let Some(err) = errors.into_inner().pop() {
        return Err(err);
    }
    let mut merged_stats = ExecStats::default();
    let mut quotient: Option<Relation> = None;
    for (rel, stats) in results.into_inner() {
        merged_stats.merge(&stats);
        quotient = Some(match quotient {
            None => rel,
            Some(acc) => acc.union(&rel).map_err(ExprError::from)?,
        });
    }
    let quotient = match quotient {
        Some(q) => q,
        None => dividend
            .great_divide(&Relation::empty(divisor.schema().clone()))
            .map_err(ExprError::from)?,
    };
    merged_stats.output_rows = quotient.len();
    Ok((quotient, merged_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn dividend() -> Relation {
        let mut rows = Vec::new();
        for a in 0..40i64 {
            for b in 0..6i64 {
                if a % 3 == 0 || b % 2 == 0 {
                    rows.push(vec![a, b]);
                }
            }
        }
        Relation::from_rows(["a", "b"], rows).unwrap()
    }

    fn divisor() -> Relation {
        relation! { ["b"] => [0], [1], [2], [3], [4], [5] }
    }

    fn group_divisor() -> Relation {
        let mut rows = Vec::new();
        for c in 0..8i64 {
            for b in 0..6i64 {
                if b <= c % 6 {
                    rows.push(vec![b, c]);
                }
            }
        }
        Relation::from_rows(["b", "c"], rows).unwrap()
    }

    #[test]
    fn hash_partition_is_a_partition() {
        let rel = dividend();
        let parts = hash_partition(&rel, &["a"], 4).unwrap();
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, rel.len());
        // Quotient prefixes of distinct partitions are disjoint (condition c2).
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let a_i = parts[i].project(&["a"]).unwrap();
                let a_j = parts[j].project(&["a"]).unwrap();
                assert!(a_i.intersect(&a_j).unwrap().is_empty());
            }
        }
    }

    #[test]
    fn parallel_divide_matches_sequential_for_all_partition_counts() {
        let dividend = dividend();
        let divisor = divisor();
        let expected = dividend.divide(&divisor).unwrap();
        for partitions in [1, 2, 4, 8] {
            let (result, stats) = parallel_divide(
                &dividend,
                &divisor,
                DivisionAlgorithm::HashDivision,
                partitions,
            )
            .unwrap();
            assert_eq!(result, expected, "partitions = {partitions}");
            assert!(stats.probes > 0);
        }
    }

    #[test]
    fn parallel_great_divide_matches_sequential() {
        let dividend = dividend();
        let divisor = group_divisor();
        let expected = dividend.great_divide(&divisor).unwrap();
        for partitions in [1, 2, 4] {
            let (result, _) = parallel_great_divide(
                &dividend,
                &divisor,
                GreatDivideAlgorithm::HashSets,
                partitions,
            )
            .unwrap();
            assert_eq!(result, expected, "partitions = {partitions}");
        }
    }

    #[test]
    fn merged_stats_keep_per_operator_granularity() {
        // Worker statistics must merge per-operator maps (summing counts)
        // rather than dropping them: with the dividend partitioned on the
        // quotient attributes the per-partition `HashDivision` output rows
        // sum to exactly the quotient cardinality, and that sum must survive
        // the merge. The root cardinality is recorded too.
        let dividend = dividend();
        let divisor = divisor();
        let expected = dividend.divide(&divisor).unwrap();
        for partitions in [1, 3, 4] {
            let (result, stats) = parallel_divide(
                &dividend,
                &divisor,
                DivisionAlgorithm::HashDivision,
                partitions,
            )
            .unwrap();
            assert_eq!(result, expected);
            assert_eq!(
                stats.rows_per_operator.get("HashDivision").copied(),
                Some(expected.len()),
                "partitions = {partitions}: per-operator counts must sum across workers"
            );
            assert_eq!(stats.output_rows, expected.len());
        }
    }

    #[test]
    fn parallel_great_divide_degenerates_to_small_divide() {
        let dividend = dividend();
        let divisor = divisor();
        let (result, _) =
            parallel_great_divide(&dividend, &divisor, GreatDivideAlgorithm::HashSets, 3).unwrap();
        assert_eq!(result, dividend.divide(&divisor).unwrap());
    }

    #[test]
    fn empty_inputs_are_handled() {
        let empty_dividend = Relation::empty(div_algebra::Schema::of(["a", "b"]));
        let (result, _) = parallel_divide(
            &empty_dividend,
            &divisor(),
            DivisionAlgorithm::HashDivision,
            4,
        )
        .unwrap();
        assert!(result.is_empty());
        let empty_divisor = Relation::empty(div_algebra::Schema::of(["b", "c"]));
        let (result, _) = parallel_great_divide(
            &dividend(),
            &empty_divisor,
            GreatDivideAlgorithm::GroupLoop,
            4,
        )
        .unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn invalid_schemas_propagate_errors() {
        let bad_divisor = relation! { ["zz"] => [1] };
        assert!(parallel_divide(
            &dividend(),
            &bad_divisor,
            DivisionAlgorithm::HashDivision,
            2
        )
        .is_err());
    }
}
