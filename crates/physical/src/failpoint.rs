//! Named failpoints: test-armed fault injection at operator boundaries.
//!
//! The streaming executor threads every operator through three sites —
//! `{label}.open` (as the pipeline is compiled), `{label}.next_batch` (at
//! each emission) and `{label}.close` (during teardown) — where a test can
//! arm a [`FailAction`]: return an error or inject a delay. The chaos suite
//! (`tests/chaos.rs`) uses this to prove the governance layer's invariants
//! under faults at *every* site of *every* plan shape: no panics, typed
//! wire errors, resident accounting drained back to zero.
//!
//! The registry is process-global, so tests arming failpoints must
//! serialize (the chaos suite takes a suite-level mutex) and disarm in a
//! drop guard. The disarmed fast path is one relaxed atomic load — no site
//! string is even formatted — so the hooks stay in production builds; the
//! whole module compiles to inert stubs when the `failpoints` cargo
//! feature (on by default) is disabled.
//!
//! Injected errors surface as [`div_expr::ExprError::InvalidPlan`] with a
//! `failpoint <site>` reason, reaching wire clients as `ERR PLAN` — a
//! deliberate reuse: faults should exercise the *existing* error channel,
//! not a bespoke one.

use div_expr::ExprError;
use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Return an error carrying this message.
    Error(String),
    /// Sleep for this long, then continue normally.
    Delay(Duration),
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use div_expr::ExprError;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Count of currently armed sites: the disarmed fast path is this one
    /// relaxed load.
    static ARMED: AtomicUsize = AtomicUsize::new(0);
    static SITES: Mutex<Option<HashMap<String, FailAction>>> = Mutex::new(None);

    fn lock_sites() -> std::sync::MutexGuard<'static, Option<HashMap<String, FailAction>>> {
        // A panic while holding this lock can only come from a poisoned
        // assertion in a test; the registry itself stays consistent.
        SITES
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(super) fn arm(site: &str, action: FailAction) {
        let mut sites = lock_sites();
        let map = sites.get_or_insert_with(HashMap::new);
        if map.insert(site.to_string(), action).is_none() {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }

    pub(super) fn disarm(site: &str) {
        let mut sites = lock_sites();
        if let Some(map) = sites.as_mut() {
            if map.remove(site).is_some() {
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    pub(super) fn disarm_all() {
        let mut sites = lock_sites();
        if let Some(map) = sites.as_mut() {
            ARMED.fetch_sub(map.len(), Ordering::SeqCst);
            map.clear();
        }
    }

    pub(super) fn hit(label: &str, phase: &str) -> Result<(), ExprError> {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let site = format!("{label}.{phase}");
        let action = lock_sites()
            .as_ref()
            .and_then(|map| map.get(&site).cloned());
        match action {
            None => Ok(()),
            Some(FailAction::Delay(pause)) => {
                std::thread::sleep(pause);
                Ok(())
            }
            Some(FailAction::Error(message)) => {
                Err(ExprError::invalid(format!("failpoint {site}: {message}")))
            }
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FailAction;
    use div_expr::ExprError;

    pub(super) fn arm(_site: &str, _action: FailAction) {}
    pub(super) fn disarm(_site: &str) {}
    pub(super) fn disarm_all() {}

    #[inline(always)]
    pub(super) fn hit(_label: &str, _phase: &str) -> Result<(), ExprError> {
        Ok(())
    }
}

/// Arm the named site (`"<operator label>.<open|next_batch|close>"`) with
/// an action. Re-arming an armed site replaces its action. A no-op without
/// the `failpoints` feature.
pub fn arm(site: &str, action: FailAction) {
    imp::arm(site, action);
}

/// Disarm one site. A no-op if the site is not armed.
pub fn disarm(site: &str) {
    imp::disarm(site);
}

/// Disarm every site — call from a test's drop guard so a failed assertion
/// cannot leak an armed fault into the next test.
pub fn disarm_all() {
    imp::disarm_all();
}

/// Executor-side hook: evaluate the site `"{label}.{phase}"`. Returns the
/// armed error, sleeps through an armed delay, or passes. The disarmed
/// path costs one relaxed atomic load.
pub fn hit(label: &str, phase: &str) -> Result<(), ExprError> {
    imp::hit(label, phase)
}

/// Serialize tests that arm failpoints: the registry is process-global, so
/// concurrent arming tests would see each other's faults. Hold the returned
/// guard for the duration of the test (a poisoned lock — a previous test
/// panicked — is recovered, since [`disarm_all`] restores a clean slate).
pub fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn armed_error_fires_and_disarms_cleanly() {
        let _serial = test_serial();
        disarm_all();
        assert!(hit("Scan", "next_batch").is_ok());
        arm("Scan.next_batch", FailAction::Error("boom".into()));
        let err = hit("Scan", "next_batch").unwrap_err();
        assert!(err.to_string().contains("failpoint Scan.next_batch"));
        assert!(hit("Scan", "open").is_ok(), "other phases stay clear");
        disarm("Scan.next_batch");
        assert!(hit("Scan", "next_batch").is_ok());
    }

    #[test]
    fn armed_delay_sleeps_then_continues() {
        let _serial = test_serial();
        disarm_all();
        arm("Union.close", FailAction::Delay(Duration::from_millis(20)));
        let started = Instant::now();
        assert!(hit("Union", "close").is_ok());
        assert!(started.elapsed() >= Duration::from_millis(20));
        disarm_all();
    }

    #[test]
    fn disarm_all_clears_every_site() {
        let _serial = test_serial();
        disarm_all();
        arm("A.open", FailAction::Error("x".into()));
        arm("B.open", FailAction::Error("y".into()));
        disarm_all();
        assert!(hit("A", "open").is_ok());
        assert!(hit("B", "open").is_ok());
    }
}
