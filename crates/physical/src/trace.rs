//! Query tracing: the per-operator span tree behind `EXPLAIN ANALYZE`.
//!
//! The aggregate counters of [`ExecStats`](crate::ExecStats) answer *how
//! much* a query did; this module answers *where*. Every operator of a
//! [`PhysicalPlan`] gets a stable [`OperatorId`] — its position in a
//! pre-order depth-first walk of the plan tree — and an
//! [`OperatorStats`] node recording what that one operator did: rows in and
//! out, hash probes, peak retained rows, and wall-clock time. Identifying
//! operators by position instead of by label fixes the lossy
//! `rows_per_operator` label aggregation, where two operators with the same
//! label (two identical `Filter`s, say) merged into one entry.
//!
//! Timing granularity follows the executor:
//!
//! * the **streaming executor** ([`crate::stream`]) splits wall-clock time
//!   into the Volcano phases `open` (operator-tree compilation),
//!   `next_batch` (cumulative across all pulls) and `close`. Deltas are
//!   accumulated with one [`Instant`] pair per call, never per row, and
//!   only when tracing is enabled
//!   ([`PlannerConfig::tracing`](crate::PlannerConfig::tracing));
//! * the **materializing backends** ([`crate::exec`],
//!   [`crate::columnar_exec`]) evaluate each operator exactly once, so they
//!   record a single execution span (stored in
//!   [`OperatorStats::time_next_ns`]).
//!
//! All recorded times are *inclusive*: an operator's span contains its
//! children's spans, exactly like `EXPLAIN ANALYZE` output in mainstream
//! systems.
//!
//! A [`QueryTrace`] is the recorder used during one execution; its
//! finished node list lands in
//! [`ExecStats::operators`](crate::ExecStats::operators). Equality on
//! [`OperatorStats`] deliberately ignores the time fields so that
//! differential tests can compare statistics across backends and partition
//! counts without tripping over wall-clock noise.

use crate::plan::PhysicalPlan;
use std::fmt;
use std::time::{Duration, Instant};

/// Stable identifier of one operator in a plan: its index in a pre-order
/// depth-first walk (the root is `0`, a node's id precedes all of its
/// descendants' ids, and siblings number left to right).
///
/// Every executor assigns ids with the same walk, so the id of an operator
/// is identical across the row, columnar and streaming paths — and matches
/// the line order of [`PhysicalPlan::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OperatorId(pub usize);

impl OperatorId {
    /// The id as a plain index into [`ExecStats::operators`](crate::ExecStats::operators).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What one operator did during one execution: the per-node counterpart of
/// the query-level aggregates in [`ExecStats`](crate::ExecStats).
///
/// `PartialEq`/`Eq` ignore the `time_*_ns` fields: row counts, probes and
/// retained state are deterministic and comparable across executions, wall
/// time is not.
#[derive(Debug, Clone, Default)]
pub struct OperatorStats {
    /// Pre-order position of the operator in the plan tree.
    pub id: OperatorId,
    /// The operator's display label ([`PhysicalPlan::label`]).
    pub label: String,
    /// Rows this operator consumed: the sum of its children's `rows_out`
    /// (`0` for scans, whose input is the catalog).
    pub rows_in: usize,
    /// Rows this operator produced (for an early-terminated execution:
    /// rows it *actually* produced before the consumer stopped).
    pub rows_out: usize,
    /// Hash probes / tuple comparisons performed by this operator's kernel.
    pub probes: usize,
    /// Peak rows retained in cross-batch state (build sides, distinct
    /// stores, coverage state, blocking buffers). `0` for pure pipeline
    /// operators and on the materializing backends.
    pub peak_retained_rows: usize,
    /// Nanoseconds spent constructing the operator (streaming `open`
    /// phase, inclusive of children). `0` when tracing is off.
    pub time_open_ns: u64,
    /// Nanoseconds spent producing batches, cumulative over every
    /// `next_batch` call, inclusive of children. The materializing
    /// backends store their single whole-operator execution span here.
    /// `0` when tracing is off.
    pub time_next_ns: u64,
    /// Nanoseconds spent closing the operator, inclusive of children.
    /// `0` when tracing is off.
    pub time_close_ns: u64,
    /// Ids of this operator's children, left to right.
    pub children: Vec<OperatorId>,
}

impl OperatorStats {
    fn new(id: OperatorId, label: String) -> OperatorStats {
        OperatorStats {
            id,
            label,
            ..OperatorStats::default()
        }
    }

    /// Total recorded wall time in nanoseconds (open + next + close),
    /// inclusive of children.
    pub fn total_time_ns(&self) -> u64 {
        self.time_open_ns + self.time_next_ns + self.time_close_ns
    }

    /// `true` when a timed execution recorded wall time for this node.
    pub fn timed(&self) -> bool {
        self.total_time_ns() > 0
    }
}

impl PartialEq for OperatorStats {
    fn eq(&self, other: &Self) -> bool {
        // Wall-clock fields are excluded on purpose: differential tests
        // assert statistics equality across backends and partition counts.
        self.id == other.id
            && self.label == other.label
            && self.rows_in == other.rows_in
            && self.rows_out == other.rows_out
            && self.probes == other.probes
            && self.peak_retained_rows == other.peak_retained_rows
            && self.children == other.children
    }
}

impl Eq for OperatorStats {}

/// The span-tree recorder for one query execution.
///
/// Built from the plan before execution starts ([`QueryTrace::from_plan`]),
/// filled in by the executor as operators run, and finalized into the
/// flat, id-indexed node list stored in
/// [`ExecStats::operators`](crate::ExecStats::operators). Recording row
/// counts, probes and retained state is always on (it is O(1) bookkeeping
/// the executors already did in aggregate); the `Instant`-based wall-clock
/// spans are taken only when timing is enabled.
#[derive(Debug, Default)]
pub struct QueryTrace {
    timing: bool,
    nodes: Vec<OperatorStats>,
}

impl QueryTrace {
    /// A trace skeleton for `plan`: one node per operator, ids assigned in
    /// pre-order, timing disabled.
    pub fn from_plan(plan: &PhysicalPlan) -> QueryTrace {
        let mut nodes = Vec::with_capacity(plan.operator_count());
        build_skeleton(plan, &mut nodes);
        QueryTrace {
            timing: false,
            nodes,
        }
    }

    /// This trace with wall-clock timing switched on or off.
    pub fn with_timing(mut self, timing: bool) -> QueryTrace {
        self.timing = timing;
        self
    }

    /// `true` when wall-clock spans are being recorded.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Start a span: `Some(now)` when timing is enabled, `None` (and no
    /// clock read) otherwise. Pair with one of the `add_*` phase methods.
    pub fn span_start(&self) -> Option<Instant> {
        self.timing.then(Instant::now)
    }

    /// Number of operators in the trace.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the trace tracks no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn node(&mut self, id: OperatorId) -> Option<&mut OperatorStats> {
        self.nodes.get_mut(id.0)
    }

    /// Set the rows this operator produced.
    pub fn set_rows_out(&mut self, id: OperatorId, rows: usize) {
        if let Some(node) = self.node(id) {
            node.rows_out = rows;
        }
    }

    /// Add kernel probes to this operator.
    pub fn add_probes(&mut self, id: OperatorId, probes: usize) {
        if let Some(node) = self.node(id) {
            node.probes += probes;
        }
    }

    /// Record this operator's current retained-state footprint (peaks are
    /// kept, lower values ignored).
    pub fn note_retained(&mut self, id: OperatorId, rows: usize) {
        if let Some(node) = self.node(id) {
            node.peak_retained_rows = node.peak_retained_rows.max(rows);
        }
    }

    /// Accumulate time into the `open` phase of this operator.
    pub fn add_open(&mut self, id: OperatorId, elapsed: Duration) {
        if let Some(node) = self.node(id) {
            node.time_open_ns += elapsed.as_nanos() as u64;
        }
    }

    /// Accumulate time into the `next_batch` phase of this operator (also
    /// the single execution span of the materializing backends).
    pub fn add_next(&mut self, id: OperatorId, elapsed: Duration) {
        if let Some(node) = self.node(id) {
            node.time_next_ns += elapsed.as_nanos() as u64;
        }
    }

    /// Accumulate time into the `close` phase of this operator.
    pub fn add_close(&mut self, id: OperatorId, elapsed: Duration) {
        if let Some(node) = self.node(id) {
            node.time_close_ns += elapsed.as_nanos() as u64;
        }
    }

    /// Finalize and take the node list: derives every `rows_in` as the sum
    /// of the node's children's `rows_out` and leaves the trace empty.
    pub fn finish(&mut self) -> Vec<OperatorStats> {
        let mut nodes = std::mem::take(&mut self.nodes);
        for i in 0..nodes.len() {
            let rows_in: usize = nodes[i]
                .children
                .clone()
                .into_iter()
                .map(|c| nodes[c.0].rows_out)
                .sum();
            nodes[i].rows_in = rows_in;
        }
        nodes
    }
}

fn build_skeleton(plan: &PhysicalPlan, nodes: &mut Vec<OperatorStats>) -> OperatorId {
    let id = OperatorId(nodes.len());
    nodes.push(OperatorStats::new(id, plan.label()));
    let children: Vec<OperatorId> = plan
        .children()
        .into_iter()
        .map(|child| build_skeleton(child, nodes))
        .collect();
    nodes[id.0].children = children;
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::division::DivisionAlgorithm;
    use div_algebra::Predicate;

    fn sample() -> PhysicalPlan {
        PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Divide {
                dividend: Box::new(PhysicalPlan::TableScan {
                    table: "supplies".into(),
                }),
                divisor: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::TableScan {
                        table: "parts".into(),
                    }),
                    predicate: Predicate::eq_value("color", "blue"),
                }),
                algorithm: DivisionAlgorithm::HashDivision,
            }),
            attributes: vec!["s#".into()],
        }
    }

    #[test]
    fn skeleton_ids_follow_pre_order() {
        let trace = QueryTrace::from_plan(&sample());
        assert_eq!(trace.len(), 5);
        let labels: Vec<&str> = trace.nodes.iter().map(|n| n.label.as_str()).collect();
        assert!(labels[0].starts_with("Project"));
        assert!(labels[1].starts_with("Divide"));
        assert_eq!(labels[2], "TableScan(supplies)");
        assert!(labels[3].starts_with("Filter"));
        assert_eq!(labels[4], "TableScan(parts)");
        assert_eq!(trace.nodes[0].children, vec![OperatorId(1)]);
        assert_eq!(trace.nodes[1].children, vec![OperatorId(2), OperatorId(3)]);
        assert_eq!(trace.nodes[3].children, vec![OperatorId(4)]);
    }

    #[test]
    fn finish_derives_rows_in_from_children() {
        let mut trace = QueryTrace::from_plan(&sample());
        for (id, rows) in [(0, 2), (1, 2), (2, 6), (3, 2), (4, 3)] {
            trace.set_rows_out(OperatorId(id), rows);
        }
        let nodes = trace.finish();
        assert_eq!(nodes[0].rows_in, 2); // Project consumes the quotient
        assert_eq!(nodes[1].rows_in, 6 + 2); // Divide consumes both inputs
        assert_eq!(nodes[2].rows_in, 0); // scans have no plan input
        assert_eq!(nodes[3].rows_in, 3); // Filter consumes the scan
    }

    #[test]
    fn equality_ignores_wall_time() {
        let mut a = OperatorStats::new(OperatorId(0), "Filter".into());
        let mut b = a.clone();
        a.time_next_ns = 1_000_000;
        b.time_next_ns = 2;
        assert_eq!(a, b);
        b.rows_out = 1;
        assert_ne!(a, b);
    }

    #[test]
    fn span_start_reads_the_clock_only_when_timing() {
        let off = QueryTrace::from_plan(&sample());
        assert!(off.span_start().is_none());
        let on = QueryTrace::from_plan(&sample()).with_timing(true);
        assert!(on.span_start().is_some());
    }
}
