//! Division simulated with basic relational operators.
//!
//! This is the *negative baseline*: Healy's Definition 2,
//! `r1 ÷ r2 = π_A(r1) − π_A((π_A(r1) × r2) − r1)`, executed literally with the
//! basic set operators. The Cartesian product `π_A(r1) × r2` materializes
//! `|π_A(r1)| · |r2|` tuples regardless of the result size — the quadratic
//! intermediate result that Leinders & Van den Bussche prove is unavoidable
//! for *any* basic-algebra simulation, and the reason the paper insists that
//! division be a first-class operator. The executor records those
//! intermediate sizes so the benchmarks (experiment E1) can plot the blow-up.

use super::DivisionContext;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::Relation;
use div_expr::ExprError;

/// Execute the basic-operator simulation.
pub fn divide(
    ctx: &DivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let quotient_refs: Vec<&str> = ctx.quotient_names.iter().map(String::as_str).collect();
    // π_A(r1)
    let candidates = dividend.project(&quotient_refs).map_err(ExprError::from)?;
    stats.record("Simulated/π_A(r1)", candidates.len(), false, false);

    // π_A(r1) × r2  — the quadratic step.
    let all_pairs = candidates.product(divisor).map_err(ExprError::from)?;
    stats.record("Simulated/π_A(r1)×r2", all_pairs.len(), false, false);

    // (π_A(r1) × r2) − r1
    let conformed_dividend = dividend
        .conform_to(all_pairs.schema())
        .map_err(ExprError::from)?;
    let missing = all_pairs
        .difference(&conformed_dividend)
        .map_err(ExprError::from)?;
    stats.record("Simulated/missing-pairs", missing.len(), false, false);

    // π_A(...)
    let disqualified = missing.project(&quotient_refs).map_err(ExprError::from)?;
    stats.record("Simulated/π_A(missing)", disqualified.len(), false, false);

    // π_A(r1) − π_A(...)
    let result = candidates
        .difference(&disqualified)
        .map_err(ExprError::from)?;
    stats.record("SimulatedDivision", result.len(), false, false);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::DivisionContext;
    use super::*;

    #[test]
    fn matches_reference_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, figure1_quotient());
    }

    #[test]
    fn intermediate_size_is_candidates_times_divisor() {
        let (dividend, divisor) = synthetic(40, 10);
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        let candidates = dividend.project(&["a"]).unwrap().len();
        assert_eq!(
            stats.rows_per_operator["Simulated/π_A(r1)×r2"],
            candidates * divisor.len()
        );
        // The blow-up dwarfs the actual quotient.
        assert!(stats.max_intermediate >= candidates * divisor.len());
    }
}
