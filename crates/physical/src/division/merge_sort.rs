//! Merge-sort (sort-based) division.
//!
//! Sort the dividend on `(A, B)` and the divisor on `B`, then merge: for each
//! dividend group (run of equal `A`-values) walk the group and the sorted
//! divisor in lockstep; the group qualifies when every divisor value is
//! matched. The algorithm is *group-preserving* — quotient tuples are emitted
//! in sorted `A` order as soon as their group ends — which is exactly the
//! property the paper exploits for the pipelined evaluation of Law 1.

use super::DivisionContext;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Tuple};
use div_expr::ExprError;

/// Execute merge-sort division.
pub fn divide(
    ctx: &DivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    // "Sort" phase: project to (A, B) pairs and sort lexicographically.
    let mut pairs: Vec<(Tuple, Tuple)> = dividend
        .tuples()
        .map(|t| (t.project(&ctx.dividend_a), t.project(&ctx.dividend_b)))
        .collect();
    pairs.sort();
    pairs.dedup();
    let divisor_sorted = ctx.divisor_b_tuples(divisor); // already sorted + deduped

    let mut out = Relation::empty(ctx.output_schema.clone());
    let mut probes = 0usize;

    let mut i = 0;
    while i < pairs.len() {
        let group_key = pairs[i].0.clone();
        // Merge this group's B-run against the sorted divisor.
        let mut matched = 0usize;
        let mut d = 0usize;
        while i < pairs.len() && pairs[i].0 == group_key {
            probes += 1;
            let b = &pairs[i].1;
            while d < divisor_sorted.len() && &divisor_sorted[d] < b {
                d += 1;
            }
            if d < divisor_sorted.len() && &divisor_sorted[d] == b {
                matched += 1;
                d += 1;
            }
            i += 1;
        }
        if matched == divisor_sorted.len() {
            out.insert(group_key).map_err(ExprError::from)?;
        }
    }
    stats.add_probes(probes);
    stats.record("MergeSortDivision", out.len(), false, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::DivisionContext;
    use super::*;

    #[test]
    fn matches_reference_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, figure1_quotient());
    }

    #[test]
    fn quotient_is_emitted_in_sorted_group_order() {
        let (dividend, divisor) = synthetic(12, 5);
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        let values: Vec<_> = result.tuples().cloned().collect();
        let mut sorted = values.clone();
        sorted.sort();
        assert_eq!(values, sorted);
        assert_eq!(result, dividend.divide(&divisor).unwrap());
    }

    #[test]
    fn handles_divisor_values_missing_from_a_group() {
        let dividend = div_algebra::relation! { ["a", "b"] => [1, 5], [2, 5], [2, 9] };
        let divisor = div_algebra::relation! { ["b"] => [5], [9] };
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, div_algebra::relation! { ["a"] => [2] });
    }
}
