//! Physical algorithms for the small divide.
//!
//! The paper (Section 1.1, Section 6) refers to the algorithm families studied
//! by Graefe \[14\], Graefe & Cole \[16\] and Rantzau et al. \[36\]; this module
//! implements one representative of each family plus the negative baseline:
//!
//! | Algorithm | Family | Characteristics |
//! |-----------|--------|-----------------|
//! | [`DivisionAlgorithm::NestedLoop`] | naive | no preprocessing, `O(|A| · |r2| · |r1|)` probes |
//! | [`DivisionAlgorithm::HashDivision`] | hash-division (Graefe) | one pass over the dividend, divisor hash table + per-candidate bitmaps |
//! | [`DivisionAlgorithm::MergeSortDivision`] | merge-/sort-based | sorts both inputs, merges group-wise; group-preserving |
//! | [`DivisionAlgorithm::CountingDivision`] | aggregate counting (Graefe & Cole) | semi-join + per-group match counting against `|r2|` |
//! | [`DivisionAlgorithm::SimulatedBasicOperators`] | baseline | Healy's `π/×/−` expression; quadratic intermediate results |
//!
//! Every algorithm produces exactly the relation that
//! [`div_algebra::Relation::divide`] produces; the unit tests and the
//! cross-crate property tests enforce this.

pub mod counting;
pub mod hash;
pub mod merge_sort;
pub mod nested_loop;
pub mod simulated;

use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Schema, Tuple};
use div_expr::ExprError;

/// The available small-divide algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivisionAlgorithm {
    /// Naive nested-loop division.
    NestedLoop,
    /// Graefe's hash-division.
    HashDivision,
    /// Sort/merge-based division (group-preserving).
    MergeSortDivision,
    /// Counting-based division (semi-join plus group counting).
    CountingDivision,
    /// Simulation with basic operators (Healy's Definition 2) — the baseline
    /// whose intermediate results grow quadratically.
    SimulatedBasicOperators,
}

impl DivisionAlgorithm {
    /// All algorithms, useful for exhaustive comparisons in tests and benches.
    pub const ALL: [DivisionAlgorithm; 5] = [
        DivisionAlgorithm::NestedLoop,
        DivisionAlgorithm::HashDivision,
        DivisionAlgorithm::MergeSortDivision,
        DivisionAlgorithm::CountingDivision,
        DivisionAlgorithm::SimulatedBasicOperators,
    ];

    /// Short display name (used in benchmark output).
    pub fn name(&self) -> &'static str {
        match self {
            DivisionAlgorithm::NestedLoop => "nested-loop",
            DivisionAlgorithm::HashDivision => "hash-division",
            DivisionAlgorithm::MergeSortDivision => "merge-sort-division",
            DivisionAlgorithm::CountingDivision => "counting-division",
            DivisionAlgorithm::SimulatedBasicOperators => "simulated-basic-operators",
        }
    }
}

/// Pre-resolved attribute information shared by all algorithms.
#[derive(Debug, Clone)]
pub struct DivisionContext {
    /// Quotient attribute names `A` (dividend order).
    pub quotient_names: Vec<String>,
    /// Shared attribute names `B`.
    pub shared_names: Vec<String>,
    /// Indices of `A` in the dividend schema.
    pub dividend_a: Vec<usize>,
    /// Indices of `B` in the dividend schema.
    pub dividend_b: Vec<usize>,
    /// Indices of `B` in the divisor schema (matching `shared_names` order).
    pub divisor_b: Vec<usize>,
    /// Output schema (the quotient attributes).
    pub output_schema: Schema,
}

impl DivisionContext {
    /// Resolve the attribute partition for `dividend ÷ divisor`.
    pub fn resolve(dividend: &Relation, divisor: &Relation) -> Result<Self> {
        let attrs = dividend
            .division_attributes(divisor)
            .map_err(ExprError::from)?;
        let quotient_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let shared_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let dividend_a = dividend
            .schema()
            .projection_indices(&quotient_refs)
            .map_err(ExprError::from)?;
        let dividend_b = dividend
            .schema()
            .projection_indices(&shared_refs)
            .map_err(ExprError::from)?;
        let divisor_b = divisor
            .schema()
            .projection_indices(&shared_refs)
            .map_err(ExprError::from)?;
        let output_schema = dividend
            .schema()
            .project(&quotient_refs)
            .map_err(ExprError::from)?;
        Ok(DivisionContext {
            quotient_names: attrs.quotient,
            shared_names: attrs.shared,
            dividend_a,
            dividend_b,
            divisor_b,
            output_schema,
        })
    }

    /// The divisor tuples projected onto `B` in dividend attribute order.
    pub fn divisor_b_tuples(&self, divisor: &Relation) -> Vec<Tuple> {
        let mut tuples: Vec<Tuple> = divisor
            .tuples()
            .map(|t| t.project(&self.divisor_b))
            .collect();
        tuples.sort();
        tuples.dedup();
        tuples
    }
}

/// Execute `dividend ÷ divisor` with the chosen algorithm, recording
/// probe/intermediate statistics into `stats`.
pub fn divide_with(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: DivisionAlgorithm,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let ctx = DivisionContext::resolve(dividend, divisor)?;
    match algorithm {
        DivisionAlgorithm::NestedLoop => nested_loop::divide(&ctx, dividend, divisor, stats),
        DivisionAlgorithm::HashDivision => hash::divide(&ctx, dividend, divisor, stats),
        DivisionAlgorithm::MergeSortDivision => merge_sort::divide(&ctx, dividend, divisor, stats),
        DivisionAlgorithm::CountingDivision => counting::divide(&ctx, dividend, divisor, stats),
        DivisionAlgorithm::SimulatedBasicOperators => {
            simulated::divide(&ctx, dividend, divisor, stats)
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the per-algorithm tests.

    use div_algebra::{relation, Relation};

    /// Figure 1 dividend.
    pub fn figure1_dividend() -> Relation {
        relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        }
    }

    /// Figure 1 divisor.
    pub fn figure1_divisor() -> Relation {
        relation! { ["b"] => [1], [3] }
    }

    /// Figure 1 quotient.
    pub fn figure1_quotient() -> Relation {
        relation! { ["a"] => [2], [3] }
    }

    /// A wider workload: `groups` quotient groups over `items` shared values,
    /// where every third group contains the full divisor.
    pub fn synthetic(groups: i64, items: i64) -> (Relation, Relation) {
        let mut dividend_rows = Vec::new();
        for g in 0..groups {
            let keep_all = g % 3 == 0;
            for i in 0..items {
                if keep_all || i % 2 == 0 {
                    dividend_rows.push(vec![g, i]);
                }
            }
        }
        let divisor_rows: Vec<Vec<i64>> = (0..items).map(|i| vec![i]).collect();
        (
            Relation::from_rows(["a", "b"], dividend_rows).unwrap(),
            Relation::from_rows(["b"], divisor_rows).unwrap(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn all_algorithms_agree_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        for algorithm in DivisionAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            assert_eq!(result, figure1_quotient(), "algorithm {}", algorithm.name());
        }
    }

    #[test]
    fn all_algorithms_agree_on_synthetic_workloads() {
        for (groups, items) in [(1, 1), (5, 4), (20, 7), (33, 10)] {
            let (dividend, divisor) = synthetic(groups, items);
            let expected = dividend.divide(&divisor).unwrap();
            for algorithm in DivisionAlgorithm::ALL {
                let mut stats = ExecStats::default();
                let result = divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
                assert_eq!(
                    result,
                    expected,
                    "algorithm {} on ({groups}, {items})",
                    algorithm.name()
                );
            }
        }
    }

    #[test]
    fn all_algorithms_handle_empty_inputs() {
        let dividend = figure1_dividend();
        let empty_divisor = Relation::empty(div_algebra::Schema::of(["b"]));
        let empty_dividend = Relation::empty(div_algebra::Schema::of(["a", "b"]));
        for algorithm in DivisionAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let all_groups = divide_with(&dividend, &empty_divisor, algorithm, &mut stats).unwrap();
            assert_eq!(
                all_groups,
                dividend.project(&["a"]).unwrap(),
                "empty divisor, algorithm {}",
                algorithm.name()
            );
            let none =
                divide_with(&empty_dividend, &figure1_divisor(), algorithm, &mut stats).unwrap();
            assert!(
                none.is_empty(),
                "empty dividend, algorithm {}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn context_resolution_validates_schemas() {
        let dividend = figure1_dividend();
        let bad_divisor = div_algebra::relation! { ["z"] => [1] };
        assert!(DivisionContext::resolve(&dividend, &bad_divisor).is_err());
        let ctx = DivisionContext::resolve(&dividend, &figure1_divisor()).unwrap();
        assert_eq!(ctx.quotient_names, vec!["a"]);
        assert_eq!(ctx.shared_names, vec!["b"]);
        assert_eq!(ctx.output_schema.names(), vec!["a"]);
        assert_eq!(ctx.divisor_b_tuples(&figure1_divisor()).len(), 2);
    }

    #[test]
    fn simulation_produces_more_intermediate_tuples_than_hash_division() {
        let (dividend, divisor) = synthetic(60, 12);
        let mut hash_stats = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            &mut hash_stats,
        )
        .unwrap();
        let mut sim_stats = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::SimulatedBasicOperators,
            &mut sim_stats,
        )
        .unwrap();
        assert!(
            sim_stats.intermediate_tuples > hash_stats.intermediate_tuples,
            "simulation {} vs hash {}",
            sim_stats.intermediate_tuples,
            hash_stats.intermediate_tuples
        );
        // The simulation's π_A(r1) × r2 step alone is |A-groups| * |r2|.
        assert!(sim_stats.max_intermediate >= 60 * 12 / 2);
    }
}
