//! Graefe's hash-division.
//!
//! The classic special-purpose algorithm (Graefe, ICDE 1989): build a hash
//! table over the divisor assigning each divisor tuple a dense index, then
//! scan the dividend exactly once. For every dividend tuple whose `B`-value is
//! a divisor member, look up (or create) the bitmap of its quotient candidate
//! and set the corresponding bit. Candidates whose bitmap is full at the end
//! form the quotient. One pass over each input, memory proportional to
//! `|r2| + |candidates| · |r2|` bits.

use super::DivisionContext;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Tuple};
use div_expr::ExprError;
use std::collections::HashMap;

/// Execute hash-division.
pub fn divide(
    ctx: &DivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    // Divisor hash table: B-tuple -> dense bit index.
    let divisor_tuples = ctx.divisor_b_tuples(divisor);
    let divisor_index: HashMap<&Tuple, usize> = divisor_tuples
        .iter()
        .enumerate()
        .map(|(i, t)| (t, i))
        .collect();
    let divisor_size = divisor_index.len();

    // Quotient candidate table: A-tuple -> bitmap of seen divisor members.
    let mut candidates: HashMap<Tuple, (Vec<bool>, usize)> = HashMap::new();
    let mut probes = 0usize;
    for t in dividend.tuples() {
        probes += 1;
        let a = t.project(&ctx.dividend_a);
        let entry = candidates
            .entry(a)
            .or_insert_with(|| (vec![false; divisor_size], 0));
        if divisor_size == 0 {
            continue;
        }
        let b = t.project(&ctx.dividend_b);
        if let Some(&idx) = divisor_index.get(&b) {
            if !entry.0[idx] {
                entry.0[idx] = true;
                entry.1 += 1;
            }
        }
    }
    stats.add_probes(probes);

    let mut out = Relation::empty(ctx.output_schema.clone());
    for (candidate, (_bitmap, count)) in candidates {
        if count == divisor_size {
            out.insert(candidate).map_err(ExprError::from)?;
        }
    }
    stats.record("HashDivision", out.len(), false, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::DivisionContext;
    use super::*;

    #[test]
    fn matches_reference_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, figure1_quotient());
    }

    #[test]
    fn single_pass_over_the_dividend() {
        let (dividend, divisor) = synthetic(30, 8);
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        // Exactly one probe per dividend tuple.
        assert_eq!(stats.probes, dividend.len());
    }

    #[test]
    fn duplicate_divisor_hits_are_counted_once() {
        // A dividend group that contains the same B value twice (under
        // different representation this cannot happen with set semantics, but
        // the bitmap logic must still count each divisor member once).
        let dividend = div_algebra::relation! {
            ["a", "b", "c"] =>
            [1, 1, 10], [1, 1, 20], [1, 2, 10],
        };
        let divisor = div_algebra::relation! { ["b"] => [1], [2] };
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        // Quotient attributes are (a, c): (1,10) has b∈{1,2} ✓, (1,20) only b=1.
        assert_eq!(result, div_algebra::relation! { ["a", "c"] => [1, 10] });
    }
}
