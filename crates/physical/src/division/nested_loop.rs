//! Naive nested-loop division.
//!
//! For every quotient candidate (distinct `A`-value of the dividend) and every
//! divisor tuple, scan the dividend for a witness tuple. No preprocessing, no
//! auxiliary memory beyond the candidate list — and `O(|A| · |r2| · |r1|)`
//! probes, which is why the paper's cited algorithm studies treat it as the
//! baseline special-purpose operator.

use super::DivisionContext;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Tuple};
use div_expr::ExprError;

/// Execute the division by brute-force probing.
pub fn divide(
    ctx: &DivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let divisor_tuples = ctx.divisor_b_tuples(divisor);
    // Distinct quotient candidates.
    let candidates: Vec<Tuple> = {
        let mut c: Vec<Tuple> = dividend
            .tuples()
            .map(|t| t.project(&ctx.dividend_a))
            .collect();
        c.sort();
        c.dedup();
        c
    };

    let mut out = Relation::empty(ctx.output_schema.clone());
    let mut probes = 0usize;
    'candidates: for candidate in candidates {
        for required in &divisor_tuples {
            // Scan the dividend for a tuple matching (candidate, required).
            let mut found = false;
            for t in dividend.tuples() {
                probes += 1;
                if t.project(&ctx.dividend_a) == candidate
                    && &t.project(&ctx.dividend_b) == required
                {
                    found = true;
                    break;
                }
            }
            if !found {
                continue 'candidates;
            }
        }
        out.insert(candidate).map_err(ExprError::from)?;
    }
    stats.add_probes(probes);
    stats.record("NestedLoopDivision", out.len(), false, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::DivisionContext;
    use super::*;

    #[test]
    fn matches_reference_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, figure1_quotient());
        assert!(stats.probes > 0);
    }

    #[test]
    fn probe_count_grows_with_all_three_factors() {
        let (d1, v1) = synthetic(10, 4);
        let (d2, v2) = synthetic(20, 8);
        let ctx1 = DivisionContext::resolve(&d1, &v1).unwrap();
        let ctx2 = DivisionContext::resolve(&d2, &v2).unwrap();
        let mut s1 = ExecStats::default();
        let mut s2 = ExecStats::default();
        divide(&ctx1, &d1, &v1, &mut s1).unwrap();
        divide(&ctx2, &d2, &v2, &mut s2).unwrap();
        assert!(s2.probes > 4 * s1.probes, "{} vs {}", s2.probes, s1.probes);
    }
}
