//! Counting-based division.
//!
//! The indirect, aggregation-based strategy described by Graefe & Cole (TODS
//! 1995) and reproduced in footnote 1 of the paper:
//!
//! ```text
//! r1 ÷ r2 = π_A( Aγcount(B)→c(r1 ⋉ r2) ⋈ γcount(B)→c(r2) )
//! ```
//!
//! Semi-join the dividend with the divisor, count the surviving `B`-values per
//! quotient candidate, and keep the candidates whose count equals the divisor
//! cardinality. With set semantics the count comparison is exact.

use super::DivisionContext;
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Tuple};
use div_expr::ExprError;
use std::collections::{HashMap, HashSet};

/// Execute counting division.
pub fn divide(
    ctx: &DivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let divisor_set: HashSet<Tuple> = ctx.divisor_b_tuples(divisor).into_iter().collect();
    let divisor_size = divisor_set.len();

    // Semi-join + per-candidate counting in one pass.
    let mut counts: HashMap<Tuple, usize> = HashMap::new();
    let mut probes = 0usize;
    for t in dividend.tuples() {
        probes += 1;
        let a = t.project(&ctx.dividend_a);
        // Make sure every candidate appears even if nothing matches (needed
        // for the empty-divisor case where every candidate qualifies).
        let entry = counts.entry(a).or_insert(0);
        let b = t.project(&ctx.dividend_b);
        if divisor_set.contains(&b) {
            *entry += 1;
        }
    }
    stats.add_probes(probes);

    let mut out = Relation::empty(ctx.output_schema.clone());
    for (candidate, count) in counts {
        if count == divisor_size {
            out.insert(candidate).map_err(ExprError::from)?;
        }
    }
    stats.record("CountingDivision", out.len(), false, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::DivisionContext;
    use super::*;

    #[test]
    fn matches_reference_on_figure_1() {
        let dividend = figure1_dividend();
        let divisor = figure1_divisor();
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, figure1_quotient());
    }

    #[test]
    fn counts_are_not_fooled_by_extra_values() {
        // Candidate 1 has extra b-values outside the divisor; they must not
        // inflate its count.
        let dividend = div_algebra::relation! {
            ["a", "b"] =>
            [1, 7], [1, 8], [1, 1],
            [2, 1], [2, 3],
        };
        let divisor = div_algebra::relation! { ["b"] => [1], [3] };
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, div_algebra::relation! { ["a"] => [2] });
    }

    #[test]
    fn empty_divisor_keeps_every_candidate() {
        let dividend = figure1_dividend();
        let divisor = Relation::empty(div_algebra::Schema::of(["b"]));
        let ctx = DivisionContext::resolve(&dividend, &divisor).unwrap();
        let mut stats = ExecStats::default();
        let result = divide(&ctx, &dividend, &divisor, &mut stats).unwrap();
        assert_eq!(result, dividend.project(&["a"]).unwrap());
    }
}
