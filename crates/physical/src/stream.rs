//! The streaming (Volcano-style pull) executor: `open`/`next_batch`/`close`
//! operators over [`ColumnarBatch`] chunks.
//!
//! The materializing executors ([`crate::exec`], [`crate::columnar_exec`])
//! evaluate every operator on its *whole* input, so memory scales with the
//! largest intermediate result. This module compiles the same
//! [`PhysicalPlan`] into a tree of [`BatchStream`] operators instead —
//! the classic Volcano iterator protocol (Graefe), batch-at-a-time:
//!
//! * **scans** chunk base tables into batches of
//!   [`PlannerConfig::batch_size`] rows, lazily — an unconsumed stream never
//!   touches the rest of the table;
//! * **pipelining operators** (filter, project, rename, union, the
//!   nested-loop theta-join's probe side) transform one chunk at a time.
//!   Projection and union keep set semantics with a streaming distinct
//!   filter ([`div_columnar::StreamingDistinct`]) whose state is the
//!   distinct output, never the stream;
//! * **hash join / semi / anti** build their right side eagerly
//!   ([`div_columnar::kernels::JoinBuild`]) and stream the probe side
//!   through it chunk-at-a-time;
//! * **divide / great divide** materialize the divisor, then *consume* the
//!   dividend chunk-at-a-time into group-id-based coverage state
//!   ([`div_columnar::kernels::StreamingDivide`] /
//!   [`div_columnar::kernels::StreamingGreatDivide`]);
//!   only their output is a blocking boundary;
//! * **aggregation, intersection, difference and Cartesian product** remain
//!   explicit blocking boundaries: they buffer their inputs, run the batch
//!   kernel once, and re-chunk the result downstream.
//!
//! Statistics follow the discipline of the materializing executors (one
//! [`ExecStats::record`] per operator, scans into `rows_scanned`, the root
//! into `output_rows`, kernel probes into `probes`) — with one difference
//! that is the point of the design: an operator records what it *actually
//! did*, so a consumer that stops early (drop, `take(n)`) leaves
//! `rows_scanned` strictly below the table cardinality. In addition the
//! executor tracks every batch it materializes (in-flight chunks, blocking
//! buffers, build and distinct state — but not the scans' base tables,
//! which belong to the catalog) and reports the high-water mark as
//! [`ExecStats::peak_resident_batches`] / [`ExecStats::peak_resident_rows`]:
//! for a pipeline of streaming operators that peak is O(depth ×
//! batch_size), not O(table).
//!
//! Every operator additionally reports into the per-operator span tree of
//! [`crate::trace`] under its pre-order [`OperatorId`]: rows out, probes
//! and retained peaks always; wall-clock `open`/`next_batch`/`close` spans
//! when [`PlannerConfig::tracing`] is on (each operator is then wrapped in
//! a transparent `TimedStream` — the untraced path performs no clock
//! reads). The finished tree is published as [`ExecStats::operators`] by
//! [`StreamExecutor::finish`].

use crate::guard::QueryGuard;
use crate::plan::PhysicalPlan;
use crate::planner::PlannerConfig;
use crate::stats::ExecStats;
use crate::trace::{OperatorId, QueryTrace};
use crate::Result;
use div_algebra::{AlgebraError, Predicate, Relation, Schema, Tuple};
use div_columnar::kernels::{self, JoinBuild, KernelOutput, StreamingGreatDivide};
use div_columnar::{partition, Column, ColumnarBatch, StreamingDistinct};
use div_expr::{Catalog, ExprError};
use std::sync::Arc;
use std::time::Instant;

/// Shared per-execution state threaded through every operator call:
/// statistics, the per-operator trace, the configured chunk geometry, and
/// the resident-batch accounting behind [`ExecStats::peak_resident_rows`].
#[derive(Debug)]
pub struct StreamContext {
    /// The statistics being accumulated.
    pub stats: ExecStats,
    trace: QueryTrace,
    batch_size: usize,
    parallelism: usize,
    resident_rows: usize,
    resident_batches: usize,
    guard: QueryGuard,
}

impl StreamContext {
    fn new(plan: &PhysicalPlan, config: &PlannerConfig, guard: QueryGuard) -> StreamContext {
        StreamContext {
            stats: ExecStats::default(),
            trace: QueryTrace::from_plan(plan).with_timing(config.tracing),
            batch_size: config.batch_size.max(1),
            parallelism: config.parallelism.max(1),
            resident_rows: 0,
            resident_batches: 0,
            guard,
        }
    }

    /// The configured chunk size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Record kernel probes both in the aggregate and against the operator.
    pub(crate) fn add_probes(&mut self, id: OperatorId, probes: usize) {
        self.stats.add_probes(probes);
        self.trace.add_probes(id, probes);
    }

    /// Account for `rows` in `batches` newly materialized batches.
    pub(crate) fn acquire(&mut self, rows: usize, batches: usize) {
        self.resident_rows += rows;
        self.resident_batches += batches;
        self.stats
            .note_resident(self.resident_batches, self.resident_rows);
    }

    /// Account for the release of previously acquired batches.
    pub(crate) fn release(&mut self, rows: usize, batches: usize) {
        self.resident_rows = self.resident_rows.saturating_sub(rows);
        self.resident_batches = self.resident_batches.saturating_sub(batches);
    }

    /// Consult the query guard against the current resident footprint,
    /// attributing a trip to `label`.
    pub(crate) fn check_guard(&self, label: &str) -> Result<()> {
        self.guard.check(self.resident_rows, label)
    }

    /// Rows currently resident (in-flight chunks plus retained state).
    pub(crate) fn resident_rows(&self) -> usize {
        self.resident_rows
    }

    /// Attribute a transient retained-state peak to operator `id` in the
    /// trace (no accounting change — pair with explicit acquire/release).
    pub(crate) fn note_retained(&mut self, id: OperatorId, rows: usize) {
        self.trace.note_retained(id, rows);
    }

    /// The resident-row threshold at which spilling operators should start
    /// partitioning to disk (see [`QueryGuard::spill_budget`]).
    pub(crate) fn spill_threshold(&self) -> Option<usize> {
        self.guard.spill_budget()
    }
}

/// A pull-based operator yielding [`ColumnarBatch`] chunks.
///
/// The streaming counterpart of one [`PhysicalPlan`] node. An operator is
/// *opened* by construction ([`compile_stream`]), pulled with
/// [`BatchStream::next_batch`] until it returns `Ok(None)`, and *closed*
/// exactly once with [`BatchStream::close`] — which records the operator's
/// statistics (whatever it actually processed, which is the early-
/// termination contract) and releases retained state. Operators never emit
/// empty batches.
pub trait BatchStream: Send {
    /// The schema every emitted batch carries (known before execution).
    fn schema(&self) -> &Schema;

    /// Pull the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>>;

    /// Record statistics and release retained state; closes children.
    /// Idempotent.
    fn close(&mut self, ctx: &mut StreamContext);
}

/// Per-operator bookkeeping shared by every [`BatchStream`] implementation.
#[derive(Debug)]
pub(crate) struct OpMeta {
    pub(crate) id: OperatorId,
    pub(crate) label: String,
    emitted: usize,
    is_scan: bool,
    is_root: bool,
    pub(crate) closed: bool,
}

impl OpMeta {
    fn new(id: OperatorId, plan: &PhysicalPlan, is_root: bool) -> OpMeta {
        OpMeta {
            id,
            label: plan.label(),
            emitted: 0,
            is_scan: matches!(
                plan,
                PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. }
            ),
            is_root,
            closed: false,
        }
    }

    /// Account an emitted batch (acquiring it in the resident tracking) and
    /// pass it on — unless the query guard trips, in which case the batch
    /// is rolled back out of the accounting and the typed governance error
    /// propagates instead. This is the cooperative enforcement point: every
    /// operator's emissions funnel through here, so cancellation, deadline
    /// and budget are all observed within one batch boundary. The
    /// `{label}.next_batch` failpoint fires here too.
    pub(crate) fn emit(
        &mut self,
        ctx: &mut StreamContext,
        batch: ColumnarBatch,
    ) -> Result<Option<ColumnarBatch>> {
        crate::failpoint::hit(&self.label, "next_batch")?;
        let rows = batch.num_rows();
        self.emitted += rows;
        ctx.acquire(rows, 1);
        if let Err(err) = ctx.check_guard(&self.label) {
            ctx.release(rows, 1);
            self.emitted -= rows;
            return Err(err);
        }
        Ok(Some(batch))
    }

    /// Record this operator's row total once — in the aggregate stats and
    /// against its node in the operator trace.
    pub(crate) fn record(&mut self, ctx: &mut StreamContext) {
        if !self.closed {
            self.closed = true;
            // Close-site failpoints can only delay (close is infallible);
            // an armed error action is deliberately swallowed.
            let _ = crate::failpoint::hit(&self.label, "close");
            ctx.stats
                .record(&self.label, self.emitted, self.is_scan, self.is_root);
            ctx.trace.set_rows_out(self.id, self.emitted);
        }
    }
}

/// Release an input chunk after the operator is done with it.
pub(crate) fn consumed(ctx: &mut StreamContext, chunk: &ColumnarBatch) {
    ctx.release(chunk.num_rows(), 1);
}

/// Drain `child` completely and concatenate its chunks into one batch (the
/// blocking-boundary primitive). The chunks' resident accounting transfers
/// to the returned batch. `label` is the draining (parent) operator, which
/// the guard blames when the materialized buffer itself trips the budget —
/// the build-phase enforcement point of the blocking operators.
pub(crate) fn drain_to_batch(
    child: &mut Box<dyn BatchStream>,
    ctx: &mut StreamContext,
    label: &str,
) -> Result<ColumnarBatch> {
    let mut chunks = Vec::new();
    loop {
        match child.next_batch(ctx) {
            Ok(Some(chunk)) => chunks.push(chunk),
            Ok(None) => break,
            Err(err) => {
                // The chunks already accumulated were acquired by the
                // child's emissions; they die here, so their accounting
                // must be rolled back before the error propagates.
                for chunk in &chunks {
                    consumed(ctx, chunk);
                }
                return Err(err);
            }
        }
    }
    let schema = child.schema().clone();
    let batch = partition::concat_batches(&chunks).unwrap_or_else(|| ColumnarBatch::empty(schema));
    for chunk in &chunks {
        consumed(ctx, chunk);
    }
    ctx.acquire(batch.num_rows(), 1);
    if let Err(err) = ctx.check_guard(label) {
        ctx.release(batch.num_rows(), 1);
        return Err(err);
    }
    Ok(batch)
}

/// Serve a materialized batch downstream in `batch_size` chunks, releasing
/// it when exhausted.
#[derive(Debug, Default)]
pub(crate) struct ChunkCursor {
    batch: Option<ColumnarBatch>,
    pos: usize,
}

impl ChunkCursor {
    pub(crate) fn new(batch: ColumnarBatch) -> ChunkCursor {
        ChunkCursor {
            batch: Some(batch),
            pos: 0,
        }
    }

    /// The caller wraps every returned chunk in `OpMeta::emit`, which is
    /// where the chunk's acquire happens — this method only balances the
    /// *source* batch's accounting (including the whole-batch handover,
    /// whose creation-time acquire is released here so `emit`'s acquire
    /// does not double-count it).
    pub(crate) fn next(&mut self, ctx: &mut StreamContext) -> Option<ColumnarBatch> {
        let rows = self.batch.as_ref()?.num_rows();
        if self.pos >= rows {
            self.release(ctx);
            return None;
        }
        // Whole batch fits one chunk: hand it over instead of copying.
        if self.pos == 0 && rows <= ctx.batch_size {
            self.pos = rows;
            ctx.release(rows, 1);
            return self.batch.take();
        }
        let end = (self.pos + ctx.batch_size).min(rows);
        let indices: Vec<usize> = (self.pos..end).collect();
        let chunk = self.batch.as_ref()?.gather(&indices);
        self.pos = end;
        if self.pos >= rows {
            self.release(ctx);
        }
        Some(chunk)
    }

    pub(crate) fn release(&mut self, ctx: &mut StreamContext) {
        if let Some(batch) = self.batch.take() {
            ctx.release(batch.num_rows(), 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Source operators
// ---------------------------------------------------------------------------

/// Chunked scan over a base table: rows are converted to columnar chunks
/// lazily, so an early-terminated consumer never pays for the rest of the
/// table.
///
/// The scan holds a *shared snapshot handle* ([`Arc<Relation>`], from
/// [`Catalog::table_shared`]) instead of a borrow, which is what frees the
/// whole operator tree — and therefore `div_sql`'s `Cursor` — from the
/// catalog's lifetime: a concurrent catalog mutation swaps the table out of
/// the catalog, while this scan keeps streaming the snapshot it was
/// compiled against. Between chunks the scan remembers only the last tuple
/// emitted and re-enters the table's sorted tuple set in O(log n)
/// ([`Relation::tuples_after`]).
struct ScanStream {
    meta: OpMeta,
    schema: Schema,
    table: Arc<Relation>,
    /// Last tuple of the previous chunk — the resumption key. `None` before
    /// the first chunk.
    last: Option<Tuple>,
    done: bool,
}

impl ScanStream {
    fn new(meta: OpMeta, table: Arc<Relation>) -> ScanStream {
        ScanStream {
            meta,
            schema: table.schema().clone(),
            table,
            last: None,
            done: false,
        }
    }
}

impl BatchStream for ScanStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.done {
            return Ok(None);
        }
        let rows: Vec<&Tuple> = self
            .table
            .tuples_after(self.last.as_ref())
            .take(ctx.batch_size)
            .collect();
        if rows.is_empty() {
            self.done = true;
            return Ok(None);
        }
        if rows.len() < ctx.batch_size {
            self.done = true;
        }
        let columns: Vec<Column> = (0..self.schema.arity())
            .map(|c| Column::from_values(rows.iter().map(|t| &t.values()[c])))
            .collect();
        let chunk = ColumnarBatch::from_parts(self.schema.clone(), columns, rows.len());
        self.last = rows.last().map(|t| (*t).clone());
        self.meta.emit(ctx, chunk)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
    }
}

/// Chunked scan over an *attached* (file-backed) table: chunks stream
/// straight off disk through [`div_expr::ExternalScan`], so the table is
/// never materialized in memory — a file larger than the resident-row
/// budget flows through a pipeline of streaming operators chunk by chunk.
///
/// When a parent filter pushed its predicate down here, the file's
/// per-column zone maps let the cursor skip whole chunks that provably
/// cannot match; the skips are reported as [`ExecStats::chunks_skipped`].
/// Skipping is conservative (a surviving chunk may still contain
/// non-matching rows), so the parent filter always re-applies the
/// predicate.
struct ExternalScanStream {
    meta: OpMeta,
    schema: Schema,
    table: Arc<dyn div_expr::ExternalTable>,
    predicate: Option<Predicate>,
    /// Opened lazily on the first pull — compilation does no IO.
    scan: Option<Box<dyn div_expr::ExternalScan>>,
    /// Skips already added to the stats (the cursor reports a running
    /// total; the delta is folded in after every read).
    reported_skips: usize,
    done: bool,
}

impl ExternalScanStream {
    fn new(
        meta: OpMeta,
        table: Arc<dyn div_expr::ExternalTable>,
        predicate: Option<Predicate>,
    ) -> ExternalScanStream {
        ExternalScanStream {
            meta,
            schema: table.schema().clone(),
            table,
            predicate,
            scan: None,
            reported_skips: 0,
            done: false,
        }
    }

    fn note_skips(&mut self, ctx: &mut StreamContext) {
        if let Some(scan) = self.scan.as_ref() {
            let total = scan.chunks_skipped();
            ctx.stats.chunks_skipped += total - self.reported_skips;
            self.reported_skips = total;
        }
    }
}

impl BatchStream for ExternalScanStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.done {
            return Ok(None);
        }
        if self.scan.is_none() {
            self.scan = Some(self.table.open_scan(self.predicate.as_ref())?);
        }
        loop {
            let next = self.scan.as_mut().expect("opened above").next_chunk();
            self.note_skips(ctx);
            match next? {
                Some(chunk) if chunk.num_rows() > 0 => return self.meta.emit(ctx, chunk),
                Some(_) => continue,
                None => {
                    self.done = true;
                    return Ok(None);
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        // An early-terminated scan still reports the chunks it skipped.
        self.note_skips(ctx);
        self.meta.record(ctx);
    }
}

// ---------------------------------------------------------------------------
// Pipelining operators
// ---------------------------------------------------------------------------

/// Predicate filter: one chunk in, at most one chunk out. Honors
/// [`PlannerConfig::parallelism`] through the partition-parallel filter
/// kernel.
struct FilterStream {
    meta: OpMeta,
    child: Box<dyn BatchStream>,
    predicate: Predicate,
}

impl BatchStream for FilterStream {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        while let Some(chunk) = self.child.next_batch(ctx)? {
            let filtered = crate::parallel_columnar::parallel_filter_batches(
                &chunk,
                &self.predicate,
                ctx.parallelism,
            );
            consumed(ctx, &chunk);
            let out = filtered?;
            if out.num_rows() > 0 {
                return self.meta.emit(ctx, out);
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.child.close(ctx);
    }
}

/// Tracks the rows retained by a cross-chunk state object (distinct store,
/// divide groups, join build) in the resident accounting.
#[derive(Debug, Default)]
pub(crate) struct RetainedState {
    rows: usize,
    counted_batch: bool,
}

impl RetainedState {
    /// Grow the retained footprint to `rows` (monotone), attributing the
    /// peak to operator `id` in the trace.
    pub(crate) fn grow_to(&mut self, ctx: &mut StreamContext, id: OperatorId, rows: usize) {
        ctx.trace.note_retained(id, rows);
        if rows > self.rows {
            let batches = usize::from(!self.counted_batch && rows > 0);
            self.counted_batch |= batches > 0;
            ctx.acquire(rows - self.rows, batches);
            self.rows = rows;
        }
    }

    pub(crate) fn release(&mut self, ctx: &mut StreamContext) {
        ctx.release(self.rows, usize::from(self.counted_batch));
        self.rows = 0;
        self.counted_batch = false;
    }
}

/// Projection with *streaming* duplicate elimination: columns are cut per
/// chunk, and a cross-chunk distinct store keeps set semantics. Every
/// stream emits globally duplicate-free rows (scans read sets, and each
/// operator preserves or restores distinctness), so a projection that keeps
/// every input column cannot introduce duplicates and skips the store
/// entirely (`distinct` is `None`).
struct ProjectStream {
    meta: OpMeta,
    child: Box<dyn BatchStream>,
    schema: Schema,
    indices: Vec<usize>,
    distinct: Option<StreamingDistinct>,
    retained: RetainedState,
}

impl BatchStream for ProjectStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        while let Some(chunk) = self.child.next_batch(ctx)? {
            let projected = chunk.with_columns(self.schema.clone(), &self.indices);
            let fresh = match self.distinct.as_mut() {
                Some(distinct) => {
                    let fresh = distinct.push(&projected);
                    let retained_rows = distinct.len();
                    self.retained.grow_to(ctx, self.meta.id, retained_rows);
                    fresh
                }
                None => projected,
            };
            consumed(ctx, &chunk);
            if fresh.num_rows() > 0 {
                return self.meta.emit(ctx, fresh);
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.child.close(ctx);
    }
}

/// Attribute renaming: pure metadata, chunk through.
struct RenameStream {
    meta: OpMeta,
    child: Box<dyn BatchStream>,
    schema: Schema,
}

impl BatchStream for RenameStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        match self.child.next_batch(ctx)? {
            None => Ok(None),
            Some(chunk) => {
                // Genuinely metadata-only: reuse the chunk's column data
                // under the renamed schema, no copies. The chunk's resident
                // accounting transfers to the output, so balance it against
                // emit's acquire.
                consumed(ctx, &chunk);
                let (_, columns, rows) = chunk.into_parts();
                let out = ColumnarBatch::from_parts(self.schema.clone(), columns, rows);
                self.meta.emit(ctx, out)
            }
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.child.close(ctx);
    }
}

/// Set union: append both inputs chunk-at-a-time (right chunks conformed to
/// the left schema), with a cross-chunk distinct store for set semantics.
struct UnionStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Box<dyn BatchStream>,
    schema: Schema,
    distinct: StreamingDistinct,
    retained: RetainedState,
    left_done: bool,
}

impl BatchStream for UnionStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        loop {
            let (chunk, conform) = if !self.left_done {
                match self.left.next_batch(ctx)? {
                    Some(chunk) => (chunk, false),
                    None => {
                        self.left_done = true;
                        continue;
                    }
                }
            } else {
                match self.right.next_batch(ctx)? {
                    Some(chunk) => (chunk, true),
                    None => return Ok(None),
                }
            };
            // Only right-side chunks need a conforming copy; left chunks
            // feed the distinct store directly.
            let pushed = if conform {
                chunk
                    .conform_to(&self.schema)
                    .map(|aligned| self.distinct.push(&aligned))
            } else {
                Ok(self.distinct.push(&chunk))
            };
            consumed(ctx, &chunk);
            let fresh = pushed.map_err(ExprError::from)?;
            self.retained
                .grow_to(ctx, self.meta.id, self.distinct.len());
            if fresh.num_rows() > 0 {
                return self.meta.emit(ctx, fresh);
            }
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.left.close(ctx);
        self.right.close(ctx);
    }
}

// ---------------------------------------------------------------------------
// Build-probe operators: eager table side, streamed probe side
// ---------------------------------------------------------------------------

/// Which hash join a [`HashJoinStream`] evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamJoinKind {
    Natural,
    Semi,
    Anti,
}

/// Hash natural/semi/anti join: the right (build) side is drained eagerly
/// into a [`JoinBuild`]; the left (probe) side then streams through it one
/// chunk at a time.
struct HashJoinStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Option<Box<dyn BatchStream>>,
    kind: StreamJoinKind,
    schema: Schema,
    build: Option<JoinBuild>,
    retained: RetainedState,
}

impl HashJoinStream {
    fn ensure_build(&mut self, ctx: &mut StreamContext) -> Result<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut right = self.right.take().expect("build side compiled once");
        let batch = match drain_to_batch(&mut right, ctx, &self.meta.label) {
            Ok(batch) => batch,
            Err(err) => {
                // Put the child back so close() still tears down its
                // subtree (releasing any retained state it holds).
                self.right = Some(right);
                return Err(err);
            }
        };
        right.close(ctx);
        let rows = batch.num_rows();
        let build = match JoinBuild::new(self.left.schema(), batch) {
            Ok(build) => build,
            Err(err) => {
                ctx.release(rows, 1);
                return Err(ExprError::from(err));
            }
        };
        // The drained batch now lives inside the build; keep its accounting
        // under the retained state.
        ctx.release(rows, 1);
        self.retained.grow_to(ctx, self.meta.id, rows);
        self.build = Some(build);
        Ok(())
    }
}

impl BatchStream for HashJoinStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        self.ensure_build(ctx)?;
        let build = self.build.as_ref().expect("built above");
        while let Some(chunk) = self.left.next_batch(ctx)? {
            let probed = match self.kind {
                StreamJoinKind::Natural => build.probe_natural(&chunk),
                StreamJoinKind::Semi => build.probe_semi(&chunk, false),
                StreamJoinKind::Anti => build.probe_semi(&chunk, true),
            };
            // The probed chunk is finished with either way — release it
            // before a kernel error can propagate past its accounting.
            consumed(ctx, &chunk);
            let KernelOutput { batch, probes } = probed.map_err(ExprError::from)?;
            ctx.add_probes(self.meta.id, probes);
            if batch.num_rows() > 0 {
                return self.meta.emit(ctx, batch);
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.left.close(ctx);
        if let Some(right) = self.right.as_mut() {
            right.close(ctx);
        }
    }
}

/// Nested-loop theta-join: the right side is materialized once, the left
/// (probe) side streams through the theta-join kernel chunk-at-a-time.
struct ThetaJoinStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Option<Box<dyn BatchStream>>,
    predicate: Predicate,
    schema: Schema,
    right_batch: Option<ColumnarBatch>,
    retained: RetainedState,
}

impl BatchStream for ThetaJoinStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.right_batch.is_none() {
            let mut right = self.right.take().expect("right side compiled once");
            let batch = match drain_to_batch(&mut right, ctx, &self.meta.label) {
                Ok(batch) => batch,
                Err(err) => {
                    self.right = Some(right);
                    return Err(err);
                }
            };
            right.close(ctx);
            ctx.release(batch.num_rows(), 1);
            self.retained.grow_to(ctx, self.meta.id, batch.num_rows());
            self.right_batch = Some(batch);
        }
        let right = self.right_batch.as_ref().expect("materialized above");
        while let Some(chunk) = self.left.next_batch(ctx)? {
            let joined = kernels::theta_join(&chunk, right, &self.predicate);
            consumed(ctx, &chunk);
            let KernelOutput { batch, probes } = joined.map_err(ExprError::from)?;
            ctx.add_probes(self.meta.id, probes);
            if batch.num_rows() > 0 {
                return self.meta.emit(ctx, batch);
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.left.close(ctx);
        if let Some(right) = self.right.as_mut() {
            right.close(ctx);
        }
    }
}

/// Division: the divisor is materialized eagerly; the dividend is *consumed*
/// chunk-at-a-time into coverage state (memory ∝ quotient groups, never the
/// dividend). The quotient itself is only known at the end, so the output is
/// served from a [`ChunkCursor`] once the dividend is exhausted.
struct DivideStream {
    meta: OpMeta,
    dividend: Box<dyn BatchStream>,
    divisor: Option<Box<dyn BatchStream>>,
    great: bool,
    schema: Schema,
    out: Option<ChunkCursor>,
    retained: RetainedState,
    kernel_rows: Option<usize>,
}

impl DivideStream {
    fn kernel_label(&self) -> &'static str {
        if self.great {
            "ColumnarCountingGreatDivision"
        } else {
            "ColumnarHashDivision"
        }
    }
}

impl BatchStream for DivideStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.out.is_none() {
            // Build phase: materialize the divisor, then stream the whole
            // dividend through the coverage state.
            let mut divisor = self.divisor.take().expect("divisor compiled once");
            let divisor_batch = match drain_to_batch(&mut divisor, ctx, &self.meta.label) {
                Ok(batch) => batch,
                Err(err) => {
                    self.divisor = Some(divisor);
                    return Err(err);
                }
            };
            divisor.close(ctx);
            let divisor_rows = divisor_batch.num_rows();
            ctx.release(divisor_rows, 1);
            self.retained.grow_to(ctx, self.meta.id, divisor_rows);
            // `StreamingGreatDivide` degrades to the small divide exactly
            // when the divisor has no attributes of its own — which is the
            // planner's precondition for `PhysicalPlan::Divide` — so one
            // state type serves both division nodes; only the recorded
            // kernel label differs.
            let mut state = StreamingGreatDivide::new(self.dividend.schema(), divisor_batch)
                .map_err(ExprError::from)?;
            while let Some(chunk) = self.dividend.next_batch(ctx)? {
                let probes = state.consume(&chunk);
                ctx.add_probes(self.meta.id, probes);
                consumed(ctx, &chunk);
                self.retained
                    .grow_to(ctx, self.meta.id, divisor_rows + state.groups());
                // The coverage state itself can outgrow the budget even
                // though each consumed chunk passed its own check.
                ctx.check_guard(&self.meta.label)?;
            }
            let quotient = state.finish().map_err(ExprError::from)?;
            self.kernel_rows = Some(quotient.num_rows());
            self.retained.release(ctx);
            ctx.acquire(quotient.num_rows(), 1);
            self.out = Some(ChunkCursor::new(quotient));
        }
        let out = self.out.as_mut().expect("set above");
        match out.next(ctx) {
            Some(chunk) => self.meta.emit(ctx, chunk),
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        if !self.meta.closed {
            if let Some(rows) = self.kernel_rows {
                ctx.stats.record(self.kernel_label(), rows, false, false);
            }
        }
        self.meta.record(ctx);
        self.retained.release(ctx);
        if let Some(out) = self.out.as_mut() {
            out.release(ctx);
        }
        self.dividend.close(ctx);
        if let Some(divisor) = self.divisor.as_mut() {
            divisor.close(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking operators
// ---------------------------------------------------------------------------

/// Which fully blocking binary kernel a [`BlockingStream`] runs. The
/// Cartesian product is *not* here: its output is quadratic, so it gets the
/// incremental [`ProductStream`] whose emissions stay guard-checkable.
enum BlockingKind {
    Intersect,
    Difference,
    /// Unary aggregation (the `right` child is absent).
    Aggregate {
        group_by: Vec<String>,
        aggregates: Vec<div_algebra::AggregateCall>,
    },
}

/// An explicit blocking boundary: drain the input(s), run the batch kernel
/// once, serve the result in chunks.
struct BlockingStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Option<Box<dyn BatchStream>>,
    kind: BlockingKind,
    schema: Schema,
    out: Option<ChunkCursor>,
}

impl BatchStream for BlockingStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.out.is_none() {
            let left = drain_to_batch(&mut self.left, ctx, &self.meta.label)?;
            let right = match self.right.as_mut() {
                Some(right) => match drain_to_batch(right, ctx, &self.meta.label) {
                    Ok(batch) => Some(batch),
                    Err(err) => {
                        // The left side was already drained and acquired;
                        // roll it back before the error propagates.
                        ctx.release(left.num_rows(), 1);
                        return Err(err);
                    }
                },
                None => None,
            };
            let result = match (&self.kind, &right) {
                (BlockingKind::Intersect, Some(r)) => kernels::intersect(&left, r),
                (BlockingKind::Difference, Some(r)) => kernels::difference(&left, r),
                (
                    BlockingKind::Aggregate {
                        group_by,
                        aggregates,
                    },
                    None,
                ) => {
                    let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
                    kernels::hash_aggregate(&left, &refs, aggregates)
                }
                _ => unreachable!("blocking kind/arity mismatch is impossible by construction"),
            };
            let buffered = left.num_rows() + right.as_ref().map_or(0, ColumnarBatch::num_rows);
            ctx.release(left.num_rows(), 1);
            if let Some(r) = &right {
                ctx.release(r.num_rows(), 1);
            }
            let result = result.map_err(ExprError::from)?;
            ctx.trace
                .note_retained(self.meta.id, buffered + result.num_rows());
            ctx.acquire(result.num_rows(), 1);
            if let Err(err) = ctx.check_guard(&self.meta.label) {
                ctx.release(result.num_rows(), 1);
                return Err(err);
            }
            self.out = Some(ChunkCursor::new(result));
        }
        let out = self.out.as_mut().expect("set above");
        match out.next(ctx) {
            Some(chunk) => self.meta.emit(ctx, chunk),
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        if let Some(out) = self.out.as_mut() {
            out.release(ctx);
        }
        self.left.close(ctx);
        if let Some(right) = self.right.as_mut() {
            right.close(ctx);
        }
    }
}

/// Cartesian product served incrementally: both inputs are drained (they
/// are genuinely blocking — every pair must be formed), but the quadratic
/// *output* is produced one bounded slice at a time —
/// [`kernels::cross_product_slice`] crosses a few left rows against the
/// whole right side per call, sized so each emitted chunk is about
/// `batch_size` rows. A runaway product under a deadline or budget is
/// therefore stopped at the next batch boundary instead of after
/// materializing |L|·|R| rows, which is the whole point of the governance
/// layer.
struct ProductStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Option<Box<dyn BatchStream>>,
    schema: Schema,
    /// Drained `(left, right)` inputs, kept for the duration of the serve
    /// phase under `retained` accounting.
    inputs: Option<(ColumnarBatch, ColumnarBatch)>,
    /// Next left row to cross.
    pos: usize,
    retained: RetainedState,
    done: bool,
}

impl BatchStream for ProductStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.done {
            return Ok(None);
        }
        if self.inputs.is_none() {
            let left = drain_to_batch(&mut self.left, ctx, &self.meta.label)?;
            let mut right_child = self.right.take().expect("right side compiled once");
            let right = match drain_to_batch(&mut right_child, ctx, &self.meta.label) {
                Ok(batch) => batch,
                Err(err) => {
                    ctx.release(left.num_rows(), 1);
                    self.right = Some(right_child);
                    return Err(err);
                }
            };
            right_child.close(ctx);
            // Both inputs stay buffered while slices are served; move their
            // accounting under the retained state so a budget trip mid-serve
            // still drains to zero at close.
            ctx.release(left.num_rows(), 1);
            ctx.release(right.num_rows(), 1);
            self.retained
                .grow_to(ctx, self.meta.id, left.num_rows() + right.num_rows());
            self.inputs = Some((left, right));
        }
        let (left, right) = self.inputs.as_ref().expect("drained above");
        let (l_rows, r_rows) = (left.num_rows(), right.num_rows());
        if self.pos >= l_rows || r_rows == 0 {
            self.done = true;
            return Ok(None);
        }
        // Cross enough left rows that the chunk is about batch_size rows.
        let per_slice = (ctx.batch_size / r_rows.max(1)).max(1);
        let end = (self.pos + per_slice).min(l_rows);
        let chunk =
            kernels::cross_product_slice(left, self.pos..end, right).map_err(ExprError::from)?;
        self.pos = end;
        if self.pos >= l_rows {
            self.done = true;
        }
        self.meta.emit(ctx, chunk)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.inputs = None;
        self.left.close(ctx);
        if let Some(right) = self.right.as_mut() {
            right.close(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

fn schema_mismatch(left: &Schema, right: &Schema, operation: &'static str) -> ExprError {
    ExprError::from(AlgebraError::SchemaMismatch {
        left: left.to_string(),
        right: right.to_string(),
        operation,
    })
}

/// Compile a physical plan into a streaming operator tree rooted at a
/// [`BatchStream`]. Schema inference and validation happen here, before any
/// batch flows; the returned stream borrows the catalog's base tables (no
/// table is copied until its rows are actually pulled).
pub fn compile_stream(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> Result<Box<dyn BatchStream>> {
    // Standalone compilation (outside a `StreamExecutor`) discards the
    // open-phase spans; ids are still assigned so runtime attribution works.
    let mut trace = QueryTrace::from_plan(plan).with_timing(config.tracing);
    let mut next_id = 0;
    compile(plan, catalog, config, true, &mut trace, &mut next_id)
}

fn compile(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
    is_root: bool,
    trace: &mut QueryTrace,
    next_id: &mut usize,
) -> Result<Box<dyn BatchStream>> {
    compile_with_pushdown(plan, catalog, config, is_root, trace, next_id, None)
}

/// Like [`compile`], but with a predicate the *immediate* plan node may
/// push down — only the `TableScan` arm consumes it (handing it to an
/// attached table's zone-map-skipping scan); every other node ignores it,
/// so a pushdown never crosses more than one plan edge.
fn compile_with_pushdown(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
    is_root: bool,
    trace: &mut QueryTrace,
    next_id: &mut usize,
    pushdown: Option<&Predicate>,
) -> Result<Box<dyn BatchStream>> {
    // Ids are assigned at entry of this pre-order walk, so they match the
    // skeleton [`QueryTrace::from_plan`] built from the same plan.
    let id = OperatorId(*next_id);
    *next_id += 1;
    let meta = OpMeta::new(id, plan, is_root);
    crate::failpoint::hit(&meta.label, "open")?;
    let opened = trace.span_start();
    let stream = compile_node(plan, catalog, config, meta, trace, next_id, pushdown)?;
    if let Some(started) = opened {
        // Inclusive of the children compiled inside `compile_node`.
        trace.add_open(id, started.elapsed());
        return Ok(Box::new(TimedStream { id, inner: stream }));
    }
    Ok(stream)
}

fn compile_node(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
    meta: OpMeta,
    trace: &mut QueryTrace,
    next_id: &mut usize,
    pushdown: Option<&Predicate>,
) -> Result<Box<dyn BatchStream>> {
    // Spilling variants are compiled only when the configuration both asks
    // for them and arms the budget they spill against; otherwise the plain
    // operators run (and the budget, if any, aborts).
    let spill = config.spill_to_disk && config.memory_budget_rows.is_some();
    Ok(match plan {
        PhysicalPlan::TableScan { table } => match catalog.external(table) {
            Some(external) => Box::new(ExternalScanStream::new(meta, external, pushdown.cloned())),
            None => Box::new(ScanStream::new(meta, catalog.table_shared(table)?)),
        },
        PhysicalPlan::Values { relation } => {
            // Inline constants are owned by the plan, which does not outlive
            // compilation — materialize them as one pre-chunked cursor-less
            // scan over an owned batch instead.
            Box::new(ValuesStream {
                meta,
                schema: relation.schema().clone(),
                batch: ColumnarBatch::from_relation(relation),
                pos: 0,
            })
        }
        PhysicalPlan::Filter { input, predicate } => Box::new(FilterStream {
            meta,
            // The filter's own predicate is offered to its child as a
            // pushdown (consumed only by attached-table scans, whose zone
            // maps may then skip whole chunks). The filter still re-applies
            // the predicate — chunk skipping is conservative, not exact.
            child: compile_with_pushdown(
                input,
                catalog,
                config,
                false,
                trace,
                next_id,
                Some(predicate),
            )?,
            predicate: predicate.clone(),
        }),
        PhysicalPlan::Project { input, attributes } => {
            let child = compile(input, catalog, config, false, trace, next_id)?;
            let refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            let schema = child.schema().project(&refs).map_err(ExprError::from)?;
            let indices = child
                .schema()
                .projection_indices(&refs)
                .map_err(ExprError::from)?;
            // A projection that keeps every column (in any order) of a
            // duplicate-free stream stays duplicate-free — only a narrowing
            // projection needs the distinct store.
            let distinct = (indices.len() < child.schema().arity())
                .then(|| StreamingDistinct::new(schema.clone()));
            Box::new(ProjectStream {
                meta,
                child,
                distinct,
                schema,
                indices,
                retained: RetainedState::default(),
            })
        }
        PhysicalPlan::Rename { input, renames } => {
            let child = compile(input, catalog, config, false, trace, next_id)?;
            let schema = child
                .schema()
                .rename_with(|name| {
                    renames
                        .iter()
                        .find(|(from, _)| from == name)
                        .map(|(_, to)| to.clone())
                        .unwrap_or_else(|| name.to_string())
                })
                .map_err(ExprError::from)?;
            Box::new(RenameStream {
                meta,
                child,
                schema,
            })
        }
        PhysicalPlan::Union { left, right } => {
            let left = compile(left, catalog, config, false, trace, next_id)?;
            let right = compile(right, catalog, config, false, trace, next_id)?;
            if !left.schema().is_compatible_with(right.schema()) {
                return Err(schema_mismatch(left.schema(), right.schema(), "union"));
            }
            let schema = left.schema().clone();
            Box::new(UnionStream {
                meta,
                left,
                right,
                distinct: StreamingDistinct::new(schema.clone()),
                schema,
                retained: RetainedState::default(),
                left_done: false,
            })
        }
        PhysicalPlan::Intersect { left, right } | PhysicalPlan::Difference { left, right } => {
            let (kind, operation) = if matches!(plan, PhysicalPlan::Intersect { .. }) {
                (BlockingKind::Intersect, "intersection")
            } else {
                (BlockingKind::Difference, "difference")
            };
            let left = compile(left, catalog, config, false, trace, next_id)?;
            let right = compile(right, catalog, config, false, trace, next_id)?;
            if !left.schema().is_compatible_with(right.schema()) {
                return Err(schema_mismatch(left.schema(), right.schema(), operation));
            }
            let schema = left.schema().clone();
            Box::new(BlockingStream {
                meta,
                left,
                right: Some(right),
                kind,
                schema,
                out: None,
            })
        }
        PhysicalPlan::CrossProduct { left, right } => {
            let left = compile(left, catalog, config, false, trace, next_id)?;
            let right = compile(right, catalog, config, false, trace, next_id)?;
            let schema = left
                .schema()
                .concat(right.schema())
                .map_err(ExprError::from)?;
            Box::new(ProductStream {
                meta,
                left,
                right: Some(right),
                schema,
                inputs: None,
                pos: 0,
                retained: RetainedState::default(),
                done: false,
            })
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left = compile(left, catalog, config, false, trace, next_id)?;
            let right = compile(right, catalog, config, false, trace, next_id)?;
            let schema = left
                .schema()
                .concat(right.schema())
                .map_err(ExprError::from)?;
            Box::new(ThetaJoinStream {
                meta,
                left,
                right: Some(right),
                predicate: predicate.clone(),
                schema,
                right_batch: None,
                retained: RetainedState::default(),
            })
        }
        PhysicalPlan::HashJoin { left, right }
        | PhysicalPlan::HashSemiJoin { left, right }
        | PhysicalPlan::HashAntiSemiJoin { left, right } => {
            let kind = match plan {
                PhysicalPlan::HashJoin { .. } => StreamJoinKind::Natural,
                PhysicalPlan::HashSemiJoin { .. } => StreamJoinKind::Semi,
                _ => StreamJoinKind::Anti,
            };
            let left = compile(left, catalog, config, false, trace, next_id)?;
            let right = compile(right, catalog, config, false, trace, next_id)?;
            let schema = match kind {
                StreamJoinKind::Natural => left.schema().natural_union(right.schema()),
                _ => left.schema().clone(),
            };
            if spill {
                Box::new(crate::stream_spill::SpillingHashJoinStream::new(
                    meta, left, right, kind, schema,
                ))
            } else {
                Box::new(HashJoinStream {
                    meta,
                    left,
                    right: Some(right),
                    kind,
                    schema,
                    build: None,
                    retained: RetainedState::default(),
                })
            }
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let child = compile(input, catalog, config, false, trace, next_id)?;
            let mut names: Vec<String> = group_by.clone();
            for agg in aggregates {
                child
                    .schema()
                    .require(&agg.input)
                    .map_err(ExprError::from)?;
                names.push(agg.output.clone());
            }
            // Validate the grouping attributes too.
            child
                .schema()
                .projection_indices(&group_by.iter().map(String::as_str).collect::<Vec<_>>())
                .map_err(ExprError::from)?;
            let schema = Schema::new(names).map_err(ExprError::from)?;
            // An aggregation without grouping attributes has nothing to
            // partition on (every row belongs to the one global group), so
            // it stays a plain blocking boundary even in spill mode.
            if spill && !group_by.is_empty() {
                Box::new(crate::stream_spill::SpillingAggregateStream::new(
                    meta,
                    child,
                    group_by.clone(),
                    aggregates.clone(),
                    schema,
                ))
            } else {
                Box::new(BlockingStream {
                    meta,
                    left: child,
                    right: None,
                    kind: BlockingKind::Aggregate {
                        group_by: group_by.clone(),
                        aggregates: aggregates.clone(),
                    },
                    schema,
                    out: None,
                })
            }
        }
        PhysicalPlan::Divide {
            dividend, divisor, ..
        }
        | PhysicalPlan::GreatDivide {
            dividend, divisor, ..
        } => {
            let great = matches!(plan, PhysicalPlan::GreatDivide { .. });
            let dividend = compile(dividend, catalog, config, false, trace, next_id)?;
            let divisor = compile(divisor, catalog, config, false, trace, next_id)?;
            let schema = if great {
                kernels::great_quotient_schema(dividend.schema(), divisor.schema())
            } else {
                kernels::quotient_schema(dividend.schema(), divisor.schema())
            }
            .map_err(ExprError::from)?;
            if spill {
                Box::new(crate::stream_spill::SpillingDivideStream::new(
                    meta, dividend, divisor, great, schema,
                ))
            } else {
                Box::new(DivideStream {
                    meta,
                    dividend,
                    divisor: Some(divisor),
                    great,
                    schema,
                    out: None,
                    retained: RetainedState::default(),
                    kernel_rows: None,
                })
            }
        }
    })
}

/// Transparent timing wrapper installed around every operator when
/// [`PlannerConfig::tracing`] is on: one `Instant` pair per `next_batch` /
/// `close` call (never per row), accumulated into the operator's trace
/// node. Spans are inclusive — children run inside the wrapped call — and
/// the untraced path never constructs this type, so plain executions pay
/// no clock reads at all.
struct TimedStream {
    id: OperatorId,
    inner: Box<dyn BatchStream>,
}

impl BatchStream for TimedStream {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        let started = Instant::now();
        let out = self.inner.next_batch(ctx);
        ctx.trace.add_next(self.id, started.elapsed());
        out
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        let started = Instant::now();
        self.inner.close(ctx);
        ctx.trace.add_close(self.id, started.elapsed());
    }
}

/// Owned-batch variant of [`ScanStream`] for inline `Values` relations.
struct ValuesStream {
    meta: OpMeta,
    schema: Schema,
    batch: ColumnarBatch,
    pos: usize,
}

impl BatchStream for ValuesStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.pos >= self.batch.num_rows() {
            return Ok(None);
        }
        let end = (self.pos + ctx.batch_size).min(self.batch.num_rows());
        let indices: Vec<usize> = (self.pos..end).collect();
        let chunk = self.batch.gather(&indices);
        self.pos = end;
        self.meta.emit(ctx, chunk)
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
    }
}

// ---------------------------------------------------------------------------
// The executor facade
// ---------------------------------------------------------------------------

/// A compiled streaming execution: pull batches with
/// [`StreamExecutor::next_batch`], then call [`StreamExecutor::finish`] for
/// the statistics. Dropping the executor early (or simply not pulling
/// further) short-circuits every upstream operator — scans never touch the
/// rows nobody asked for.
///
/// This is the engine room of `div_sql`'s `Cursor`; use it directly when
/// working below the SQL layer:
///
/// ```
/// use div_expr::{Catalog, PlanBuilder};
/// use div_physical::{plan_query, PlannerConfig, StreamExecutor};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "supplies",
///     div_algebra::relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] },
/// );
/// let logical = PlanBuilder::scan("supplies").project(["s#"]).build();
/// let config = PlannerConfig::default().batch_size(2);
/// let plan = plan_query(&logical, &config)?;
/// let mut stream = StreamExecutor::new(&plan, &catalog, &config)?;
/// let mut rows = 0;
/// while let Some(batch) = stream.next_batch()? {
///     rows += batch.num_rows();
/// }
/// let stats = stream.finish();
/// assert_eq!(rows, 2);
/// assert_eq!(stats.output_rows, 2);
/// assert_eq!(stats.rows_scanned, 3);
/// # Ok::<(), div_expr::ExprError>(())
/// ```
pub struct StreamExecutor {
    root: Box<dyn BatchStream>,
    ctx: StreamContext,
    schema: Schema,
    exhausted: bool,
    last_emitted: usize,
}

impl StreamExecutor {
    /// Compile `plan` into a streaming operator tree over `catalog`.
    ///
    /// Schema inference and validation run here; execution starts with the
    /// first [`StreamExecutor::next_batch`] call.
    pub fn new(
        plan: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
    ) -> Result<StreamExecutor> {
        StreamExecutor::with_guard(plan, catalog, config, QueryGuard::from_config(config))
    }

    /// Like [`StreamExecutor::new`], but with an explicit [`QueryGuard`] —
    /// the hook for attaching a [`crate::guard::CancelToken`] or a guard
    /// whose deadline was armed by a caller (e.g. a serving session)
    /// rather than derived from the config at compile time.
    pub fn with_guard(
        plan: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
        guard: QueryGuard,
    ) -> Result<StreamExecutor> {
        let mut ctx = StreamContext::new(plan, config, guard);
        let mut next_id = 0;
        let root = compile(plan, catalog, config, true, &mut ctx.trace, &mut next_id)?;
        let schema = root.schema().clone();
        Ok(StreamExecutor {
            root,
            ctx,
            schema,
            exhausted: false,
            last_emitted: 0,
        })
    }

    /// The result schema (available before any batch is pulled).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Pull the next non-empty result batch, or `None` once the stream is
    /// exhausted. After an error the stream is fused (returns `None`).
    pub fn next_batch(&mut self) -> Result<Option<ColumnarBatch>> {
        if self.exhausted {
            return Ok(None);
        }
        // The batch handed out previously has left the pipeline.
        self.ctx
            .release(self.last_emitted, usize::from(self.last_emitted > 0));
        self.last_emitted = 0;
        match self.root.next_batch(&mut self.ctx) {
            Ok(Some(batch)) => {
                self.last_emitted = batch.num_rows();
                Ok(Some(batch))
            }
            Ok(None) => {
                self.exhausted = true;
                Ok(None)
            }
            Err(err) => {
                self.exhausted = true;
                Err(err)
            }
        }
    }

    /// The statistics accumulated so far (operator totals are only recorded
    /// on [`StreamExecutor::finish`]).
    pub fn stats(&self) -> &ExecStats {
        &self.ctx.stats
    }

    /// Close the operator tree (recording every operator's totals — the
    /// rows each operator *actually* processed, which for an
    /// early-terminated stream is less than the full input), finalize the
    /// per-operator span tree into [`ExecStats::operators`], and return the
    /// statistics.
    pub fn finish(mut self) -> ExecStats {
        // The batch handed out last has left the pipeline (its rows belong
        // to the consumer now), exactly as in `next_batch`.
        self.ctx
            .release(self.last_emitted, usize::from(self.last_emitted > 0));
        self.last_emitted = 0;
        self.root.close(&mut self.ctx);
        self.ctx.stats.resident_rows_on_finish = self.ctx.resident_rows;
        self.ctx.stats.operators = self.ctx.trace.finish();
        self.ctx.stats
    }
}

impl std::fmt::Debug for StreamExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamExecutor")
            .field("schema", &self.schema)
            .field("exhausted", &self.exhausted)
            .field("stats", &self.ctx.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_with_stats;
    use crate::guard::CancelToken;
    use crate::planner::plan_query;
    #[cfg(feature = "failpoints")]
    use crate::FailAction;
    use div_algebra::{relation, AggregateCall, CompareOp};
    use div_expr::PlanBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    fn collect(stream: &mut StreamExecutor) -> Relation {
        let mut out = Relation::empty(stream.schema().clone());
        while let Some(batch) = stream.next_batch().unwrap() {
            for i in 0..batch.num_rows() {
                out.insert(batch.row(i)).unwrap();
            }
        }
        out
    }

    #[test]
    fn streamed_q2_matches_the_row_backend_including_stats_totals() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(div_algebra::Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        for batch_size in [1, 2, 1024] {
            let config = PlannerConfig::default().batch_size(batch_size);
            let plan = plan_query(&logical, &config).unwrap();
            let (expected, row_stats) = execute_with_stats(&plan, &c).unwrap();
            let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
            let got = collect(&mut stream);
            let stats = stream.finish();
            assert_eq!(got, expected, "batch_size {batch_size}");
            assert_eq!(stats.output_rows, row_stats.output_rows);
            assert_eq!(stats.rows_scanned, row_stats.rows_scanned);
            assert!(stats.rows_per_operator.contains_key("ColumnarHashDivision"));
            assert!(stats.peak_resident_batches > 0);
        }
    }

    #[test]
    fn early_termination_short_circuits_the_scan() {
        let mut c = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..10_000).map(|i| vec![i, i % 7]).collect();
        c.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
        let logical = PlanBuilder::scan("big")
            .select(div_algebra::Predicate::cmp_value("b", CompareOp::LtEq, 6))
            .build();
        let config = PlannerConfig::default().batch_size(64);
        let plan = plan_query(&logical, &config).unwrap();
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        let first = stream.next_batch().unwrap().expect("at least one batch");
        assert!(first.num_rows() > 0);
        let stats = stream.finish();
        assert!(
            stats.rows_scanned < 10_000,
            "scan must stop short, scanned {}",
            stats.rows_scanned
        );
        assert_eq!(stats.rows_scanned, 64);
    }

    #[test]
    fn deep_pipeline_keeps_peak_resident_rows_bounded_by_batch_size() {
        // The satellite pin: a filter/project pipeline over a chunked scan
        // holds O(batch_size) rows, not O(table). Depth 4 pipeline
        // (scan → filter → filter → project) over 20k rows, batch 256:
        // resident = a few in-flight chunks + the distinct store (7 rows).
        let mut c = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..20_000).map(|i| vec![i, i % 7]).collect();
        c.register("big", Relation::from_rows(["a", "b"], rows).unwrap());
        let logical = PlanBuilder::scan("big")
            .select(div_algebra::Predicate::cmp_value("a", CompareOp::GtEq, 0))
            .select(div_algebra::Predicate::cmp_value("b", CompareOp::LtEq, 6))
            .project(["b"])
            .build();
        let config = PlannerConfig::default().batch_size(256);
        let plan = plan_query(&logical, &config).unwrap();
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        let got = collect(&mut stream);
        assert_eq!(got.len(), 7);
        let stats = stream.finish();
        assert_eq!(stats.output_rows, 7);
        assert_eq!(stats.rows_scanned, 20_000);
        assert!(
            stats.peak_resident_rows <= 8 * 256,
            "peak {} must be O(batch_size), table is 20000 rows",
            stats.peak_resident_rows
        );
        // The materializing executor, by contrast, holds a full-table
        // intermediate.
        let (_, row_stats) = execute_with_stats(&plan, &c).unwrap();
        assert!(row_stats.max_intermediate >= 20_000);
    }

    #[test]
    fn every_operator_shape_streams_identically_to_the_row_backend() {
        let c = catalog();
        let shapes = vec![
            PlanBuilder::scan("supplies")
                .natural_join(PlanBuilder::scan("parts"))
                .build(),
            PlanBuilder::scan("supplies")
                .semi_join(PlanBuilder::scan("parts"))
                .union(PlanBuilder::scan("supplies").anti_semi_join(PlanBuilder::scan("parts")))
                .build(),
            PlanBuilder::scan("supplies")
                .rename([("p#", "x")])
                .difference(PlanBuilder::values(relation! { ["s#", "x"] => [1, 1] }))
                .build(),
            PlanBuilder::scan("supplies")
                .intersect(
                    PlanBuilder::scan("supplies").select(div_algebra::Predicate::cmp_value(
                        "p#",
                        CompareOp::Lt,
                        3,
                    )),
                )
                .build(),
            PlanBuilder::scan("parts")
                .project(["p#"])
                .rename([("p#", "x")])
                .product(
                    PlanBuilder::scan("parts")
                        .project(["p#"])
                        .rename([("p#", "y")]),
                )
                .build(),
            PlanBuilder::scan("supplies")
                .theta_join(
                    PlanBuilder::scan("parts")
                        .rename([("p#", "q")])
                        .project(["q"]),
                    div_algebra::Predicate::cmp_attrs("p#", CompareOp::Lt, "q"),
                )
                .build(),
            PlanBuilder::scan("supplies")
                .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
                .build(),
            PlanBuilder::scan("supplies")
                .great_divide(PlanBuilder::scan("parts"))
                .build(),
        ];
        for logical in shapes {
            for batch_size in [1, 3, 1024] {
                let config = PlannerConfig::default().batch_size(batch_size);
                let plan = plan_query(&logical, &config).unwrap();
                let (expected, row_stats) = execute_with_stats(&plan, &c).unwrap();
                let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
                let got = collect(&mut stream);
                let stats = stream.finish();
                assert_eq!(got, expected, "batch_size {batch_size} plan:\n{plan}");
                assert_eq!(
                    stats.output_rows, row_stats.output_rows,
                    "batch_size {batch_size} plan:\n{plan}"
                );
                assert_eq!(
                    stats.rows_scanned, row_stats.rows_scanned,
                    "batch_size {batch_size} plan:\n{plan}"
                );
            }
        }
    }

    #[test]
    fn compile_errors_surface_before_execution() {
        let c = catalog();
        let missing = PhysicalPlan::TableScan {
            table: "nope".into(),
        };
        assert!(StreamExecutor::new(&missing, &c, &PlannerConfig::default()).is_err());
        // A small divide whose divisor attribute is not in the dividend is
        // rejected at compile time, before any batch flows.
        let bad_divide = PhysicalPlan::Divide {
            dividend: Box::new(PhysicalPlan::TableScan {
                table: "supplies".into(),
            }),
            divisor: Box::new(PhysicalPlan::TableScan {
                table: "parts".into(),
            }),
            algorithm: crate::division::DivisionAlgorithm::HashDivision,
        };
        assert!(StreamExecutor::new(&bad_divide, &c, &PlannerConfig::default()).is_err());
    }

    #[test]
    fn schema_is_known_before_execution_and_empty_results_keep_it() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .select(div_algebra::Predicate::cmp_value("s#", CompareOp::Gt, 99))
            .project(["s#"])
            .build();
        let config = PlannerConfig::default();
        let plan = plan_query(&logical, &config).unwrap();
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        assert_eq!(stream.schema().names(), vec!["s#"]);
        assert!(stream.next_batch().unwrap().is_none());
        let stats = stream.finish();
        assert_eq!(stats.output_rows, 0);
    }

    /// A big self-product: |big| × |big| = 4M output rows, the runaway shape
    /// governance exists to stop.
    fn runaway_product() -> (Catalog, div_expr::LogicalPlan) {
        let mut c = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..2_000).map(|i| vec![i]).collect();
        c.register("big", Relation::from_rows(["a"], rows.clone()).unwrap());
        c.register("big2", Relation::from_rows(["b"], rows).unwrap());
        let logical = PlanBuilder::scan("big")
            .product(PlanBuilder::scan("big2"))
            .build();
        (c, logical)
    }

    fn drain_to_error(stream: &mut StreamExecutor) -> ExprError {
        loop {
            match stream.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream finished without tripping the guard"),
                Err(err) => return err,
            }
        }
    }

    #[test]
    fn cancellation_aborts_mid_drain_and_residency_drains_to_zero() {
        let (c, logical) = runaway_product();
        let config = PlannerConfig::default().batch_size(64);
        let plan = plan_query(&logical, &config).unwrap();
        let token = CancelToken::new();
        let guard = QueryGuard::default().with_token(token.clone());
        let mut stream = StreamExecutor::with_guard(&plan, &c, &config, guard).unwrap();
        assert!(stream.next_batch().unwrap().is_some(), "runs until tripped");
        token.cancel();
        let err = drain_to_error(&mut stream);
        assert!(matches!(err, ExprError::Cancelled { .. }), "got {err}");
        // Fused after the error, and teardown releases every resident row.
        assert!(stream.next_batch().unwrap().is_none());
        let stats = stream.finish();
        assert_eq!(stats.resident_rows_on_finish, 0);
    }

    #[test]
    fn deadline_aborts_within_one_batch_boundary() {
        let (c, logical) = runaway_product();
        let config = PlannerConfig::default()
            .batch_size(64)
            .deadline(std::time::Duration::from_millis(50));
        let plan = plan_query(&logical, &config).unwrap();
        let started = std::time::Instant::now();
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        let err = drain_to_error(&mut stream);
        assert!(
            matches!(err, ExprError::DeadlineExceeded { limit_ms: 50, .. }),
            "got {err}"
        );
        // 4M-row product at batch 64 takes far longer than 50ms; the trip
        // must come within one batch of the deadline, not at the end.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "took {:?}",
            started.elapsed()
        );
        let stats = stream.finish();
        assert_eq!(stats.resident_rows_on_finish, 0);
    }

    #[test]
    fn memory_budget_aborts_the_blocking_build_and_reports_the_operator() {
        let (c, logical) = runaway_product();
        // Budget below the drained input size: the product's buffered
        // inputs (2000 + 2000 rows) blow the 1000-row budget during build.
        let config = PlannerConfig::default()
            .batch_size(64)
            .memory_budget_rows(1_000);
        let plan = plan_query(&logical, &config).unwrap();
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        let err = drain_to_error(&mut stream);
        match err {
            ExprError::MemoryBudget {
                operator,
                budget_rows,
                resident_rows,
            } => {
                assert_eq!(budget_rows, 1_000);
                assert!(resident_rows > 1_000);
                assert!(!operator.is_empty());
            }
            other => panic!("expected MemoryBudget, got {other}"),
        }
        let stats = stream.finish();
        assert_eq!(stats.resident_rows_on_finish, 0);
    }

    #[test]
    fn governed_but_untripped_stream_matches_the_ungoverned_result() {
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .build();
        let ungoverned = PlannerConfig::default().batch_size(2);
        let governed = ungoverned
            .deadline(std::time::Duration::from_secs(60))
            .memory_budget_rows(1_000_000);
        let plan = plan_query(&logical, &ungoverned).unwrap();
        let mut base = StreamExecutor::new(&plan, &c, &ungoverned).unwrap();
        let expected = collect(&mut base);
        let mut stream = StreamExecutor::new(&plan, &c, &governed).unwrap();
        let got = collect(&mut stream);
        assert_eq!(got, expected);
        assert_eq!(stream.finish().resident_rows_on_finish, 0);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn failpoint_error_mid_stream_leaves_no_resident_rows() {
        let _serial = crate::failpoint::test_serial();
        crate::failpoint::disarm_all();
        let c = catalog();
        let logical = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .build();
        let config = PlannerConfig::default().batch_size(2);
        let plan = plan_query(&logical, &config).unwrap();
        crate::failpoint::arm("HashJoin.next_batch", FailAction::Error("chaos".into()));
        let mut stream = StreamExecutor::new(&plan, &c, &config).unwrap();
        let err = drain_to_error(&mut stream);
        crate::failpoint::disarm_all();
        assert!(err.to_string().contains("failpoint HashJoin.next_batch"));
        let stats = stream.finish();
        assert_eq!(stats.resident_rows_on_finish, 0);
    }
}
