//! Partition-parallel execution of the columnar kernels.
//!
//! This is the marriage of the paper's two parallelization laws with the
//! batch kernels of [`div_columnar`]:
//!
//! * **Law 2 + condition `c2`** (Section 5.1.1): [`parallel_divide_batches`]
//!   hash-partitions the *dividend* on the quotient attributes `A`. The
//!   partitions' quotient prefixes are disjoint by construction, so each
//!   partition is divided independently by
//!   [`kernels::hash_divide`](div_columnar::kernels::hash_divide()) on its own
//!   thread and the partial quotients are concatenated — the union of Law 2
//!   degenerates to a concatenation because the partitions cannot produce a
//!   common quotient row.
//! * **Law 13** (Section 5.2.1): [`parallel_great_divide_batches`]
//!   hash-partitions the *divisor* on the group attributes `C` and runs the
//!   great divide of the shared dividend against every divisor slice
//!   concurrently. Disjoint `C` partitions cannot produce a common
//!   `(A, C)` output row, so the merge is again a concatenation.
//!
//! The same partition-and-concatenate scheme extends to the other
//! partitionable kernels: the hash-join family partitions **both** inputs by
//! the join key ([`parallel_join_batches`]), and filters split their input
//! into arbitrary row ranges ([`parallel_filter_batches`]) since predicate
//! evaluation is row-local.
//!
//! Partitioning and the per-partition kernels share one key normalization:
//! [`hash_partition_keyed`] returns the [`KeyVector`] it routed each
//! partition's rows with, and the kernels' `_prehashed` entry points
//! consume those codes directly — a partition-parallel run hashes each row
//! once, not twice.
//!
//! Worker threads are crossbeam scoped threads (standing in for the query
//! engine nodes of Section 5.2.1); results are merged in partition order so
//! the output is deterministic, and probe counts sum over the workers. For
//! the dividend-partitioned strategies (Law 2, joins, filters) the summed
//! probes equal the sequential count — partitions see disjoint row sets. For
//! Law 13 the dividend is *replicated* to every worker, exactly as in the
//! paper's cluster setup, so total probes grow to
//! `nonempty_partitions × |dividend|` while wall-clock time drops to roughly
//! `1/partitions`.

use crate::Result;
use div_algebra::Predicate;
use div_columnar::kernels::{self, KernelOutput};
use div_columnar::partition::{concat_batches, hash_partition_keyed, split_even};
use div_columnar::{ColumnarBatch, KeyVector};
use div_expr::ExprError;

/// The join kinds [`parallel_join_batches`] can partition-parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Hash natural join on all common attributes.
    Natural,
    /// Hash left semi-join.
    Semi,
    /// Hash left anti-semi-join.
    Anti,
}

/// Run `task` over `inputs` on one scoped thread per input, preserving input
/// order in the output (the join handles are collected in spawn order). The
/// first worker error (in partition order) wins.
fn run_partitioned<I, O>(
    inputs: Vec<I>,
    task: impl Fn(&I) -> div_columnar::Result<O> + Sync,
) -> Result<Vec<O>>
where
    I: Sync,
    O: Send,
{
    let outcomes: Vec<div_columnar::Result<O>> = crossbeam::scope(|scope| {
        let task = &task;
        let handles: Vec<_> = inputs
            .iter()
            .map(|input| scope.spawn(move |_| task(input)))
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("partition worker threads must not panic")
            })
            .collect()
    })
    .expect("partition scope must not panic");
    outcomes
        .into_iter()
        .map(|outcome| outcome.map_err(ExprError::from))
        .collect()
}

/// Merge per-partition kernel outputs: concatenate the batches in partition
/// order and sum the probe counts. Returns `None` only for an empty output
/// list, which the partition helpers never produce (partition counts are
/// clamped to ≥ 1).
fn merge_outputs(outputs: Vec<KernelOutput>) -> Option<KernelOutput> {
    let probes = outputs.iter().map(|o| o.probes).sum();
    let batches: Vec<ColumnarBatch> = outputs.into_iter().map(|o| o.batch).collect();
    concat_batches(&batches).map(|batch| KernelOutput { batch, probes })
}

/// Law 2 (under condition `c2`): hash-partition the dividend on the quotient
/// attributes and divide every partition concurrently.
///
/// Matches [`kernels::hash_divide`] output exactly for every partition
/// count, including the empty-divisor case (where the per-partition
/// projections concatenate to the full projection).
pub fn parallel_divide_batches(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    partitions: usize,
) -> Result<KernelOutput> {
    if partitions <= 1 {
        return kernels::hash_divide(dividend, divisor).map_err(ExprError::from);
    }
    // The quotient attributes A = sch(dividend) − sch(divisor). When the
    // operands do not form a valid division the sequential kernel is the
    // error-reporting path.
    let quotient = dividend.schema().difference_attributes(divisor.schema());
    if quotient.is_empty() {
        return kernels::hash_divide(dividend, divisor).map_err(ExprError::from);
    }
    let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
    let key = dividend
        .projection_indices(&quotient_refs)
        .map_err(ExprError::from)?;
    // Partitioning already normalized every dividend row's quotient key;
    // hand the gathered key vectors to the kernel so each row is hashed
    // once, not twice.
    let parts = hash_partition_keyed(dividend, &key, partitions);
    let outputs = run_partitioned(parts, |(part, keys)| {
        kernels::hash_divide_prehashed(part, divisor, keys)
    })?;
    Ok(merge_outputs(outputs).expect("at least one partition"))
}

/// Law 13: hash-partition the divisor on the group attributes `C` and run
/// the great divide of the shared dividend against every slice concurrently.
///
/// With no group attributes the operator degenerates to the small divide
/// (Darwen & Date), so the dividend-partitioned strategy of Law 2 applies
/// instead — mirroring the row-level
/// [`parallel_great_divide`](crate::parallel::parallel_great_divide).
pub fn parallel_great_divide_batches(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    partitions: usize,
) -> Result<KernelOutput> {
    if partitions <= 1 {
        return kernels::hash_great_divide(dividend, divisor).map_err(ExprError::from);
    }
    let group = divisor.schema().difference_attributes(dividend.schema());
    if group.is_empty() {
        return parallel_divide_batches(dividend, divisor, partitions);
    }
    let group_refs: Vec<&str> = group.iter().map(String::as_str).collect();
    let key = divisor
        .projection_indices(&group_refs)
        .map_err(ExprError::from)?;
    // Drop empty divisor slices (a slice with no groups contributes nothing
    // but would still scan the whole replicated dividend), keeping one so the
    // empty-divisor case still produces the right schema. Probes therefore
    // sum to `nonempty_partitions × |dividend|`. The gathered C key vectors
    // ride along so the per-slice great divides skip re-hashing the group
    // columns.
    let mut parts = hash_partition_keyed(divisor, &key, partitions);
    parts.retain(|(part, _)| part.num_rows() > 0);
    if parts.is_empty() {
        parts.push((divisor.clone(), KeyVector::build(divisor, &key)));
    }
    let outputs = run_partitioned(parts, |(part, keys)| {
        kernels::hash_great_divide_prehashed(dividend, part, keys)
    })?;
    Ok(merge_outputs(outputs).expect("at least one partition"))
}

/// Partition-parallel hash join: both inputs are hash-partitioned on the
/// common attributes, the per-partition joins run concurrently, and the
/// results concatenate (bucket `i` of the left can only match bucket `i` of
/// the right, so the merge needs no deduplication).
///
/// With no common attributes every row hashes to the same bucket and the
/// join runs sequentially in one worker — still correct, like the sequential
/// kernel.
pub fn parallel_join_batches(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    kind: JoinKind,
    partitions: usize,
) -> Result<KernelOutput> {
    if partitions <= 1 {
        let sequential = match kind {
            JoinKind::Natural => kernels::hash_natural_join(left, right),
            JoinKind::Semi => kernels::hash_semi_join(left, right, false),
            JoinKind::Anti => kernels::hash_semi_join(left, right, true),
        };
        return sequential.map_err(ExprError::from);
    }
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    let right_key = right
        .projection_indices(&common_refs)
        .map_err(ExprError::from)?;
    // Partitioning hashes both sides' join keys; the per-partition joins
    // consume those key vectors directly (hash each row once, not twice).
    let left_parts = hash_partition_keyed(left, &left_key, partitions);
    let right_parts = hash_partition_keyed(right, &right_key, partitions);
    type KeyedPair = ((ColumnarBatch, KeyVector), (ColumnarBatch, KeyVector));
    let pairs: Vec<KeyedPair> = left_parts.into_iter().zip(right_parts).collect();
    let outputs = run_partitioned(pairs, |((l, lk), (r, rk))| match kind {
        JoinKind::Natural => kernels::hash_natural_join_prehashed(l, r, lk, rk),
        JoinKind::Semi => kernels::hash_semi_join_prehashed(l, r, false, lk, rk),
        JoinKind::Anti => kernels::hash_semi_join_prehashed(l, r, true, lk, rk),
    })?;
    Ok(merge_outputs(outputs).expect("at least one partition"))
}

/// Partition-parallel filter: the input splits into contiguous row ranges,
/// each range is filtered concurrently, and the surviving rows concatenate
/// in input order (so the result is byte-identical to the sequential
/// kernel's).
pub fn parallel_filter_batches(
    batch: &ColumnarBatch,
    predicate: &Predicate,
    partitions: usize,
) -> Result<ColumnarBatch> {
    if partitions <= 1 {
        return kernels::filter(batch, predicate).map_err(ExprError::from);
    }
    let parts = split_even(batch, partitions);
    let outputs = run_partitioned(parts, |part| kernels::filter(part, predicate))?;
    Ok(concat_batches(&outputs).expect("at least one partition"))
}

/// Partition-parallel theta-join: the left input splits into contiguous row
/// ranges, each range is theta-joined against the full right input
/// concurrently. Probes sum to `|left| · |right|` like the sequential
/// kernel.
pub fn parallel_theta_join_batches(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    predicate: &Predicate,
    partitions: usize,
) -> Result<KernelOutput> {
    if partitions <= 1 {
        return kernels::theta_join(left, right, predicate).map_err(ExprError::from);
    }
    let parts = split_even(left, partitions);
    let outputs = run_partitioned(parts, |part| kernels::theta_join(part, right, predicate))?;
    Ok(merge_outputs(outputs).expect("at least one partition"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, CompareOp, Relation};

    fn dividend() -> Relation {
        let mut rows = Vec::new();
        for a in 0..40i64 {
            for b in 0..6i64 {
                if a % 3 == 0 || b % 2 == 0 {
                    rows.push(vec![a, b]);
                }
            }
        }
        Relation::from_rows(["a", "b"], rows).unwrap()
    }

    fn group_divisor() -> Relation {
        let mut rows = Vec::new();
        for c in 0..8i64 {
            for b in 0..6i64 {
                if b <= c % 6 {
                    rows.push(vec![b, c]);
                }
            }
        }
        Relation::from_rows(["b", "c"], rows).unwrap()
    }

    #[test]
    fn parallel_divide_matches_sequential_for_all_partition_counts() {
        let dividend = ColumnarBatch::from_relation(&dividend());
        let divisor = ColumnarBatch::from_relation(&relation! { ["b"] => [0], [2], [4] });
        let sequential = kernels::hash_divide(&dividend, &divisor).unwrap();
        for partitions in [1, 2, 4, 7, 16] {
            let parallel = parallel_divide_batches(&dividend, &divisor, partitions).unwrap();
            assert_eq!(
                parallel.batch.to_relation().unwrap(),
                sequential.batch.to_relation().unwrap(),
                "partitions = {partitions}"
            );
            assert_eq!(
                parallel.probes, sequential.probes,
                "probes are partition-independent"
            );
        }
    }

    #[test]
    fn parallel_divide_handles_the_empty_divisor() {
        let dividend = ColumnarBatch::from_relation(&dividend());
        let divisor = ColumnarBatch::empty(div_algebra::Schema::of(["b"]));
        let sequential = kernels::hash_divide(&dividend, &divisor).unwrap();
        let parallel = parallel_divide_batches(&dividend, &divisor, 4).unwrap();
        assert_eq!(
            parallel.batch.to_relation().unwrap(),
            sequential.batch.to_relation().unwrap()
        );
    }

    #[test]
    fn parallel_great_divide_matches_sequential() {
        let dividend = ColumnarBatch::from_relation(&dividend());
        let divisor = ColumnarBatch::from_relation(&group_divisor());
        let sequential = kernels::hash_great_divide(&dividend, &divisor).unwrap();
        for partitions in [1, 2, 4, 7] {
            let parallel = parallel_great_divide_batches(&dividend, &divisor, partitions).unwrap();
            assert_eq!(
                parallel.batch.to_relation().unwrap(),
                sequential.batch.to_relation().unwrap(),
                "partitions = {partitions}"
            );
            // Law 13 replicates the dividend to every worker with a nonempty
            // divisor slice, so the summed probe work grows linearly with
            // the number of occupied partitions (empty slices are skipped).
            assert_eq!(parallel.probes % sequential.probes, 0);
            assert!(parallel.probes >= sequential.probes);
            assert!(parallel.probes <= partitions * sequential.probes);
        }
    }

    #[test]
    fn parallel_great_divide_degenerates_to_the_small_divide() {
        let dividend = ColumnarBatch::from_relation(&dividend());
        let divisor = ColumnarBatch::from_relation(&relation! { ["b"] => [0], [2] });
        let parallel = parallel_great_divide_batches(&dividend, &divisor, 3).unwrap();
        let sequential = kernels::hash_divide(&dividend, &divisor).unwrap();
        assert_eq!(
            parallel.batch.to_relation().unwrap(),
            sequential.batch.to_relation().unwrap()
        );
    }

    #[test]
    fn parallel_joins_match_sequential() {
        let left = ColumnarBatch::from_relation(&dividend());
        let right = ColumnarBatch::from_relation(&relation! {
            ["b", "tag"] => [0, "x"], [1, "y"], [2, "x"], [9, "z"]
        });
        for kind in [JoinKind::Natural, JoinKind::Semi, JoinKind::Anti] {
            let sequential = parallel_join_batches(&left, &right, kind, 1).unwrap();
            for partitions in [2, 4, 7] {
                let parallel = parallel_join_batches(&left, &right, kind, partitions).unwrap();
                assert_eq!(
                    parallel.batch.to_relation().unwrap(),
                    sequential.batch.to_relation().unwrap(),
                    "kind {kind:?}, partitions = {partitions}"
                );
                assert_eq!(parallel.probes, sequential.probes, "kind {kind:?}");
            }
        }
    }

    #[test]
    fn parallel_filter_is_byte_identical_to_sequential() {
        let batch = ColumnarBatch::from_relation(&dividend());
        let predicate = div_algebra::Predicate::cmp_value("a", CompareOp::Lt, 17)
            .or(Predicate::eq_value("b", 3));
        let sequential = kernels::filter(&batch, &predicate).unwrap();
        for partitions in [2, 3, 7, 64] {
            let parallel = parallel_filter_batches(&batch, &predicate, partitions).unwrap();
            assert_eq!(parallel, sequential, "partitions = {partitions}");
        }
    }

    #[test]
    fn parallel_theta_join_matches_sequential() {
        let left =
            ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 10], [2, 20], [3, 30] });
        let right = ColumnarBatch::from_relation(&relation! { ["c"] => [15], [25] });
        let predicate = Predicate::cmp_attrs("b", CompareOp::Gt, "c");
        let sequential = kernels::theta_join(&left, &right, &predicate).unwrap();
        for partitions in [2, 5] {
            let parallel =
                parallel_theta_join_batches(&left, &right, &predicate, partitions).unwrap();
            assert_eq!(
                parallel.batch.to_relation().unwrap(),
                sequential.batch.to_relation().unwrap()
            );
            assert_eq!(parallel.probes, sequential.probes);
        }
    }

    #[test]
    fn worker_errors_propagate() {
        let dividend = ColumnarBatch::from_relation(&dividend());
        let bad_divisor = ColumnarBatch::from_relation(&relation! { ["zz"] => [1] });
        assert!(parallel_divide_batches(&dividend, &bad_divisor, 4).is_err());
        let bad = Predicate::eq_value("nope", 1);
        assert!(parallel_filter_batches(&dividend, &bad, 4).is_err());
    }
}
