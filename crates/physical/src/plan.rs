//! The physical plan tree.

use crate::division::DivisionAlgorithm;
use crate::great_divide::GreatDivideAlgorithm;
use div_algebra::{AggregateCall, Predicate, Relation, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A physical execution plan.
///
/// The shape mirrors [`div_expr::LogicalPlan`], but every node is a concrete
/// algorithm: joins are hash- or nested-loop based, and the division nodes
/// carry the [`DivisionAlgorithm`] / [`GreatDivideAlgorithm`] the planner
/// selected — the paper's "mapping of logical operators to physical
/// operators" (Section 7).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan of a catalog table.
    TableScan {
        /// Table name.
        table: String,
    },
    /// An inline constant relation.
    Values {
        /// The relation.
        relation: Relation,
    },
    /// Predicate filter.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection with duplicate elimination.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output attributes.
        attributes: Vec<String>,
    },
    /// Attribute renaming.
    Rename {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// `(old, new)` pairs.
        renames: Vec<(String, String)>,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Set difference.
    Difference {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Cartesian product.
    CrossProduct {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Nested-loop theta-join.
    NestedLoopJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated schema.
        predicate: Predicate,
    },
    /// Hash-based natural join on all common attributes.
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Hash-based left semi-join.
    HashSemiJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Hash-based left anti-semi-join.
    HashAntiSemiJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Grouping attributes.
        group_by: Vec<String>,
        /// Aggregate list.
        aggregates: Vec<AggregateCall>,
    },
    /// Small divide with an explicit algorithm choice.
    Divide {
        /// Dividend input.
        dividend: Box<PhysicalPlan>,
        /// Divisor input.
        divisor: Box<PhysicalPlan>,
        /// Selected algorithm.
        algorithm: DivisionAlgorithm,
    },
    /// Great divide with an explicit algorithm choice.
    GreatDivide {
        /// Dividend input.
        dividend: Box<PhysicalPlan>,
        /// Divisor input.
        divisor: Box<PhysicalPlan>,
        /// Selected algorithm.
        algorithm: GreatDivideAlgorithm,
    },
}

impl PhysicalPlan {
    /// Operator label used in statistics and explain output.
    pub fn label(&self) -> String {
        match self {
            PhysicalPlan::TableScan { table } => format!("TableScan({table})"),
            PhysicalPlan::Values { relation } => format!("Values({} rows)", relation.len()),
            PhysicalPlan::Filter { predicate, .. } => format!("Filter({predicate})"),
            PhysicalPlan::Project { attributes, .. } => {
                format!("Project({})", attributes.join(", "))
            }
            PhysicalPlan::Rename { .. } => "Rename".to_string(),
            PhysicalPlan::Union { .. } => "Union".to_string(),
            PhysicalPlan::Intersect { .. } => "Intersect".to_string(),
            PhysicalPlan::Difference { .. } => "Difference".to_string(),
            PhysicalPlan::CrossProduct { .. } => "CrossProduct".to_string(),
            PhysicalPlan::NestedLoopJoin { predicate, .. } => {
                format!("NestedLoopJoin({predicate})")
            }
            PhysicalPlan::HashJoin { .. } => "HashJoin".to_string(),
            PhysicalPlan::HashSemiJoin { .. } => "HashSemiJoin".to_string(),
            PhysicalPlan::HashAntiSemiJoin { .. } => "HashAntiSemiJoin".to_string(),
            PhysicalPlan::HashAggregate { group_by, .. } => {
                format!("HashAggregate({})", group_by.join(", "))
            }
            PhysicalPlan::Divide { algorithm, .. } => format!("Divide[{}]", algorithm.name()),
            PhysicalPlan::GreatDivide { algorithm, .. } => {
                format!("GreatDivide[{}]", algorithm.name())
            }
        }
    }

    /// Children of this node, left to right.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Rename { input, .. }
            | PhysicalPlan::HashAggregate { input, .. } => vec![input],
            PhysicalPlan::Union { left, right }
            | PhysicalPlan::Intersect { left, right }
            | PhysicalPlan::Difference { left, right }
            | PhysicalPlan::CrossProduct { left, right }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right }
            | PhysicalPlan::HashSemiJoin { left, right }
            | PhysicalPlan::HashAntiSemiJoin { left, right } => vec![left, right],
            PhysicalPlan::Divide {
                dividend, divisor, ..
            }
            | PhysicalPlan::GreatDivide {
                dividend, divisor, ..
            } => vec![dividend, divisor],
        }
    }

    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.operator_count())
            .sum::<usize>()
    }

    /// The set of `$parameter` placeholder names still unbound in any
    /// predicate of the plan.
    ///
    /// Prepared statements cache a plan *template* containing placeholders;
    /// [`PhysicalPlan::bind_parameters`] instantiates the template. A plan
    /// with unbound parameters fails at execution with
    /// [`div_algebra::AlgebraError::UnboundParameter`].
    pub fn parameters(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_parameters(&mut out);
        out
    }

    fn collect_parameters(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            PhysicalPlan::Filter { predicate, .. }
            | PhysicalPlan::NestedLoopJoin { predicate, .. } => {
                out.extend(predicate.parameters());
            }
            _ => {}
        }
        for child in self.children() {
            child.collect_parameters(out);
        }
    }

    /// Allocation-free short-circuiting variant of
    /// [`PhysicalPlan::parameters`]`.is_empty()` — this runs on every
    /// prepared-statement execution.
    pub fn has_parameters(&self) -> bool {
        match self {
            PhysicalPlan::Filter { predicate, .. }
            | PhysicalPlan::NestedLoopJoin { predicate, .. }
                if predicate.has_parameters() =>
            {
                true
            }
            _ => self.children().iter().any(|child| child.has_parameters()),
        }
    }

    /// Instantiate a plan template: substitute every `$parameter` placeholder
    /// whose name appears in `bindings` with the bound constant, leaving the
    /// rest of the tree (and any unbound placeholders) untouched.
    ///
    /// This is the cheap half of prepared-statement execution: the expensive
    /// parse → translate → optimize → plan pipeline ran once at prepare time;
    /// binding is a structural copy.
    pub fn bind_parameters(&self, bindings: &BTreeMap<String, Value>) -> PhysicalPlan {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::Values { .. } => self.clone(),
            PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
                input: Box::new(input.bind_parameters(bindings)),
                predicate: predicate.bind_parameters(bindings),
            },
            PhysicalPlan::Project { input, attributes } => PhysicalPlan::Project {
                input: Box::new(input.bind_parameters(bindings)),
                attributes: attributes.clone(),
            },
            PhysicalPlan::Rename { input, renames } => PhysicalPlan::Rename {
                input: Box::new(input.bind_parameters(bindings)),
                renames: renames.clone(),
            },
            PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::Intersect { left, right } => PhysicalPlan::Intersect {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::Difference { left, right } => PhysicalPlan::Difference {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::CrossProduct { left, right } => PhysicalPlan::CrossProduct {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => PhysicalPlan::NestedLoopJoin {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
                predicate: predicate.bind_parameters(bindings),
            },
            PhysicalPlan::HashJoin { left, right } => PhysicalPlan::HashJoin {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::HashSemiJoin { left, right } => PhysicalPlan::HashSemiJoin {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::HashAntiSemiJoin { left, right } => PhysicalPlan::HashAntiSemiJoin {
                left: Box::new(left.bind_parameters(bindings)),
                right: Box::new(right.bind_parameters(bindings)),
            },
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
            } => PhysicalPlan::HashAggregate {
                input: Box::new(input.bind_parameters(bindings)),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            PhysicalPlan::Divide {
                dividend,
                divisor,
                algorithm,
            } => PhysicalPlan::Divide {
                dividend: Box::new(dividend.bind_parameters(bindings)),
                divisor: Box::new(divisor.bind_parameters(bindings)),
                algorithm: *algorithm,
            },
            PhysicalPlan::GreatDivide {
                dividend,
                divisor,
                algorithm,
            } => PhysicalPlan::GreatDivide {
                dividend: Box::new(dividend.bind_parameters(bindings)),
                divisor: Box::new(divisor.bind_parameters(bindings)),
                algorithm: *algorithm,
            },
        }
    }

    /// Render the plan as an indented explain tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label());
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhysicalPlan {
        PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Divide {
                dividend: Box::new(PhysicalPlan::TableScan {
                    table: "supplies".into(),
                }),
                divisor: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::TableScan {
                        table: "parts".into(),
                    }),
                    predicate: Predicate::eq_value("color", "blue"),
                }),
                algorithm: DivisionAlgorithm::HashDivision,
            }),
            attributes: vec!["s#".into()],
        }
    }

    #[test]
    fn labels_and_counts() {
        let plan = sample();
        assert_eq!(plan.operator_count(), 5);
        assert!(plan.label().starts_with("Project"));
        assert!(plan.explain().contains("Divide[hash-division]"));
        assert!(plan.to_string().contains("TableScan(parts)"));
    }

    #[test]
    fn children_are_ordered_left_to_right() {
        let plan = sample();
        let divide = plan.children()[0];
        let kids = divide.children();
        assert_eq!(kids[0].label(), "TableScan(supplies)");
        assert!(kids[1].label().starts_with("Filter"));
    }

    #[test]
    fn bind_parameters_instantiates_a_template() {
        use div_algebra::CompareOp;
        let template = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::TableScan {
                table: "parts".into(),
            }),
            predicate: Predicate::cmp_param("color", CompareOp::Eq, "color"),
        };
        assert_eq!(
            template.parameters().into_iter().collect::<Vec<_>>(),
            vec!["color".to_string()]
        );
        let bound =
            template.bind_parameters(&BTreeMap::from([("color".to_string(), Value::str("blue"))]));
        assert!(bound.parameters().is_empty());
        assert!(bound.label().contains("color = blue"));
        // The template itself is untouched and reusable.
        assert_eq!(template.parameters().len(), 1);
        // Unknown bindings leave the placeholder in place.
        let still =
            template.bind_parameters(&BTreeMap::from([("other".to_string(), Value::Int(1))]));
        assert_eq!(still.parameters().len(), 1);
    }
}
