//! Physical algorithms for the great divide.
//!
//! The great divide tests every divisor group (defined by the `C` attributes)
//! against every dividend group (defined by the `A` attributes). Three
//! strategies are provided, mirroring the algorithm families of Rantzau et
//! al. (Information Systems 2003):
//!
//! * [`GreatDivideAlgorithm::GroupLoop`] — the literal reading of
//!   Definition 4: loop over the divisor groups and run a hash-division per
//!   group, tagging each quotient with the group value.
//! * [`GreatDivideAlgorithm::HashSets`] — materialize the `B`-set of every
//!   dividend group and every divisor group once, then run the pairwise
//!   subset tests on the hashed sets.
//! * [`GreatDivideAlgorithm::SortMerge`] — keep both collections of `B`-sets
//!   as sorted vectors and perform merge-based subset tests; group-preserving
//!   in `(A, C)` order.

use crate::division::{self, DivisionAlgorithm};
use crate::stats::ExecStats;
use crate::Result;
use div_algebra::{Relation, Schema, Tuple};
use div_expr::ExprError;
use std::collections::{BTreeMap, HashSet};

/// The available great-divide algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GreatDivideAlgorithm {
    /// One small divide per divisor group (Definition 4 executed literally).
    GroupLoop,
    /// Hash-set based pairwise containment tests.
    HashSets,
    /// Sorted-vector, merge-based containment tests.
    SortMerge,
}

impl GreatDivideAlgorithm {
    /// All algorithms, for exhaustive comparisons.
    pub const ALL: [GreatDivideAlgorithm; 3] = [
        GreatDivideAlgorithm::GroupLoop,
        GreatDivideAlgorithm::HashSets,
        GreatDivideAlgorithm::SortMerge,
    ];

    /// Short display name (used in benchmark output).
    pub fn name(&self) -> &'static str {
        match self {
            GreatDivideAlgorithm::GroupLoop => "group-loop",
            GreatDivideAlgorithm::HashSets => "hash-sets",
            GreatDivideAlgorithm::SortMerge => "sort-merge",
        }
    }
}

/// Pre-resolved attribute information for a great divide.
#[derive(Debug, Clone)]
pub struct GreatDivisionContext {
    /// Quotient attribute names `A`.
    pub quotient_names: Vec<String>,
    /// Shared attribute names `B`.
    pub shared_names: Vec<String>,
    /// Divisor group attribute names `C`.
    pub group_names: Vec<String>,
    dividend_a: Vec<usize>,
    dividend_b: Vec<usize>,
    divisor_b: Vec<usize>,
    divisor_c: Vec<usize>,
    output_schema: Schema,
}

impl GreatDivisionContext {
    /// Resolve the attribute partition for `dividend ÷* divisor`.
    pub fn resolve(dividend: &Relation, divisor: &Relation) -> Result<Self> {
        let attrs = dividend
            .great_division_attributes(divisor)
            .map_err(ExprError::from)?;
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let c_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();
        let dividend_a = dividend
            .schema()
            .projection_indices(&a_refs)
            .map_err(ExprError::from)?;
        let dividend_b = dividend
            .schema()
            .projection_indices(&b_refs)
            .map_err(ExprError::from)?;
        let divisor_b = divisor
            .schema()
            .projection_indices(&b_refs)
            .map_err(ExprError::from)?;
        let divisor_c = divisor
            .schema()
            .projection_indices(&c_refs)
            .map_err(ExprError::from)?;
        let mut out_names: Vec<&str> = a_refs.clone();
        out_names.extend(c_refs.iter().copied());
        let output_schema = Schema::new(out_names).map_err(ExprError::from)?;
        Ok(GreatDivisionContext {
            quotient_names: attrs.quotient,
            shared_names: attrs.shared,
            group_names: attrs.group,
            dividend_a,
            dividend_b,
            divisor_b,
            divisor_c,
            output_schema,
        })
    }

    /// `true` when the divisor has no group attributes `C` (the operator then
    /// degenerates to the small divide).
    pub fn degenerates_to_small_divide(&self) -> bool {
        self.group_names.is_empty()
    }
}

/// Execute `dividend ÷* divisor` with the chosen algorithm.
pub fn great_divide_with(
    dividend: &Relation,
    divisor: &Relation,
    algorithm: GreatDivideAlgorithm,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let ctx = GreatDivisionContext::resolve(dividend, divisor)?;
    if ctx.degenerates_to_small_divide() {
        // Darwen & Date: great divide with C = ∅ is the small divide.
        return division::divide_with(dividend, divisor, DivisionAlgorithm::HashDivision, stats);
    }
    match algorithm {
        GreatDivideAlgorithm::GroupLoop => group_loop(&ctx, dividend, divisor, stats),
        GreatDivideAlgorithm::HashSets => hash_sets(&ctx, dividend, divisor, stats),
        GreatDivideAlgorithm::SortMerge => sort_merge(&ctx, dividend, divisor, stats),
    }
}

fn group_loop(
    ctx: &GreatDivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let mut out = Relation::empty(ctx.output_schema.clone());
    let b_refs: Vec<&str> = ctx.shared_names.iter().map(String::as_str).collect();
    for (c_value, members) in divisor.group_by_indices(&ctx.divisor_c) {
        // Build the per-group divisor relation over B.
        let mut group =
            Relation::empty(divisor.schema().project(&b_refs).map_err(ExprError::from)?);
        for t in &members {
            group
                .insert(t.project(&ctx.divisor_b))
                .map_err(ExprError::from)?;
        }
        stats.record("GroupLoop/divisor-group", group.len(), false, false);
        let quotient =
            division::divide_with(dividend, &group, DivisionAlgorithm::HashDivision, stats)?;
        for a_value in quotient.tuples() {
            out.insert(a_value.concat(&c_value))
                .map_err(ExprError::from)?;
        }
    }
    stats.record("GroupLoopGreatDivision", out.len(), false, false);
    Ok(out)
}

fn hash_sets(
    ctx: &GreatDivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    // Dividend group B-sets.
    let mut dividend_groups: BTreeMap<Tuple, HashSet<Tuple>> = BTreeMap::new();
    for t in dividend.tuples() {
        dividend_groups
            .entry(t.project(&ctx.dividend_a))
            .or_default()
            .insert(t.project(&ctx.dividend_b));
    }
    // Divisor group B-sets.
    let mut divisor_groups: BTreeMap<Tuple, HashSet<Tuple>> = BTreeMap::new();
    for t in divisor.tuples() {
        divisor_groups
            .entry(t.project(&ctx.divisor_c))
            .or_default()
            .insert(t.project(&ctx.divisor_b));
    }
    let mut probes = 0usize;
    let mut out = Relation::empty(ctx.output_schema.clone());
    for (c_value, needed) in &divisor_groups {
        for (a_value, have) in &dividend_groups {
            probes += needed.len();
            if needed.iter().all(|b| have.contains(b)) {
                out.insert(a_value.concat(c_value))
                    .map_err(ExprError::from)?;
            }
        }
    }
    stats.add_probes(probes);
    stats.record("HashSetsGreatDivision", out.len(), false, false);
    Ok(out)
}

fn sort_merge(
    ctx: &GreatDivisionContext,
    dividend: &Relation,
    divisor: &Relation,
    stats: &mut ExecStats,
) -> Result<Relation> {
    let collect_sorted = |groups: BTreeMap<Tuple, Vec<Tuple>>| -> Vec<(Tuple, Vec<Tuple>)> {
        groups
            .into_iter()
            .map(|(k, mut v)| {
                v.sort();
                v.dedup();
                (k, v)
            })
            .collect()
    };
    let mut dividend_groups: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
    for t in dividend.tuples() {
        dividend_groups
            .entry(t.project(&ctx.dividend_a))
            .or_default()
            .push(t.project(&ctx.dividend_b));
    }
    let mut divisor_groups: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
    for t in divisor.tuples() {
        divisor_groups
            .entry(t.project(&ctx.divisor_c))
            .or_default()
            .push(t.project(&ctx.divisor_b));
    }
    let dividend_sorted = collect_sorted(dividend_groups);
    let divisor_sorted = collect_sorted(divisor_groups);

    let mut probes = 0usize;
    let mut out = Relation::empty(ctx.output_schema.clone());
    for (c_value, needed) in &divisor_sorted {
        for (a_value, have) in &dividend_sorted {
            // Merge-based subset test over two sorted vectors.
            let mut hi = 0usize;
            let mut contained = true;
            for n in needed {
                probes += 1;
                while hi < have.len() && &have[hi] < n {
                    hi += 1;
                }
                if hi >= have.len() || &have[hi] != n {
                    contained = false;
                    break;
                }
            }
            if contained {
                out.insert(a_value.concat(c_value))
                    .map_err(ExprError::from)?;
            }
        }
    }
    stats.add_probes(probes);
    stats.record("SortMergeGreatDivision", out.len(), false, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn figure2_inputs() -> (Relation, Relation) {
        (
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
            },
            relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
        )
    }

    #[test]
    fn all_algorithms_agree_on_figure_2() {
        let (dividend, divisor) = figure2_inputs();
        let expected = relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] };
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = great_divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            assert_eq!(result, expected, "algorithm {}", algorithm.name());
        }
    }

    #[test]
    fn all_algorithms_agree_on_the_mining_workload() {
        // Transactions ÷* candidate itemsets (Section 3).
        let transactions = relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 30],
            [3, 20], [3, 30],
            [4, 10], [4, 20], [4, 30], [4, 40],
        };
        let candidates = relation! {
            ["item", "itemset"] =>
            [10, 1], [30, 1],
            [20, 2], [30, 2],
            [40, 3],
        };
        let expected = transactions.great_divide(&candidates).unwrap();
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result =
                great_divide_with(&transactions, &candidates, algorithm, &mut stats).unwrap();
            assert_eq!(result, expected, "algorithm {}", algorithm.name());
        }
    }

    #[test]
    fn degenerate_divisor_without_group_attributes_is_small_divide() {
        let dividend = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] };
        let divisor = relation! { ["b"] => [1], [2] };
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = great_divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            assert_eq!(result, relation! { ["a"] => [1] });
        }
    }

    #[test]
    fn empty_divisor_produces_empty_quotient() {
        let (dividend, _) = figure2_inputs();
        let divisor = Relation::empty(Schema::of(["b", "c"]));
        for algorithm in GreatDivideAlgorithm::ALL {
            let mut stats = ExecStats::default();
            let result = great_divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap();
            assert!(result.is_empty(), "algorithm {}", algorithm.name());
        }
    }

    #[test]
    fn invalid_schemas_are_rejected() {
        let dividend = relation! { ["a", "b"] => [1, 1] };
        let disjoint = relation! { ["x", "y"] => [1, 1] };
        let mut stats = ExecStats::default();
        assert!(great_divide_with(
            &dividend,
            &disjoint,
            GreatDivideAlgorithm::HashSets,
            &mut stats
        )
        .is_err());
    }
}
