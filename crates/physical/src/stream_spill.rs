//! Hybrid partitioned-hash (spill-to-disk) variants of the blocking
//! streaming operators: hash join, divide / great divide, and grouped
//! aggregation.
//!
//! These are the out-of-core half of Graefe's hybrid hash design, which the
//! hash-division family this workspace reproduces is explicitly built on:
//!
//! 1. **Stay in memory while it fits.** The operator buffers its build-side
//!    input exactly like its in-memory sibling. If the input is exhausted
//!    before the resident-row budget is approached, the buffered chunks are
//!    fed to the ordinary kernel — same code path, same result, no IO.
//! 2. **Partition to disk under pressure.** When the global resident
//!    footprint comes within a safety margin of the budget (two batches —
//!    the trigger must fire *before* a child emission would trip the
//!    [`crate::guard::QueryGuard`], whose check lives at the emit boundary),
//!    everything buffered plus everything still arriving is routed into
//!    [`SPILL_FANOUT`] spill files by the hash of the operator's key:
//!    the join's common attributes, the division's quotient attributes
//!    (Law 2: partitioning the dividend on the quotient attributes with the
//!    divisor replicated preserves the quotient), aggregation's grouping
//!    attributes. Key-disjoint partitions make per-partition results
//!    independent, so their union is the exact operator result.
//! 3. **Recurse per partition.** A partition that still does not fit is
//!    re-partitioned from disk with a fresh level seed
//!    ([`div_columnar::partition::hash_partition_seeded`] — all rows of one
//!    partition share their level-0 routing hash, so recursion *must*
//!    re-seed), up to [`MAX_SPILL_LEVELS`]; a level-capped partition (every
//!    row sharing one key) is served anyway and the budget backstop aborts
//!    honestly if it truly cannot fit.
//!
//! Spill files use the `div-storage` table format (checksummed, columnar),
//! live in a per-operator [`SpillManager`] temp directory, and are deleted
//! eagerly as they are consumed; the manager's `Drop` removes the directory
//! on *every* exit path, including mid-spill errors. The `spill.write` /
//! `spill.read` failpoints fire before every file write / chunk read, so
//! the chaos suite can fault either direction of the traffic. Spill volume
//! is reported as [`ExecStats::spill_partitions`] /
//! [`ExecStats::spill_rows_written`] / [`ExecStats::spill_rows_read`].
//!
//! [`ExecStats::spill_partitions`]: crate::stats::ExecStats::spill_partitions
//! [`ExecStats::spill_rows_written`]: crate::stats::ExecStats::spill_rows_written
//! [`ExecStats::spill_rows_read`]: crate::stats::ExecStats::spill_rows_read

use crate::stream::{
    consumed, drain_to_batch, BatchStream, ChunkCursor, OpMeta, RetainedState, StreamContext,
    StreamJoinKind,
};
use crate::trace::OperatorId;
use crate::Result;
use div_algebra::{AggregateCall, Schema};
use div_columnar::kernels::{self, JoinBuild, KernelOutput, StreamingGreatDivide};
use div_columnar::{partition, ColumnarBatch};
use div_expr::ExprError;
use div_storage::{SpillHandle, SpillManager, SpillWriter, TableScanCursor};

/// Fan-out of every partitioning pass. Small on purpose: each level divides
/// the data by ~4, so even a tiny budget reaches a fitting partition within
/// a few levels, and the file count stays bounded.
pub(crate) const SPILL_FANOUT: usize = 4;

/// Recursion depth cap. A partition that still exceeds the budget after
/// this many re-partitionings is dominated by one key value; further
/// splitting cannot help, so it is served as-is and the budget backstop
/// decides.
pub(crate) const MAX_SPILL_LEVELS: usize = 6;

/// Routing seed for recursion level `level` (level 0 — the first, in-line
/// partitioning pass — uses seed 0, the plain [`partition::hash_partition_keyed`]
/// routing). The odd multiplier is the golden-ratio mixing constant.
fn spill_seed(level: usize) -> u64 {
    (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Safety margin (in rows) kept between the resident footprint and the
/// budget: spilling triggers while at least this much headroom remains, so
/// the next child emission (≤ one batch) and one in-flight spill chunk
/// cannot trip the guard first.
fn spill_margin(ctx: &StreamContext) -> usize {
    2 * ctx.batch_size()
}

/// Write one batch to a spill file, counting it and honoring the
/// `spill.write` failpoint.
fn spill_write(
    ctx: &mut StreamContext,
    writer: &mut SpillWriter,
    batch: &ColumnarBatch,
) -> Result<()> {
    crate::failpoint::hit("spill", "write")?;
    writer.write(batch).map_err(ExprError::from)?;
    ctx.stats.spill_rows_written += batch.num_rows();
    Ok(())
}

/// Open a spill partition for chunk-at-a-time reading (`spill.read`
/// failpoint fires here and before every chunk).
fn open_spill(handle: &SpillHandle) -> Result<TableScanCursor> {
    crate::failpoint::hit("spill", "read")?;
    let reader = handle.open().map_err(ExprError::from)?;
    reader.scan(None).map_err(ExprError::from)
}

/// Pull the next chunk off a spill cursor, counting the rows read.
fn next_spill_chunk(
    ctx: &mut StreamContext,
    cursor: &mut TableScanCursor,
) -> Result<Option<ColumnarBatch>> {
    crate::failpoint::hit("spill", "read")?;
    match cursor.next_chunk().map_err(ExprError::from)? {
        Some(chunk) => {
            ctx.stats.spill_rows_read += chunk.num_rows();
            Ok(Some(chunk))
        }
        None => Ok(None),
    }
}

/// One fan-out's worth of open spill files plus the routing that feeds
/// them: rows are distributed by the seeded hash of their key columns.
struct PartitionWriters {
    writers: Vec<Option<SpillWriter>>,
    key_cols: Vec<usize>,
    seed: u64,
}

impl PartitionWriters {
    fn create(
        manager: &mut SpillManager,
        ctx: &mut StreamContext,
        schema: &Schema,
        key_cols: Vec<usize>,
        seed: u64,
    ) -> Result<PartitionWriters> {
        let mut writers = Vec::with_capacity(SPILL_FANOUT);
        for _ in 0..SPILL_FANOUT {
            writers.push(Some(
                manager
                    .create_file(schema.clone())
                    .map_err(ExprError::from)?,
            ));
            ctx.stats.spill_partitions += 1;
        }
        Ok(PartitionWriters {
            writers,
            key_cols,
            seed,
        })
    }

    /// Route one chunk into the partition files.
    fn route(&mut self, ctx: &mut StreamContext, chunk: &ColumnarBatch) -> Result<()> {
        let parts =
            partition::hash_partition_seeded(chunk, &self.key_cols, self.writers.len(), self.seed);
        for (i, (part, _keys)) in parts.into_iter().enumerate() {
            if part.num_rows() > 0 {
                let writer = self.writers[i].as_mut().expect("writer live until finish");
                spill_write(ctx, writer, &part)?;
            }
        }
        Ok(())
    }

    /// Seal all files into readable handles (in partition order).
    fn finish(mut self) -> Result<Vec<SpillHandle>> {
        self.writers
            .drain(..)
            .map(|w| {
                w.expect("writer live until finish")
                    .finish()
                    .map_err(ExprError::from)
            })
            .collect()
    }
}

/// Re-partition one on-disk partition into [`SPILL_FANOUT`] fresh files
/// with the given level seed. The source file is left for the caller to
/// delete (it still owns the handle).
fn repartition(
    ctx: &mut StreamContext,
    manager: &mut SpillManager,
    schema: &Schema,
    key_cols: &[usize],
    handle: &SpillHandle,
    seed: u64,
) -> Result<Vec<SpillHandle>> {
    let mut writers = PartitionWriters::create(manager, ctx, schema, key_cols.to_vec(), seed)?;
    let mut cursor = open_spill(handle)?;
    while let Some(chunk) = next_spill_chunk(ctx, &mut cursor)? {
        writers.route(ctx, &chunk)?;
    }
    writers.finish()
}

/// Recursively split the first-pass partitions until each satisfies `fits`
/// (on its row count) or the level cap is reached; empty partitions are
/// dropped. Returns the leaf worklist.
fn plan_single_leaves(
    ctx: &mut StreamContext,
    manager: &mut SpillManager,
    schema: &Schema,
    key_cols: &[usize],
    first: Vec<SpillHandle>,
    fits: &dyn Fn(usize) -> bool,
) -> Result<Vec<SpillHandle>> {
    let mut work: Vec<(SpillHandle, usize)> = first.into_iter().map(|h| (h, 1)).collect();
    let mut leaves = Vec::new();
    while let Some((handle, level)) = work.pop() {
        if handle.rows() == 0 {
            handle.delete();
            continue;
        }
        if fits(handle.rows()) || level >= MAX_SPILL_LEVELS {
            leaves.push(handle);
            continue;
        }
        let split = repartition(ctx, manager, schema, key_cols, &handle, spill_seed(level))?;
        handle.delete();
        for h in split {
            work.push((h, level + 1));
        }
    }
    Ok(leaves)
}

/// The build-side accumulator of every hybrid operator: buffers chunks in
/// memory (they remain under their emitters' resident accounting) until
/// the spill trigger fires, then becomes a disk router. Chunks handed to
/// [`SpillSink::push`] are *always* balanced — buffered ones stay
/// accounted until consumed or rolled back, routed ones are released as
/// they hit disk.
struct SpillSink {
    schema: Schema,
    key_cols: Vec<usize>,
    threshold: Option<usize>,
    buffered: Vec<ColumnarBatch>,
    spill: Option<(SpillManager, PartitionWriters)>,
}

impl SpillSink {
    fn new(schema: Schema, key_cols: Vec<usize>, threshold: Option<usize>) -> SpillSink {
        SpillSink {
            schema,
            key_cols,
            threshold,
            buffered: Vec::new(),
            spill: None,
        }
    }

    fn spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// Accept one child-emitted chunk (already acquired by the emitter).
    fn push(&mut self, ctx: &mut StreamContext, chunk: ColumnarBatch) -> Result<()> {
        if let Some((_, writers)) = self.spill.as_mut() {
            let routed = writers.route(ctx, &chunk);
            consumed(ctx, &chunk);
            return routed;
        }
        self.buffered.push(chunk);
        if let Some(threshold) = self.threshold {
            if ctx.resident_rows() + spill_margin(ctx) > threshold {
                self.activate(ctx)?;
            }
        }
        Ok(())
    }

    /// Switch to disk: create the spill directory and flush everything
    /// buffered through the partitioner. Accounting for every buffered
    /// chunk is released here whether routing succeeds or not.
    fn activate(&mut self, ctx: &mut StreamContext) -> Result<()> {
        let mut manager = SpillManager::new().map_err(ExprError::from)?;
        let mut writers = PartitionWriters::create(
            &mut manager,
            ctx,
            &self.schema,
            self.key_cols.clone(),
            spill_seed(0),
        )?;
        let mut first_err = None;
        for chunk in &self.buffered {
            if first_err.is_none() {
                first_err = writers.route(ctx, chunk).err();
            }
            consumed(ctx, chunk);
        }
        self.buffered.clear();
        if let Some(err) = first_err {
            return Err(err);
        }
        self.spill = Some((manager, writers));
        Ok(())
    }

    /// Release the accounting of anything still buffered (error path).
    fn rollback(&mut self, ctx: &mut StreamContext) {
        for chunk in &self.buffered {
            consumed(ctx, chunk);
        }
        self.buffered.clear();
    }

    /// The buffered chunks of a sink that never triggered (in-memory
    /// completion path); their accounting stays with the caller.
    fn into_buffered(self) -> Vec<ColumnarBatch> {
        debug_assert!(self.spill.is_none());
        self.buffered
    }

    /// Seal the first-pass partition files of a triggered sink.
    fn finish_spill(self, _ctx: &mut StreamContext) -> Result<(SpillManager, Vec<SpillHandle>)> {
        let (manager, writers) = self.spill.expect("finish_spill requires a triggered sink");
        Ok((manager, writers.finish()?))
    }
}

/// Drain `child` through `sink`, keeping the accounting balanced on every
/// error path.
fn drain_into_sink(
    child: &mut Box<dyn BatchStream>,
    ctx: &mut StreamContext,
    sink: &mut SpillSink,
) -> Result<()> {
    loop {
        match child.next_batch(ctx) {
            Ok(Some(chunk)) => {
                if let Err(err) = sink.push(ctx, chunk) {
                    sink.rollback(ctx);
                    return Err(err);
                }
            }
            Ok(None) => return Ok(()),
            Err(err) => {
                sink.rollback(ctx);
                return Err(err);
            }
        }
    }
}

/// Concatenate buffered chunks into one batch, transferring their resident
/// accounting to it (the blocking-boundary hand-off of
/// [`drain_to_batch`](crate::stream::drain_to_batch), for chunks that were
/// buffered by a [`SpillSink`] instead).
fn consolidate(
    ctx: &mut StreamContext,
    label: &str,
    schema: &Schema,
    chunks: Vec<ColumnarBatch>,
) -> Result<ColumnarBatch> {
    let batch =
        partition::concat_batches(&chunks).unwrap_or_else(|| ColumnarBatch::empty(schema.clone()));
    for chunk in &chunks {
        consumed(ctx, chunk);
    }
    ctx.acquire(batch.num_rows(), 1);
    if let Err(err) = ctx.check_guard(label) {
        ctx.release(batch.num_rows(), 1);
        return Err(err);
    }
    Ok(batch)
}

// ---------------------------------------------------------------------------
// Spilling hash join
// ---------------------------------------------------------------------------

/// One join partition pair being served: the loaded build table and the
/// probe partition streaming off disk.
struct JoinLeaf {
    build: JoinBuild,
    cursor: TableScanCursor,
}

/// How a [`SpillingHashJoinStream`] ended up after its build phase.
enum JoinState {
    /// The build side fit: identical to the in-memory [`HashJoinStream`]
    /// from here on.
    ///
    /// [`HashJoinStream`]: crate::stream
    InMemory { build: Box<JoinBuild> },
    /// Both sides were partitioned to disk on their common attributes;
    /// pairs are served one at a time.
    Spilled {
        /// Owns the spill directory for the lifetime of the serve phase.
        _manager: SpillManager,
        /// Remaining (build, probe) partition pairs.
        pairs: Vec<(SpillHandle, SpillHandle)>,
        /// Boxed: a loaded leaf dwarfs the in-memory variant.
        current: Option<Box<JoinLeaf>>,
    },
}

/// Hybrid hash natural/semi/anti join: in-memory while the build side
/// fits, Grace-style partitioned with per-partition recursion when it does
/// not. Both sides are routed by the *same* seeded hash of the common
/// attributes (in identical attribute order), so matching rows always land
/// in the same partition pair.
pub(crate) struct SpillingHashJoinStream {
    meta: OpMeta,
    left: Box<dyn BatchStream>,
    right: Option<Box<dyn BatchStream>>,
    kind: StreamJoinKind,
    schema: Schema,
    /// The build (right) side's schema — kept past the build child's
    /// hand-off because leaf loading needs it for empty partitions.
    build_schema: Schema,
    state: Option<JoinState>,
    retained: RetainedState,
}

impl SpillingHashJoinStream {
    pub(crate) fn new(
        meta: OpMeta,
        left: Box<dyn BatchStream>,
        right: Box<dyn BatchStream>,
        kind: StreamJoinKind,
        schema: Schema,
    ) -> SpillingHashJoinStream {
        let build_schema = right.schema().clone();
        SpillingHashJoinStream {
            meta,
            left,
            right: Some(right),
            kind,
            schema,
            build_schema,
            state: None,
            retained: RetainedState::default(),
        }
    }

    fn ensure_state(&mut self, ctx: &mut StreamContext) -> Result<()> {
        if self.state.is_some() {
            return Ok(());
        }
        let left_schema = self.left.schema().clone();
        let mut right = self.right.take().expect("build side compiled once");
        let right_schema = right.schema().clone();
        // The key attribute *order* must be identical on both sides so the
        // per-row key codes — and therefore the routing — agree.
        let key_names = left_schema.common_attributes(&right_schema);
        let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        let build_keys = right_schema
            .projection_indices(&key_refs)
            .map_err(ExprError::from)?;
        let probe_keys = left_schema
            .projection_indices(&key_refs)
            .map_err(ExprError::from)?;

        let mut sink = SpillSink::new(
            right_schema.clone(),
            build_keys.clone(),
            ctx.spill_threshold(),
        );
        if let Err(err) = drain_into_sink(&mut right, ctx, &mut sink) {
            // Put the child back so close() still tears down its subtree.
            self.right = Some(right);
            return Err(err);
        }
        right.close(ctx);

        if !sink.spilled() {
            // In-memory completion: same hand-off as HashJoinStream.
            let batch = consolidate(ctx, &self.meta.label, &right_schema, sink.into_buffered())?;
            let rows = batch.num_rows();
            let build = match JoinBuild::new(&left_schema, batch) {
                Ok(build) => build,
                Err(err) => {
                    ctx.release(rows, 1);
                    return Err(ExprError::from(err));
                }
            };
            ctx.release(rows, 1);
            self.retained.grow_to(ctx, self.meta.id, rows);
            self.state = Some(JoinState::InMemory {
                build: Box::new(build),
            });
            return Ok(());
        }

        // Spilled: the probe side goes to disk too, routed with the same
        // level-0 seed on the same key attributes.
        let (mut manager, build_first) = sink.finish_spill(ctx)?;
        let mut probe_writers = PartitionWriters::create(
            &mut manager,
            ctx,
            &left_schema,
            probe_keys.clone(),
            spill_seed(0),
        )?;
        loop {
            match self.left.next_batch(ctx) {
                Ok(Some(chunk)) => {
                    let routed = probe_writers.route(ctx, &chunk);
                    consumed(ctx, &chunk);
                    routed?;
                }
                Ok(None) => break,
                Err(err) => return Err(err),
            }
        }
        let probe_first = probe_writers.finish()?;

        let threshold = ctx.spill_threshold().expect("spilled only under a budget");
        let margin = spill_margin(ctx);
        let mut work: Vec<((SpillHandle, SpillHandle), usize)> = build_first
            .into_iter()
            .zip(probe_first)
            .map(|pair| (pair, 1))
            .collect();
        let mut pairs = Vec::new();
        while let Some(((build, probe), level)) = work.pop() {
            // An anti-join emits every probe row of a partition whose build
            // side is empty, so only probe-empty pairs are skippable there.
            let skippable = match self.kind {
                StreamJoinKind::Anti => probe.rows() == 0,
                _ => build.rows() == 0 || probe.rows() == 0,
            };
            if skippable {
                build.delete();
                probe.delete();
                continue;
            }
            if build.rows() + margin <= threshold || level >= MAX_SPILL_LEVELS {
                pairs.push((build, probe));
                continue;
            }
            let seed = spill_seed(level);
            let new_build =
                repartition(ctx, &mut manager, &right_schema, &build_keys, &build, seed)?;
            build.delete();
            let new_probe =
                repartition(ctx, &mut manager, &left_schema, &probe_keys, &probe, seed)?;
            probe.delete();
            for pair in new_build.into_iter().zip(new_probe) {
                work.push((pair, level + 1));
            }
        }
        self.state = Some(JoinState::Spilled {
            _manager: manager,
            pairs,
            current: None,
        });
        Ok(())
    }
}

/// Load one partition pair: materialize the build file into a
/// [`JoinBuild`], open the probe file for streaming.
fn load_join_leaf(
    ctx: &mut StreamContext,
    id: OperatorId,
    label: &str,
    retained: &mut RetainedState,
    probe_schema: &Schema,
    build_schema: &Schema,
    (build_handle, probe_handle): (SpillHandle, SpillHandle),
) -> Result<Box<JoinLeaf>> {
    let mut chunks = Vec::new();
    let mut cursor = open_spill(&build_handle)?;
    loop {
        match next_spill_chunk(ctx, &mut cursor) {
            Ok(Some(chunk)) => {
                ctx.acquire(chunk.num_rows(), 1);
                chunks.push(chunk);
            }
            Ok(None) => break,
            Err(err) => {
                for chunk in &chunks {
                    consumed(ctx, chunk);
                }
                return Err(err);
            }
        }
    }
    drop(cursor);
    build_handle.delete();
    let batch = consolidate(ctx, label, build_schema, chunks)?;
    let rows = batch.num_rows();
    let build = match JoinBuild::new(probe_schema, batch) {
        Ok(build) => build,
        Err(err) => {
            ctx.release(rows, 1);
            return Err(ExprError::from(err));
        }
    };
    ctx.release(rows, 1);
    retained.grow_to(ctx, id, rows);
    let cursor = open_spill(&probe_handle)?;
    // The cursor keeps its own open file descriptor; unlinking now keeps
    // peak disk usage flat across leaves.
    probe_handle.delete();
    Ok(Box::new(JoinLeaf { build, cursor }))
}

impl BatchStream for SpillingHashJoinStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        self.ensure_state(ctx)?;
        match self.state.as_mut().expect("built above") {
            JoinState::InMemory { build } => {
                while let Some(chunk) = self.left.next_batch(ctx)? {
                    let probed = match self.kind {
                        StreamJoinKind::Natural => build.probe_natural(&chunk),
                        StreamJoinKind::Semi => build.probe_semi(&chunk, false),
                        StreamJoinKind::Anti => build.probe_semi(&chunk, true),
                    };
                    consumed(ctx, &chunk);
                    let KernelOutput { batch, probes } = probed.map_err(ExprError::from)?;
                    ctx.add_probes(self.meta.id, probes);
                    if batch.num_rows() > 0 {
                        return self.meta.emit(ctx, batch);
                    }
                }
                Ok(None)
            }
            JoinState::Spilled { pairs, current, .. } => loop {
                if let Some(leaf) = current.as_mut() {
                    match next_spill_chunk(ctx, &mut leaf.cursor)? {
                        Some(chunk) => {
                            ctx.acquire(chunk.num_rows(), 1);
                            let probed = match self.kind {
                                StreamJoinKind::Natural => leaf.build.probe_natural(&chunk),
                                StreamJoinKind::Semi => leaf.build.probe_semi(&chunk, false),
                                StreamJoinKind::Anti => leaf.build.probe_semi(&chunk, true),
                            };
                            consumed(ctx, &chunk);
                            let KernelOutput { batch, probes } = probed.map_err(ExprError::from)?;
                            ctx.add_probes(self.meta.id, probes);
                            if batch.num_rows() > 0 {
                                return self.meta.emit(ctx, batch);
                            }
                        }
                        None => {
                            self.retained.release(ctx);
                            *current = None;
                        }
                    }
                } else if let Some(pair) = pairs.pop() {
                    *current = Some(load_join_leaf(
                        ctx,
                        self.meta.id,
                        &self.meta.label,
                        &mut self.retained,
                        self.left.schema(),
                        &self.build_schema,
                        pair,
                    )?);
                } else {
                    return Ok(None);
                }
            },
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        self.retained.release(ctx);
        // Dropping the state drops the SpillManager, removing the spill
        // directory (and any files an abort left behind).
        self.state = None;
        self.left.close(ctx);
        if let Some(right) = self.right.as_mut() {
            right.close(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Spilling divide / great divide
// ---------------------------------------------------------------------------

/// How a [`SpillingDivideStream`] ended up after its build phase.
enum DivideState {
    /// The dividend fit: the quotient was computed in one pass.
    InMemory { out: ChunkCursor },
    /// The dividend was partitioned on the quotient attributes; each leaf
    /// is divided by the (replicated, in-memory) divisor on demand.
    Spilled {
        _manager: SpillManager,
        divisor: ColumnarBatch,
        leaves: Vec<SpillHandle>,
        out: Option<ChunkCursor>,
    },
}

/// Hybrid hash division (small and great): the divisor is always
/// materialized in memory; the *dividend* spills. Partitioning the dividend
/// on the quotient attributes with the divisor replicated into every
/// partition preserves the quotient (Law 2 of the division framework) —
/// each leaf's quotient rows are exactly the full quotient's rows for the
/// quotient-attribute values hashed into that leaf.
pub(crate) struct SpillingDivideStream {
    meta: OpMeta,
    dividend: Box<dyn BatchStream>,
    divisor: Option<Box<dyn BatchStream>>,
    great: bool,
    schema: Schema,
    state: Option<DivideState>,
    /// Divisor rows, accounted for the whole serve phase (it is replicated
    /// into every leaf).
    retained_divisor: RetainedState,
    /// Per-leaf coverage-state rows (released between leaves).
    retained: RetainedState,
    kernel_rows: Option<usize>,
}

impl SpillingDivideStream {
    pub(crate) fn new(
        meta: OpMeta,
        dividend: Box<dyn BatchStream>,
        divisor: Box<dyn BatchStream>,
        great: bool,
        schema: Schema,
    ) -> SpillingDivideStream {
        SpillingDivideStream {
            meta,
            dividend,
            divisor: Some(divisor),
            great,
            schema,
            state: None,
            retained_divisor: RetainedState::default(),
            retained: RetainedState::default(),
            kernel_rows: None,
        }
    }

    fn kernel_label(&self) -> &'static str {
        if self.great {
            "ColumnarCountingGreatDivision"
        } else {
            "ColumnarHashDivision"
        }
    }

    fn build(&mut self, ctx: &mut StreamContext) -> Result<()> {
        // Divisor first, exactly like DivideStream.
        let mut divisor = self.divisor.take().expect("divisor compiled once");
        let divisor_batch = match drain_to_batch(&mut divisor, ctx, &self.meta.label) {
            Ok(batch) => batch,
            Err(err) => {
                self.divisor = Some(divisor);
                return Err(err);
            }
        };
        divisor.close(ctx);
        let divisor_rows = divisor_batch.num_rows();
        ctx.release(divisor_rows, 1);
        self.retained_divisor
            .grow_to(ctx, self.meta.id, divisor_rows);

        // The quotient attributes: dividend attributes the divisor lacks.
        let dividend_schema = self.dividend.schema().clone();
        let key_names = dividend_schema.difference_attributes(divisor_batch.schema());
        let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        let key_cols = dividend_schema
            .projection_indices(&key_refs)
            .map_err(ExprError::from)?;

        let mut sink = SpillSink::new(
            dividend_schema.clone(),
            key_cols.clone(),
            ctx.spill_threshold(),
        );
        drain_into_sink(&mut self.dividend, ctx, &mut sink)?;

        if !sink.spilled() {
            // In-memory completion: feed the buffered chunks through the
            // streaming coverage state in arrival order — the same
            // consume/finish sequence (and so the same quotient) as
            // DivideStream.
            let mut state = StreamingGreatDivide::new(&dividend_schema, divisor_batch)
                .map_err(ExprError::from)?;
            let buffered = sink.into_buffered();
            let mut first_err = None;
            for chunk in &buffered {
                if first_err.is_none() {
                    let probes = state.consume(chunk);
                    ctx.add_probes(self.meta.id, probes);
                    consumed(ctx, chunk);
                    self.retained.grow_to(ctx, self.meta.id, state.groups());
                    first_err = ctx.check_guard(&self.meta.label).err();
                } else {
                    consumed(ctx, chunk);
                }
            }
            if let Some(err) = first_err {
                return Err(err);
            }
            let quotient = state.finish().map_err(ExprError::from)?;
            self.kernel_rows = Some(quotient.num_rows());
            self.retained.release(ctx);
            self.retained_divisor.release(ctx);
            ctx.acquire(quotient.num_rows(), 1);
            self.state = Some(DivideState::InMemory {
                out: ChunkCursor::new(quotient),
            });
            return Ok(());
        }

        let (mut manager, first) = sink.finish_spill(ctx)?;
        let threshold = ctx.spill_threshold().expect("spilled only under a budget");
        let margin = spill_margin(ctx);
        // A leaf fits when the replicated divisor, the leaf's coverage
        // state (≤ its row count) and one in-flight chunk stay under the
        // budget together.
        let fits = move |rows: usize| divisor_rows + rows + margin <= threshold;
        let leaves =
            plan_single_leaves(ctx, &mut manager, &dividend_schema, &key_cols, first, &fits)?;
        self.kernel_rows = Some(0);
        self.state = Some(DivideState::Spilled {
            _manager: manager,
            divisor: divisor_batch,
            leaves,
            out: None,
        });
        Ok(())
    }
}

/// Divide one dividend partition by the (replicated) divisor.
fn divide_leaf(
    ctx: &mut StreamContext,
    id: OperatorId,
    label: &str,
    retained: &mut RetainedState,
    dividend_schema: &Schema,
    divisor: &ColumnarBatch,
    handle: SpillHandle,
) -> Result<ColumnarBatch> {
    let mut state =
        StreamingGreatDivide::new(dividend_schema, divisor.clone()).map_err(ExprError::from)?;
    let mut cursor = open_spill(&handle)?;
    while let Some(chunk) = next_spill_chunk(ctx, &mut cursor)? {
        ctx.acquire(chunk.num_rows(), 1);
        let probes = state.consume(&chunk);
        ctx.add_probes(id, probes);
        consumed(ctx, &chunk);
        retained.grow_to(ctx, id, state.groups());
        ctx.check_guard(label)?;
    }
    drop(cursor);
    handle.delete();
    let quotient = state.finish().map_err(ExprError::from)?;
    retained.release(ctx);
    ctx.acquire(quotient.num_rows(), 1);
    Ok(quotient)
}

impl BatchStream for SpillingDivideStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.state.is_none() {
            self.build(ctx)?;
        }
        match self.state.as_mut().expect("built above") {
            DivideState::InMemory { out } => match out.next(ctx) {
                Some(chunk) => self.meta.emit(ctx, chunk),
                None => Ok(None),
            },
            DivideState::Spilled {
                divisor,
                leaves,
                out,
                ..
            } => loop {
                if let Some(cursor) = out.as_mut() {
                    if let Some(chunk) = cursor.next(ctx) {
                        return self.meta.emit(ctx, chunk);
                    }
                    *out = None;
                }
                match leaves.pop() {
                    Some(handle) => {
                        let quotient = divide_leaf(
                            ctx,
                            self.meta.id,
                            &self.meta.label,
                            &mut self.retained,
                            self.dividend.schema(),
                            divisor,
                            handle,
                        )?;
                        *self.kernel_rows.get_or_insert(0) += quotient.num_rows();
                        *out = Some(ChunkCursor::new(quotient));
                    }
                    None => {
                        self.retained_divisor.release(ctx);
                        return Ok(None);
                    }
                }
            },
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        if !self.meta.closed {
            if let Some(rows) = self.kernel_rows {
                ctx.stats.record(self.kernel_label(), rows, false, false);
            }
        }
        self.meta.record(ctx);
        self.retained.release(ctx);
        self.retained_divisor.release(ctx);
        if let Some(state) = self.state.as_mut() {
            match state {
                DivideState::InMemory { out } => out.release(ctx),
                DivideState::Spilled { out, .. } => {
                    if let Some(out) = out.as_mut() {
                        out.release(ctx);
                    }
                }
            }
        }
        self.state = None;
        self.dividend.close(ctx);
        if let Some(divisor) = self.divisor.as_mut() {
            divisor.close(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Spilling grouped aggregation
// ---------------------------------------------------------------------------

/// How a [`SpillingAggregateStream`] ended up after its build phase.
enum AggState {
    InMemory {
        out: ChunkCursor,
    },
    Spilled {
        _manager: SpillManager,
        leaves: Vec<SpillHandle>,
        out: Option<ChunkCursor>,
    },
}

/// Hybrid hash aggregation: the input is partitioned on the *grouping*
/// attributes, so every group lands wholly inside one partition and the
/// per-partition aggregates are exact — their union is the full result.
/// Compiled only for a non-empty `GROUP BY` (a global aggregate has
/// nothing to partition on).
pub(crate) struct SpillingAggregateStream {
    meta: OpMeta,
    child: Box<dyn BatchStream>,
    group_by: Vec<String>,
    aggregates: Vec<AggregateCall>,
    schema: Schema,
    state: Option<AggState>,
}

impl SpillingAggregateStream {
    pub(crate) fn new(
        meta: OpMeta,
        child: Box<dyn BatchStream>,
        group_by: Vec<String>,
        aggregates: Vec<AggregateCall>,
        schema: Schema,
    ) -> SpillingAggregateStream {
        SpillingAggregateStream {
            meta,
            child,
            group_by,
            aggregates,
            schema,
            state: None,
        }
    }

    fn build(&mut self, ctx: &mut StreamContext) -> Result<()> {
        let input_schema = self.child.schema().clone();
        let key_refs: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
        let key_cols = input_schema
            .projection_indices(&key_refs)
            .map_err(ExprError::from)?;
        let mut sink = SpillSink::new(
            input_schema.clone(),
            key_cols.clone(),
            ctx.spill_threshold(),
        );
        drain_into_sink(&mut self.child, ctx, &mut sink)?;

        if !sink.spilled() {
            // In-memory completion: one consolidated kernel run, the same
            // sequence (and result) as the plain blocking aggregate.
            let batch = consolidate(ctx, &self.meta.label, &input_schema, sink.into_buffered())?;
            let result = aggregate_batch(
                ctx,
                self.meta.id,
                &self.meta.label,
                &self.group_by,
                &self.aggregates,
                batch,
            )?;
            self.state = Some(AggState::InMemory {
                out: ChunkCursor::new(result),
            });
            return Ok(());
        }

        let (mut manager, first) = sink.finish_spill(ctx)?;
        let threshold = ctx.spill_threshold().expect("spilled only under a budget");
        let margin = spill_margin(ctx);
        // During a leaf both the consolidated input and its aggregate
        // (≤ input rows) are resident.
        let fits = move |rows: usize| 2 * rows + margin <= threshold;
        let leaves = plan_single_leaves(ctx, &mut manager, &input_schema, &key_cols, first, &fits)?;
        self.state = Some(AggState::Spilled {
            _manager: manager,
            leaves,
            out: None,
        });
        Ok(())
    }
}

/// Run the aggregation kernel over one consolidated (and already acquired)
/// input batch, swapping the accounting to the result.
fn aggregate_batch(
    ctx: &mut StreamContext,
    id: OperatorId,
    label: &str,
    group_by: &[String],
    aggregates: &[AggregateCall],
    batch: ColumnarBatch,
) -> Result<ColumnarBatch> {
    let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
    let result = kernels::hash_aggregate(&batch, &refs, aggregates);
    let input_rows = batch.num_rows();
    ctx.release(input_rows, 1);
    let result = result.map_err(ExprError::from)?;
    ctx.note_retained(id, input_rows + result.num_rows());
    ctx.acquire(result.num_rows(), 1);
    if let Err(err) = ctx.check_guard(label) {
        ctx.release(result.num_rows(), 1);
        return Err(err);
    }
    Ok(result)
}

/// Aggregate one on-disk partition.
fn aggregate_leaf(
    ctx: &mut StreamContext,
    id: OperatorId,
    label: &str,
    input_schema: &Schema,
    group_by: &[String],
    aggregates: &[AggregateCall],
    handle: SpillHandle,
) -> Result<ColumnarBatch> {
    let mut chunks = Vec::new();
    let mut cursor = open_spill(&handle)?;
    loop {
        match next_spill_chunk(ctx, &mut cursor) {
            Ok(Some(chunk)) => {
                ctx.acquire(chunk.num_rows(), 1);
                chunks.push(chunk);
            }
            Ok(None) => break,
            Err(err) => {
                for chunk in &chunks {
                    consumed(ctx, chunk);
                }
                return Err(err);
            }
        }
    }
    drop(cursor);
    handle.delete();
    let batch = consolidate(ctx, label, input_schema, chunks)?;
    aggregate_batch(ctx, id, label, group_by, aggregates, batch)
}

impl BatchStream for SpillingAggregateStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, ctx: &mut StreamContext) -> Result<Option<ColumnarBatch>> {
        if self.state.is_none() {
            self.build(ctx)?;
        }
        match self.state.as_mut().expect("built above") {
            AggState::InMemory { out } => match out.next(ctx) {
                Some(chunk) => self.meta.emit(ctx, chunk),
                None => Ok(None),
            },
            AggState::Spilled { leaves, out, .. } => loop {
                if let Some(cursor) = out.as_mut() {
                    if let Some(chunk) = cursor.next(ctx) {
                        return self.meta.emit(ctx, chunk);
                    }
                    *out = None;
                }
                match leaves.pop() {
                    Some(handle) => {
                        let result = aggregate_leaf(
                            ctx,
                            self.meta.id,
                            &self.meta.label,
                            self.child.schema(),
                            &self.group_by,
                            &self.aggregates,
                            handle,
                        )?;
                        if result.num_rows() > 0 {
                            *out = Some(ChunkCursor::new(result));
                        } else {
                            ctx.release(result.num_rows(), 1);
                        }
                    }
                    None => return Ok(None),
                }
            },
        }
    }

    fn close(&mut self, ctx: &mut StreamContext) {
        self.meta.record(ctx);
        if let Some(state) = self.state.as_mut() {
            match state {
                AggState::InMemory { out } => out.release(ctx),
                AggState::Spilled { out, .. } => {
                    if let Some(out) = out.as_mut() {
                        out.release(ctx);
                    }
                }
            }
        }
        self.state = None;
        self.child.close(ctx);
    }
}
