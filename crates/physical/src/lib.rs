//! # div-physical
//!
//! The physical execution layer of the *division-laws* workspace.
//!
//! The paper's premise — backed by Leinders & Van den Bussche (PODS 2005) and
//! by the algorithm studies it cites (Graefe, ICDE 1989; Graefe & Cole, TODS
//! 1995; Rantzau et al., Information Systems 2003) — is that relational
//! division must be executed by *special-purpose physical operators*: any
//! simulation through the basic algebra produces intermediate results of
//! quadratic size. This crate provides those operators and the scaffolding to
//! run whole plans with them:
//!
//! * [`division`] — four genuine small-divide algorithms (nested-loop,
//!   hash-division, merge-sort division, counting division) plus the
//!   basic-operator *simulation* baseline whose intermediate blow-up the
//!   benchmarks measure,
//! * [`great_divide`] — group-loop, hash and sort-based algorithms for the
//!   great divide,
//! * [`plan`] / [`exec`] — a physical plan tree and an executor that tracks
//!   per-operator row counts and intermediate-result sizes,
//! * [`planner`] — lowering from [`div_expr::LogicalPlan`] with a configurable
//!   choice of division/join algorithm,
//! * [`parallel`] — partition-parallel division following the strategies the
//!   paper attaches to Law 2 (dividend range partitioning under condition
//!   `c2`) and Law 13 (divisor hash partitioning on the group attributes `C`),
//! * [`columnar_exec`] — the batch-at-a-time executor over
//!   [`div_columnar::ColumnarBatch`]es, selected through
//!   [`planner::ExecutionBackend::Columnar`] and falling back to row
//!   execution for operators without a vectorized kernel.
//!
//! All algorithms are validated against the reference semantics of
//! [`div_algebra`] by unit tests here and by the cross-crate property tests in
//! `tests/physical_vs_reference.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar_exec;
pub mod division;
pub mod exec;
pub mod great_divide;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod stats;

pub use columnar_exec::{execute_columnar, execute_columnar_with_stats};
pub use division::DivisionAlgorithm;
pub use exec::{execute, execute_on_backend, execute_with_config, execute_with_stats};
pub use great_divide::GreatDivideAlgorithm;
pub use plan::PhysicalPlan;
pub use planner::{plan_query, ExecutionBackend, PlannerConfig};
pub use stats::ExecStats;

/// Convenient result alias (errors come from the algebra / plan layers).
pub type Result<T> = std::result::Result<T, div_expr::ExprError>;
