//! # div-physical
//!
//! The physical execution layer of the *division-laws* workspace.
//!
//! The paper's premise — backed by Leinders & Van den Bussche (PODS 2005) and
//! by the algorithm studies it cites (Graefe, ICDE 1989; Graefe & Cole, TODS
//! 1995; Rantzau et al., Information Systems 2003) — is that relational
//! division must be executed by *special-purpose physical operators*: any
//! simulation through the basic algebra produces intermediate results of
//! quadratic size. This crate provides those operators and the scaffolding to
//! run whole plans with them:
//!
//! * [`division`] — four genuine small-divide algorithms (nested-loop,
//!   hash-division, merge-sort division, counting division) plus the
//!   basic-operator *simulation* baseline whose intermediate blow-up the
//!   benchmarks measure,
//! * [`great_divide`] — group-loop, hash and sort-based algorithms for the
//!   great divide,
//! * [`plan`] / [`exec`] — a physical plan tree and an executor that tracks
//!   per-operator row counts and intermediate-result sizes,
//! * [`planner`] — lowering from [`div_expr::LogicalPlan`] with a configurable
//!   choice of division/join algorithm,
//! * [`parallel`] — partition-parallel *row* division following the
//!   strategies the paper attaches to Law 2 (dividend range partitioning
//!   under condition `c2`) and Law 13 (divisor hash partitioning on the
//!   group attributes `C`),
//! * [`columnar_exec`] — the batch-at-a-time executor over
//!   [`div_columnar::ColumnarBatch`]es, selected through
//!   [`planner::ExecutionBackend::Columnar`]; every operator runs on a
//!   vectorized kernel (no row fallback),
//! * [`parallel_columnar`] — the same Law 2 / Law 13 partition strategies
//!   applied to the *columnar* kernels: batches are hash-partitioned and the
//!   divide/great-divide/join/filter kernels run on crossbeam scoped threads,
//!   selected through [`planner::PlannerConfig::parallelism`],
//! * [`stream`] — the Volcano-style streaming executor
//!   ([`stream::StreamExecutor`]): scans chunk base tables into
//!   [`planner::PlannerConfig::batch_size`]-row batches, pipelineable
//!   operators transform them one at a time, and only genuinely blocking
//!   operators buffer — memory scales with pipeline depth, not with the
//!   largest intermediate, and early-terminated consumers short-circuit the
//!   scans. This is the executor behind `div_sql`'s incremental `Cursor`,
//! * [`guard`] — cooperative query governance: a per-cursor
//!   [`guard::QueryGuard`] (cancellation token, wall-clock deadline,
//!   resident-row budget) checked at every batch boundary of the streaming
//!   executor and every operator of the materializing ones,
//! * [`failpoint`] — named fault-injection sites at operator
//!   open/next_batch/close, armed per-test (cargo feature `failpoints`,
//!   on by default; disarmed cost is one relaxed atomic load),
//! * [`trace`] — the observability layer: a per-operator span tree
//!   ([`trace::QueryTrace`]) recording rows, probes, retained state and
//!   (when [`planner::PlannerConfig::tracing`] is on) wall-clock time for
//!   every operator of every execution path; finished traces land in
//!   [`stats::ExecStats::operators`] and feed `EXPLAIN ANALYZE`.
//!
//! All algorithms are validated against the reference semantics of
//! [`div_algebra`] by unit tests here and by the cross-crate property tests in
//! `tests/physical_vs_reference.rs`.
//!
//! Running one plan on all three execution strategies:
//!
//! ```
//! use div_expr::{Catalog, PlanBuilder};
//! use div_physical::{execute_with_config, plan_query, ExecutionBackend, PlannerConfig};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(
//!     "supplies",
//!     div_algebra::relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] },
//! );
//! catalog.register("wanted", div_algebra::relation! { ["p#"] => [1], [2] });
//! let logical = PlanBuilder::scan("supplies")
//!     .divide(PlanBuilder::scan("wanted"))
//!     .build();
//!
//! let row = PlannerConfig::default(); // row-at-a-time
//! let columnar = PlannerConfig::with_backend(ExecutionBackend::Columnar);
//! let parallel = PlannerConfig::with_parallelism(4); // columnar, 4 partitions
//! let mut results = Vec::new();
//! for config in [row, columnar, parallel] {
//!     let plan = plan_query(&logical, &config)?;
//!     results.push(execute_with_config(&plan, &catalog, &config)?.0);
//! }
//! assert_eq!(results[0], results[1]);
//! assert_eq!(results[1], results[2]);
//! # Ok::<(), div_expr::ExprError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar_exec;
pub mod division;
pub mod exec;
pub mod failpoint;
pub mod great_divide;
pub mod guard;
pub mod parallel;
pub mod parallel_columnar;
pub mod plan;
pub mod planner;
pub mod stats;
pub mod stream;
mod stream_spill;
pub mod trace;

pub use columnar_exec::{
    execute_columnar, execute_columnar_parallel_with_stats, execute_columnar_with_stats,
};
pub use division::DivisionAlgorithm;
pub use exec::{execute, execute_on_backend, execute_with_config, execute_with_stats};
pub use failpoint::FailAction;
pub use great_divide::GreatDivideAlgorithm;
pub use guard::{CancelToken, QueryGuard};
pub use plan::PhysicalPlan;
pub use planner::{plan_query, ExecutionBackend, PlannerConfig};
pub use stats::ExecStats;
pub use stream::{compile_stream, BatchStream, StreamContext, StreamExecutor};
pub use trace::{OperatorId, OperatorStats, QueryTrace};

/// Convenient result alias (errors come from the algebra / plan layers).
pub type Result<T> = std::result::Result<T, div_expr::ExprError>;
