//! `div_server`: concurrent multi-client serving over a shared
//! [`div_sql::Engine`].
//!
//! The engine already serves repeated traffic well on one thread (prepared
//! statements, streaming cursors, metrics); this crate is the missing
//! *front door*. One process hosts one engine behind a TCP listener; many
//! clients connect, prepare, query and mutate concurrently:
//!
//! ```text
//! clients ──TCP──► accept loop ──bounded queue──► worker pool ──► Engine
//!                      │ (full)                      │             (Arc,
//!                      └► ERR BUSY                   └► Cursor      shared)
//! ```
//!
//! * **Thread-per-session workers** serve a line-delimited text protocol
//!   (`QUERY`, `PREPARE`/`EXECUTE`, `EXPLAIN [ANALYZE]`, `METRICS`,
//!   `MUTATE`, `CLOSE` — see [`protocol`]). Results stream batch-at-a-time
//!   from the engine's [`div_sql::Cursor`], so early client disconnects
//!   short-circuit the source scans.
//! * **Admission control**: a bounded queue between the accept loop and the
//!   workers turns overload into a fast, typed, retryable `ERR BUSY`
//!   instead of unbounded queueing ([`ServerConfig::queue_depth`]).
//! * **Safety under mutation**: every statement runs against one engine
//!   catalog snapshot; sessions transparently re-prepare statements that
//!   went stale under a concurrent `MUTATE`, so clients never see a mix of
//!   old and new catalog states.
//! * **Robustness**: per-connection read timeouts, a request-size cap, and
//!   graceful shutdown that drains in-flight sessions
//!   ([`ServerHandle::shutdown`]).
//! * **Lifecycle governance**: every statement runs under a
//!   [`div_sql::QueryGuard`] — a per-statement cancellation token
//!   (`SESSION` reports the id, `CANCEL <id>` from any other connection
//!   trips it), plus the server-wide default deadline and resident-row
//!   budget of [`ServerConfig::default_deadline`] /
//!   [`ServerConfig::default_budget_rows`]. Aborts surface as the typed,
//!   non-retryable wire codes `CANCELLED`, `DEADLINE` and `MEMORY`, and
//!   the worker is freed at the next batch boundary. The bundled
//!   [`Client`] can retry the *retryable* codes with jittered exponential
//!   backoff ([`Client::with_retry`], [`RetryPolicy`]).
//!
//! ```no_run
//! use div_expr::Catalog;
//! use div_server::{Client, Server, ServerConfig};
//! use div_sql::Engine;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(Catalog::new()));
//! let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! client.register("parts", &["p#"], &[vec![1i64.into()], vec![2i64.into()]])?;
//! let result = client.query("SELECT p# FROM parts")?;
//! assert_eq!(result.rows.len(), 2);
//! client.close()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientError, QueryResult, RetryPolicy};
pub use metrics::ServerMetrics;
pub use protocol::ErrorCode;
pub use server::{Server, ServerConfig, ServerHandle};
