//! The TCP front door: accept loop, admission control and the session
//! worker pool.
//!
//! ```text
//! accept loop ──try_send──► bounded channel ──recv──► worker 1..N
//!      │  (queue full)                                  │
//!      └─► ERR BUSY + close                             └─► run_session
//! ```
//!
//! Admission control is the bounded channel: its capacity is the connection
//! backlog the server is willing to hold beyond the sessions already being
//! served. When the queue is full the accept loop answers `ERR BUSY` (a
//! retryable error) and closes — overload produces fast, typed rejection
//! instead of unbounded queueing.

use crate::metrics::ServerMetrics;
use crate::protocol::{err_line, ErrorCode};
use crate::session::{run_session, CancelRegistry};
use crossbeam::channel::{self, TrySendError};
use div_sql::Engine;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session worker threads: the number of connections served
    /// concurrently.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before
    /// admission control starts answering `ERR BUSY`.
    pub queue_depth: usize,
    /// How long a connection may sit idle (no complete request line)
    /// before the server closes it with `ERR TIMEOUT`.
    pub read_timeout: Duration,
    /// Maximum bytes of one request line; longer requests are answered
    /// with `ERR TOO_LARGE` and the connection is closed.
    pub max_request_bytes: usize,
    /// Default wall-clock deadline for every statement a session runs.
    /// A statement that outlives it aborts at its next batch boundary with
    /// `ERR DEADLINE`. `None` (the default) leaves statements governed
    /// only by the engine's own configuration.
    pub default_deadline: Option<Duration>,
    /// Default resident-row memory budget for every statement a session
    /// runs; exceeding it aborts the statement with `ERR MEMORY`. `None`
    /// (the default) defers to the engine's own configuration.
    pub default_budget_rows: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 16,
            read_timeout: Duration::from_secs(30),
            max_request_bytes: 64 * 1024,
            default_deadline: None,
            default_budget_rows: None,
        }
    }
}

/// A running server: bind with [`Server::bind`], stop with
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle on a running server. Dropping the handle shuts the server down
/// (gracefully: in-flight requests finish).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: Arc<Engine>,
    metrics: Arc<ServerMetrics>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `engine` with the given config. Returns immediately; serving
    /// happens on background threads owned by the returned handle.
    pub fn bind(addr: &str, engine: Arc<Engine>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::default());
        let cancels = Arc::new(CancelRegistry::default());
        let (tx, rx) = channel::bounded::<TcpStream>(config.queue_depth.max(1));

        // A failed worker spawn (thread exhaustion, resource limits)
        // degrades the pool instead of panicking out of `bind`; only a
        // pool of zero workers is a start-up error, because such a server
        // would accept connections it can never serve.
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers.max(1));
        let mut spawn_failure: Option<io::Error> = None;
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let engine = Arc::clone(&engine);
            let config = config.clone();
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let cancels = Arc::clone(&cancels);
            let spawned = std::thread::Builder::new()
                .name(format!("div-server-worker-{i}"))
                .spawn(move || {
                    // recv fails only when the accept loop dropped the
                    // sender: shutdown. A session already handed over is
                    // served to completion (graceful drain).
                    while let Ok(stream) = rx.recv() {
                        run_session(stream, &engine, &config, &metrics, &shutdown, &cancels);
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(err) => spawn_failure = Some(err),
            }
        }
        drop(rx);
        if workers.is_empty() {
            drop(tx); // no receivers anyway, but make the teardown explicit
            return Err(spawn_failure
                .unwrap_or_else(|| io::Error::other("no session workers could be spawned")));
        }

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("div-server-accept".to_string())
                .spawn(move || {
                    accept_loop(listener, tx, &shutdown, &metrics);
                })
        };
        let accept_thread = match accept_thread {
            Ok(handle) => handle,
            Err(err) => {
                // Spawning the accept loop failed after the workers came
                // up: the sender went down with the failed closure, so the
                // workers see a disconnect and exit; join them before
                // surfacing the error.
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(err);
            }
        };

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            engine,
            metrics,
            accept_thread: Some(accept_thread),
            workers,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: channel::Sender<TcpStream>,
    shutdown: &AtomicBool,
    metrics: &ServerMetrics,
) {
    // `tx` is moved in; dropping it on return disconnects the workers.
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        match tx.try_send(stream) {
            Ok(()) => ServerMetrics::bump(&metrics.connections_accepted),
            Err(TrySendError::Full(mut stream)) => {
                // Admission control: typed, retryable rejection instead of
                // queueing without bound.
                ServerMetrics::bump(&metrics.connections_rejected);
                let line = err_line(ErrorCode::Busy, "server at capacity, retry later");
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                // Dropping the stream closes the connection.
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on (with the actual port when
    /// bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (shared: callers may query or mutate it directly
    /// while the server runs — that is the point of the snapshot scheme).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The server-side metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Stop accepting, drain in-flight sessions, and join every server
    /// thread. Sessions waiting for their next request are closed with
    /// `ERR SHUTDOWN`; a request already being served runs to completion.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The accept loop only re-checks the flag after `accept` returns;
        // poke it with a throwaway connection so it wakes up now.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // The accept thread dropped the channel sender on exit, so workers
        // drain whatever was queued and then see the disconnect.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}
