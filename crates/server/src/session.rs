//! One client session: the per-connection request loop.
//!
//! A session owns one [`TcpStream`] and serves requests sequentially until
//! the client closes, sends `CLOSE`, idles past the read timeout, exceeds
//! the request-size limit, or the server starts draining for shutdown.
//! Results stream batch-at-a-time straight off the engine's [`Cursor`], so
//! a client that stops reading (or disconnects) stops the source scans
//! short instead of forcing full materialization.

use crate::metrics::ServerMetrics;
use crate::protocol::{self, code_for, encode_row, encode_schema, err_line, ErrorCode, Request};
use crate::server::ServerConfig;
use div_algebra::Relation;
use div_sql::{Engine, Error, Params, PreparedStatement};
use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How often a blocked read wakes up to check the shutdown flag and the
/// idle deadline.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Why the session's line reader stopped producing.
enum ReadOutcome {
    /// One complete request line (without the trailing newline).
    Line(String),
    /// The line grew past [`ServerConfig::max_request_bytes`].
    TooLarge,
    /// No complete line arrived within [`ServerConfig::read_timeout`].
    IdleTimeout,
    /// The server is draining; stop between requests.
    Shutdown,
    /// The client closed the connection (EOF) or the socket failed.
    Disconnected,
}

/// Reads newline-delimited request lines off the socket, enforcing the
/// request-size cap and the idle timeout while staying responsive to the
/// server's shutdown flag (the socket is polled with a short read timeout).
struct LineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    max_line: usize,
    idle: Duration,
    shutdown: &'a AtomicBool,
}

impl<'a> LineReader<'a> {
    fn new(
        stream: &'a TcpStream,
        max_line: usize,
        idle: Duration,
        shutdown: &'a AtomicBool,
    ) -> LineReader<'a> {
        LineReader {
            stream,
            buf: Vec::new(),
            max_line,
            idle,
            shutdown,
        }
    }

    fn next_line(&mut self) -> ReadOutcome {
        let deadline = Instant::now() + self.idle;
        loop {
            // A complete line may already be buffered from a previous read.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                return ReadOutcome::Line(text.trim_end_matches('\r').to_string());
            }
            if self.buf.len() > self.max_line {
                return ReadOutcome::TooLarge;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return ReadOutcome::Shutdown;
            }
            if Instant::now() >= deadline {
                return ReadOutcome::IdleTimeout;
            }
            let mut chunk = [0u8; 4096];
            match (&mut &*self.stream).read(&mut chunk) {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }
}

/// Serve one connection to completion. Called on a worker thread; never
/// panics outward on socket errors (a vanished client is normal).
pub(crate) fn run_session(
    stream: TcpStream,
    engine: &Engine,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
) {
    // Short socket timeout so reads stay responsive to the shutdown flag;
    // the *logical* idle timeout is enforced by the line reader.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_stream);
    let mut reader = LineReader::new(
        &stream,
        config.max_request_bytes,
        config.read_timeout,
        shutdown,
    );
    // Session-local prepared statements, by client-chosen name.
    let mut prepared: HashMap<String, PreparedStatement> = HashMap::new();

    loop {
        match reader.next_line() {
            ReadOutcome::Line(line) => {
                let outcome = serve_request(&line, engine, metrics, &mut prepared, &mut writer);
                ServerMetrics::bump(&metrics.requests_served);
                match outcome {
                    RequestOutcome::Continue => {}
                    RequestOutcome::CloseSession => return,
                    RequestOutcome::ClientGone => {
                        ServerMetrics::bump(&metrics.streams_cancelled);
                        return;
                    }
                }
            }
            ReadOutcome::TooLarge => {
                ServerMetrics::bump(&metrics.requests_served);
                ServerMetrics::bump(&metrics.requests_failed);
                let _ = terminal(
                    &mut writer,
                    &err_line(
                        ErrorCode::TooLarge,
                        &format!(
                            "request exceeds {} bytes; closing connection",
                            config.max_request_bytes
                        ),
                    ),
                );
                return;
            }
            ReadOutcome::IdleTimeout => {
                let _ = terminal(
                    &mut writer,
                    &err_line(ErrorCode::Timeout, "idle connection closed"),
                );
                return;
            }
            ReadOutcome::Shutdown => {
                let _ = terminal(
                    &mut writer,
                    &err_line(ErrorCode::Shutdown, "server is shutting down"),
                );
                return;
            }
            ReadOutcome::Disconnected => return,
        }
    }
}

/// What serving one request decided about the session.
enum RequestOutcome {
    Continue,
    CloseSession,
    /// A write failed mid-response: the client disconnected while we were
    /// streaming. The open cursor was dropped, short-circuiting its scans.
    ClientGone,
}

/// Write `line` and flush; any failure means the client is gone.
fn terminal(writer: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn serve_request(
    line: &str,
    engine: &Engine,
    metrics: &ServerMetrics,
    prepared: &mut HashMap<String, PreparedStatement>,
    writer: &mut BufWriter<TcpStream>,
) -> RequestOutcome {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(bad) => {
            ServerMetrics::bump(&metrics.requests_failed);
            return match terminal(writer, &err_line(ErrorCode::Malformed, &bad.0)) {
                Ok(()) => RequestOutcome::Continue,
                Err(_) => RequestOutcome::ClientGone,
            };
        }
    };
    let result = match request {
        Request::Ping => terminal(writer, "OK pong").map(|()| RequestOutcome::Continue),
        Request::Close => {
            let _ = terminal(writer, "OK bye");
            return RequestOutcome::CloseSession;
        }
        Request::Query(sql) => match engine.query(&sql) {
            Ok(cursor) => return stream_cursor(cursor, metrics, writer),
            Err(err) => engine_error(&err, metrics, writer),
        },
        Request::Prepare { name, sql } => match engine.prepare(&sql) {
            Ok(statement) => {
                let detail = format!(
                    "OK prepared {name} parameters={}",
                    statement.parameters().len()
                );
                prepared.insert(name, statement);
                terminal(writer, &detail).map(|()| RequestOutcome::Continue)
            }
            Err(err) => engine_error(&err, metrics, writer),
        },
        Request::Execute { name, params } => {
            let statement = match prepared.get(&name) {
                Some(statement) => statement,
                None => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    let msg = format!("no prepared statement named `{name}` in this session");
                    return match terminal(writer, &err_line(ErrorCode::UnknownStatement, &msg)) {
                        Ok(()) => RequestOutcome::Continue,
                        Err(_) => RequestOutcome::ClientGone,
                    };
                }
            };
            let mut bound = Params::new();
            for (key, value) in params {
                bound = bound.bind(key, value);
            }
            match statement.execute(engine, &bound) {
                Ok(cursor) => return stream_cursor(cursor, metrics, writer),
                Err(Error::StalePlan { .. }) => {
                    // The catalog moved under the cached plan. Re-prepare
                    // transparently: the client keeps its statement name and
                    // never sees a stale result.
                    match engine.prepare(statement.sql()) {
                        Ok(fresh) => {
                            ServerMetrics::bump(&metrics.stale_replans);
                            let retry = fresh.execute(engine, &bound);
                            prepared.insert(name, fresh);
                            match retry {
                                Ok(cursor) => return stream_cursor(cursor, metrics, writer),
                                Err(err) => engine_error(&err, metrics, writer),
                            }
                        }
                        Err(err) => engine_error(&err, metrics, writer),
                    }
                }
                Err(err) => engine_error(&err, metrics, writer),
            }
        }
        Request::Explain { sql, analyze } => {
            let report = if analyze {
                engine.explain_analyze(&sql)
            } else {
                engine.explain(&sql)
            };
            match report {
                Ok(explain) => {
                    let rendered = explain.to_string();
                    (|| {
                        for plan_line in rendered.lines() {
                            writer.write_all(b"PLAN ")?;
                            writer.write_all(plan_line.as_bytes())?;
                            writer.write_all(b"\n")?;
                        }
                        terminal(writer, "OK")
                    })()
                    .map(|()| RequestOutcome::Continue)
                }
                Err(err) => engine_error(&err, metrics, writer),
            }
        }
        Request::Metrics => {
            let json = format!(
                "METRICS {{\"server\": {}, \"engine\": {}}}",
                metrics.to_json(),
                engine.metrics().to_json()
            );
            (|| {
                writer.write_all(json.as_bytes())?;
                writer.write_all(b"\n")?;
                terminal(writer, "OK")
            })()
            .map(|()| RequestOutcome::Continue)
        }
        Request::Register {
            table,
            columns,
            rows,
        } => {
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            match Relation::from_rows(names, rows) {
                Ok(relation) => {
                    let version = engine.mutate_catalog(|catalog| {
                        catalog.register(table.as_str(), relation);
                        catalog.version()
                    });
                    terminal(writer, &format!("OK version {version}"))
                        .map(|()| RequestOutcome::Continue)
                }
                Err(err) => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    terminal(writer, &err_line(ErrorCode::Plan, &err.to_string()))
                        .map(|()| RequestOutcome::Continue)
                }
            }
        }
        Request::Drop(table) => {
            let dropped = engine
                .mutate_catalog(|catalog| catalog.unregister(&table).map(|_| catalog.version()));
            match dropped {
                Ok(version) => terminal(writer, &format!("OK version {version}"))
                    .map(|()| RequestOutcome::Continue),
                Err(err) => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    terminal(writer, &err_line(ErrorCode::Plan, &err.to_string()))
                        .map(|()| RequestOutcome::Continue)
                }
            }
        }
    };
    match result {
        Ok(outcome) => outcome,
        Err(_) => RequestOutcome::ClientGone,
    }
}

/// Report an engine error as its typed `ERR` line.
fn engine_error(
    err: &Error,
    metrics: &ServerMetrics,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<RequestOutcome> {
    ServerMetrics::bump(&metrics.requests_failed);
    terminal(writer, &err_line(code_for(err), &err.to_string())).map(|()| RequestOutcome::Continue)
}

/// Stream a cursor's result: `SCHEMA`, then one `ROW` line per tuple
/// (flushed batch-at-a-time), then `OK <n> rows`. A failed write drops the
/// cursor immediately — the executor's early-termination contract stops the
/// source scans short for clients that went away mid-result.
fn stream_cursor(
    mut cursor: div_sql::Cursor,
    metrics: &ServerMetrics,
    writer: &mut BufWriter<TcpStream>,
) -> RequestOutcome {
    let schema_line = {
        let names: Vec<&str> = cursor.schema().names();
        encode_schema(&names)
    };
    if writer
        .write_all(schema_line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .is_err()
    {
        return RequestOutcome::ClientGone;
    }
    let mut rows: u64 = 0;
    for batch in cursor.by_ref() {
        let batch = match batch {
            Ok(batch) => batch,
            Err(err) => {
                // Mid-stream failure: the ERR line is still the terminal.
                ServerMetrics::bump(&metrics.requests_failed);
                return match terminal(writer, &err_line(code_for(&err), &err.to_string())) {
                    Ok(()) => RequestOutcome::Continue,
                    Err(_) => RequestOutcome::ClientGone,
                };
            }
        };
        for i in 0..batch.num_rows() {
            let tuple = batch.row(i);
            let line = encode_row(tuple.values());
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                return RequestOutcome::ClientGone;
            }
            rows += 1;
            ServerMetrics::bump(&metrics.rows_streamed);
        }
        // Flush per batch: the client sees results incrementally and a
        // vanished client surfaces as a write error on the next batch.
        if writer.flush().is_err() {
            return RequestOutcome::ClientGone;
        }
    }
    match terminal(writer, &format!("OK {rows} rows")) {
        Ok(()) => RequestOutcome::Continue,
        Err(_) => RequestOutcome::ClientGone,
    }
}
