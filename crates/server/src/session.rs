//! One client session: the per-connection request loop.
//!
//! A session owns one [`TcpStream`] and serves requests sequentially until
//! the client closes, sends `CLOSE`, idles past the read timeout, exceeds
//! the request-size limit, or the server starts draining for shutdown.
//! Results stream batch-at-a-time straight off the engine's [`Cursor`], so
//! a client that stops reading (or disconnects) stops the source scans
//! short instead of forcing full materialization.

use crate::metrics::ServerMetrics;
use crate::protocol::{self, code_for, encode_row, encode_schema, err_line, ErrorCode, Request};
use crate::server::ServerConfig;
use div_algebra::Relation;
use div_sql::{CancelToken, Engine, Error, Params, PreparedStatement, QueryGuard};
use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process-wide session id source: ids stay unique across every server a
/// test process starts, so a `CANCEL` can never alias a session of another
/// server instance.
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// The in-flight statement registry: session id → the cancellation token
/// of the statement that session is currently running.
///
/// A session registers a fresh token immediately before opening a cursor
/// and deregisters it (drop guard, so error paths included) when the
/// statement's terminal line has been decided. `CANCEL <id>` served on any
/// *other* connection trips the token; the governed executor observes the
/// trip at its next batch boundary.
#[derive(Debug, Default)]
pub(crate) struct CancelRegistry {
    inner: Mutex<HashMap<u64, CancelToken>>,
}

impl CancelRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CancelToken>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(&self, session: u64, token: CancelToken) {
        self.lock().insert(session, token);
    }

    fn deregister(&self, session: u64) {
        self.lock().remove(&session);
    }

    /// Trip the token of `session`'s in-flight statement. `false` when the
    /// session is idle (or unknown — indistinguishable to the caller).
    fn cancel(&self, session: u64) -> bool {
        match self.lock().get(&session) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }
}

/// Deregisters the session's in-flight statement on drop, so no terminal
/// path (clean finish, engine error, vanished client) can leak a stale
/// token into the registry.
struct ArmedStatement<'a> {
    registry: &'a CancelRegistry,
    session: u64,
}

impl Drop for ArmedStatement<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.session);
    }
}

/// How often a blocked read wakes up to check the shutdown flag and the
/// idle deadline.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Why the session's line reader stopped producing.
enum ReadOutcome {
    /// One complete request line (without the trailing newline).
    Line(String),
    /// The line grew past [`ServerConfig::max_request_bytes`].
    TooLarge,
    /// No complete line arrived within [`ServerConfig::read_timeout`].
    IdleTimeout,
    /// The server is draining; stop between requests.
    Shutdown,
    /// The client closed the connection (EOF) or the socket failed.
    Disconnected,
}

/// Reads newline-delimited request lines off the socket, enforcing the
/// request-size cap and the idle timeout while staying responsive to the
/// server's shutdown flag (the socket is polled with a short read timeout).
struct LineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    max_line: usize,
    idle: Duration,
    shutdown: &'a AtomicBool,
}

impl<'a> LineReader<'a> {
    fn new(
        stream: &'a TcpStream,
        max_line: usize,
        idle: Duration,
        shutdown: &'a AtomicBool,
    ) -> LineReader<'a> {
        LineReader {
            stream,
            buf: Vec::new(),
            max_line,
            idle,
            shutdown,
        }
    }

    fn next_line(&mut self) -> ReadOutcome {
        let deadline = Instant::now() + self.idle;
        loop {
            // A complete line may already be buffered from a previous read.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                return ReadOutcome::Line(text.trim_end_matches('\r').to_string());
            }
            if self.buf.len() > self.max_line {
                return ReadOutcome::TooLarge;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return ReadOutcome::Shutdown;
            }
            if Instant::now() >= deadline {
                return ReadOutcome::IdleTimeout;
            }
            let mut chunk = [0u8; 4096];
            match (&mut &*self.stream).read(&mut chunk) {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }
}

/// Serve one connection to completion. Called on a worker thread; never
/// panics outward on socket errors (a vanished client is normal).
pub(crate) fn run_session(
    stream: TcpStream,
    engine: &Engine,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
    cancels: &CancelRegistry,
) {
    let session_id = NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed);
    // Short socket timeout so reads stay responsive to the shutdown flag;
    // the *logical* idle timeout is enforced by the line reader.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_stream);
    let mut reader = LineReader::new(
        &stream,
        config.max_request_bytes,
        config.read_timeout,
        shutdown,
    );
    // Session-local prepared statements, by client-chosen name.
    let mut prepared: HashMap<String, PreparedStatement> = HashMap::new();

    loop {
        match reader.next_line() {
            ReadOutcome::Line(line) => {
                let outcome = serve_request(
                    &line,
                    session_id,
                    engine,
                    config,
                    metrics,
                    cancels,
                    &mut prepared,
                    &mut writer,
                );
                ServerMetrics::bump(&metrics.requests_served);
                match outcome {
                    RequestOutcome::Continue => {}
                    RequestOutcome::CloseSession => return,
                    RequestOutcome::ClientGone => {
                        ServerMetrics::bump(&metrics.streams_cancelled);
                        return;
                    }
                }
            }
            ReadOutcome::TooLarge => {
                ServerMetrics::bump(&metrics.requests_served);
                ServerMetrics::bump(&metrics.requests_failed);
                let _ = terminal(
                    &mut writer,
                    &err_line(
                        ErrorCode::TooLarge,
                        &format!(
                            "request exceeds {} bytes; closing connection",
                            config.max_request_bytes
                        ),
                    ),
                );
                return;
            }
            ReadOutcome::IdleTimeout => {
                let _ = terminal(
                    &mut writer,
                    &err_line(ErrorCode::Timeout, "idle connection closed"),
                );
                return;
            }
            ReadOutcome::Shutdown => {
                let _ = terminal(
                    &mut writer,
                    &err_line(ErrorCode::Shutdown, "server is shutting down"),
                );
                return;
            }
            ReadOutcome::Disconnected => return,
        }
    }
}

/// What serving one request decided about the session.
enum RequestOutcome {
    Continue,
    CloseSession,
    /// A write failed mid-response: the client disconnected while we were
    /// streaming. The open cursor was dropped, short-circuiting its scans.
    ClientGone,
}

/// Write `line` and flush; any failure means the client is gone.
fn terminal(writer: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Build the guard for one statement: the engine's configured defaults,
/// overridden by the server's session-wide defaults, observing `token`.
/// The deadline arms here — immediately before the cursor opens.
fn statement_guard(engine: &Engine, config: &ServerConfig, token: CancelToken) -> QueryGuard {
    let mut guard = QueryGuard::from_config(engine.planner_config()).with_token(token);
    if let Some(deadline) = config.default_deadline {
        guard = guard.with_deadline(deadline);
    }
    if let Some(budget) = config.default_budget_rows {
        guard = guard.with_budget_rows(budget);
    }
    guard
}

/// Register a fresh cancellation token for the statement this session is
/// about to run. The returned drop guard deregisters it on every exit path.
fn arm_statement<'a>(
    session_id: u64,
    cancels: &'a CancelRegistry,
    engine: &Engine,
    config: &ServerConfig,
) -> (QueryGuard, ArmedStatement<'a>) {
    let token = CancelToken::new();
    cancels.register(session_id, token.clone());
    (
        statement_guard(engine, config, token),
        ArmedStatement {
            registry: cancels,
            session: session_id,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn serve_request(
    line: &str,
    session_id: u64,
    engine: &Engine,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    cancels: &CancelRegistry,
    prepared: &mut HashMap<String, PreparedStatement>,
    writer: &mut BufWriter<TcpStream>,
) -> RequestOutcome {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(bad) => {
            ServerMetrics::bump(&metrics.requests_failed);
            return match terminal(writer, &err_line(ErrorCode::Malformed, &bad.0)) {
                Ok(()) => RequestOutcome::Continue,
                Err(_) => RequestOutcome::ClientGone,
            };
        }
    };
    let result = match request {
        Request::Ping => terminal(writer, "OK pong").map(|()| RequestOutcome::Continue),
        Request::Close => {
            let _ = terminal(writer, "OK bye");
            return RequestOutcome::CloseSession;
        }
        Request::Query(sql) => {
            let (guard, _armed) = arm_statement(session_id, cancels, engine, config);
            match engine.query_guarded(&sql, &Params::new(), guard) {
                Ok(cursor) => return stream_cursor(cursor, metrics, writer),
                Err(err) => engine_error(&err, metrics, writer),
            }
        }
        Request::Prepare { name, sql } => match engine.prepare(&sql) {
            Ok(statement) => {
                let detail = format!(
                    "OK prepared {name} parameters={}",
                    statement.parameters().len()
                );
                prepared.insert(name, statement);
                terminal(writer, &detail).map(|()| RequestOutcome::Continue)
            }
            Err(err) => engine_error(&err, metrics, writer),
        },
        Request::Execute { name, params } => {
            let statement = match prepared.get(&name) {
                Some(statement) => statement,
                None => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    let msg = format!("no prepared statement named `{name}` in this session");
                    return match terminal(writer, &err_line(ErrorCode::UnknownStatement, &msg)) {
                        Ok(()) => RequestOutcome::Continue,
                        Err(_) => RequestOutcome::ClientGone,
                    };
                }
            };
            let mut bound = Params::new();
            for (key, value) in params {
                bound = bound.bind(key, value);
            }
            let (guard, _armed) = arm_statement(session_id, cancels, engine, config);
            match statement.execute_guarded(engine, &bound, guard.clone()) {
                Ok(cursor) => return stream_cursor(cursor, metrics, writer),
                Err(Error::StalePlan { .. }) => {
                    // The catalog moved under the cached plan. Re-prepare
                    // transparently: the client keeps its statement name and
                    // never sees a stale result. The retry reuses the guard
                    // (same token, same deadline arm time): to the client
                    // this is still one statement.
                    match engine.prepare(statement.sql()) {
                        Ok(fresh) => {
                            ServerMetrics::bump(&metrics.stale_replans);
                            let retry = fresh.execute_guarded(engine, &bound, guard);
                            prepared.insert(name, fresh);
                            match retry {
                                Ok(cursor) => return stream_cursor(cursor, metrics, writer),
                                Err(err) => engine_error(&err, metrics, writer),
                            }
                        }
                        Err(err) => engine_error(&err, metrics, writer),
                    }
                }
                Err(err) => engine_error(&err, metrics, writer),
            }
        }
        Request::Explain { sql, analyze } => {
            let report = if analyze {
                engine.explain_analyze(&sql)
            } else {
                engine.explain(&sql)
            };
            match report {
                Ok(explain) => {
                    let rendered = explain.to_string();
                    (|| {
                        for plan_line in rendered.lines() {
                            writer.write_all(b"PLAN ")?;
                            writer.write_all(plan_line.as_bytes())?;
                            writer.write_all(b"\n")?;
                        }
                        terminal(writer, "OK")
                    })()
                    .map(|()| RequestOutcome::Continue)
                }
                Err(err) => engine_error(&err, metrics, writer),
            }
        }
        Request::Metrics => {
            let json = format!(
                "METRICS {{\"server\": {}, \"engine\": {}}}",
                metrics.to_json(),
                engine.metrics().to_json()
            );
            (|| {
                writer.write_all(json.as_bytes())?;
                writer.write_all(b"\n")?;
                terminal(writer, "OK")
            })()
            .map(|()| RequestOutcome::Continue)
        }
        Request::Register {
            table,
            columns,
            rows,
        } => {
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            match Relation::from_rows(names, rows) {
                Ok(relation) => {
                    let version = engine.mutate_catalog(|catalog| {
                        catalog.register(table.as_str(), relation);
                        catalog.version()
                    });
                    terminal(writer, &format!("OK version {version}"))
                        .map(|()| RequestOutcome::Continue)
                }
                Err(err) => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    terminal(writer, &err_line(ErrorCode::Plan, &err.to_string()))
                        .map(|()| RequestOutcome::Continue)
                }
            }
        }
        Request::Session => {
            terminal(writer, &format!("OK session {session_id}")).map(|()| RequestOutcome::Continue)
        }
        Request::Cancel(target) => {
            let verdict = if cancels.cancel(target) {
                "cancelled"
            } else {
                "idle"
            };
            terminal(writer, &format!("OK {verdict} {target}")).map(|()| RequestOutcome::Continue)
        }
        Request::Drop(table) => {
            let dropped = engine
                .mutate_catalog(|catalog| catalog.unregister(&table).map(|_| catalog.version()));
            match dropped {
                Ok(version) => terminal(writer, &format!("OK version {version}"))
                    .map(|()| RequestOutcome::Continue),
                Err(err) => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    terminal(writer, &err_line(ErrorCode::Plan, &err.to_string()))
                        .map(|()| RequestOutcome::Continue)
                }
            }
        }
        Request::Attach { table, path } => {
            // Open (and validate) the file before touching the catalog so a
            // bad path / corrupt file leaves the served catalog unchanged.
            let opened = div_physical::failpoint::hit("attach", "open")
                .map_err(Error::from)
                .and_then(|()| {
                    div_storage::TableReader::open(&path)
                        .map_err(div_expr::ExprError::from)
                        .map_err(Error::from)
                });
            match opened {
                Ok(reader) => {
                    let version = engine.mutate_catalog(|catalog| {
                        catalog.register_external(table.as_str(), std::sync::Arc::new(reader));
                        catalog.version()
                    });
                    terminal(writer, &format!("OK version {version}"))
                        .map(|()| RequestOutcome::Continue)
                }
                Err(err) => {
                    ServerMetrics::bump(&metrics.requests_failed);
                    terminal(writer, &err_line(code_for(&err), &err.to_string()))
                        .map(|()| RequestOutcome::Continue)
                }
            }
        }
    };
    match result {
        Ok(outcome) => outcome,
        Err(_) => RequestOutcome::ClientGone,
    }
}

/// Count a governance abort under its own metric (in addition to the
/// generic `requests_failed` bump every `ERR` terminal gets).
fn governance_bump(err: &Error, metrics: &ServerMetrics) {
    match err {
        Error::Cancelled { .. } => ServerMetrics::bump(&metrics.queries_cancelled),
        Error::DeadlineExceeded { .. } => ServerMetrics::bump(&metrics.deadline_aborts),
        Error::MemoryBudget { .. } => ServerMetrics::bump(&metrics.budget_aborts),
        _ => {}
    }
}

/// Report an engine error as its typed `ERR` line.
fn engine_error(
    err: &Error,
    metrics: &ServerMetrics,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<RequestOutcome> {
    ServerMetrics::bump(&metrics.requests_failed);
    governance_bump(err, metrics);
    terminal(writer, &err_line(code_for(err), &err.to_string())).map(|()| RequestOutcome::Continue)
}

/// Stream a cursor's result: `SCHEMA`, then one `ROW` line per tuple
/// (flushed batch-at-a-time), then `OK <n> rows`. A failed write drops the
/// cursor immediately — the executor's early-termination contract stops the
/// source scans short for clients that went away mid-result.
fn stream_cursor(
    mut cursor: div_sql::Cursor,
    metrics: &ServerMetrics,
    writer: &mut BufWriter<TcpStream>,
) -> RequestOutcome {
    let schema_line = {
        let names: Vec<&str> = cursor.schema().names();
        encode_schema(&names)
    };
    if writer
        .write_all(schema_line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .is_err()
    {
        return RequestOutcome::ClientGone;
    }
    let mut rows: u64 = 0;
    for batch in cursor.by_ref() {
        let batch = match batch {
            Ok(batch) => batch,
            Err(err) => {
                // Mid-stream failure: the ERR line is still the terminal.
                // Dropping the cursor here closes the pipeline exactly like
                // a client disconnect — resident accounting drains to zero.
                ServerMetrics::bump(&metrics.requests_failed);
                governance_bump(&err, metrics);
                return match terminal(writer, &err_line(code_for(&err), &err.to_string())) {
                    Ok(()) => RequestOutcome::Continue,
                    Err(_) => RequestOutcome::ClientGone,
                };
            }
        };
        for i in 0..batch.num_rows() {
            let tuple = batch.row(i);
            let line = encode_row(tuple.values());
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                return RequestOutcome::ClientGone;
            }
            rows += 1;
            ServerMetrics::bump(&metrics.rows_streamed);
        }
        // Flush per batch: the client sees results incrementally and a
        // vanished client surfaces as a write error on the next batch.
        if writer.flush().is_err() {
            return RequestOutcome::ClientGone;
        }
    }
    match terminal(writer, &format!("OK {rows} rows")) {
        Ok(()) => RequestOutcome::Continue,
        Err(_) => RequestOutcome::ClientGone,
    }
}
