//! The server-side metrics registry: connection and request accounting the
//! engine's own [`div_sql::Engine::metrics`] registry cannot see.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters of the serving layer, shared by the accept loop and
/// every session. Exposed over the wire by the `METRICS` command next to
/// the engine registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections handed to a session worker.
    pub connections_accepted: AtomicU64,
    /// Connections refused with `ERR BUSY` by admission control.
    pub connections_rejected: AtomicU64,
    /// Requests answered (with `OK` or `ERR`, across all sessions).
    pub requests_served: AtomicU64,
    /// Requests whose terminal line was an `ERR`.
    pub requests_failed: AtomicU64,
    /// Result rows streamed to clients.
    pub rows_streamed: AtomicU64,
    /// Result streams cut short because the client went away mid-response.
    pub streams_cancelled: AtomicU64,
    /// Stale prepared statements transparently re-prepared by a session.
    pub stale_replans: AtomicU64,
    /// Statements aborted by an explicit `CANCEL` (wire code `CANCELLED`).
    pub queries_cancelled: AtomicU64,
    /// Statements aborted by their wall-clock deadline (wire code
    /// `DEADLINE`).
    pub deadline_aborts: AtomicU64,
    /// Statements aborted by their resident-row memory budget (wire code
    /// `MEMORY`).
    pub budget_aborts: AtomicU64,
}

impl ServerMetrics {
    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Bump `counter` by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the registry as a JSON object (hand-rolled; the workspace
    /// deliberately carries no serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections_accepted\": {}, \"connections_rejected\": {}, ",
                "\"requests_served\": {}, \"requests_failed\": {}, ",
                "\"rows_streamed\": {}, \"streams_cancelled\": {}, ",
                "\"stale_replans\": {}, \"queries_cancelled\": {}, ",
                "\"deadline_aborts\": {}, \"budget_aborts\": {}}}"
            ),
            Self::get(&self.connections_accepted),
            Self::get(&self.connections_rejected),
            Self::get(&self.requests_served),
            Self::get(&self.requests_failed),
            Self::get(&self.rows_streamed),
            Self::get(&self.streams_cancelled),
            Self::get(&self.stale_replans),
            Self::get(&self.queries_cancelled),
            Self::get(&self.deadline_aborts),
            Self::get(&self.budget_aborts),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reflects_counters() {
        let m = ServerMetrics::default();
        ServerMetrics::bump(&m.connections_accepted);
        ServerMetrics::bump(&m.rows_streamed);
        ServerMetrics::bump(&m.rows_streamed);
        ServerMetrics::bump(&m.deadline_aborts);
        let json = m.to_json();
        assert!(json.contains("\"connections_accepted\": 1"), "{json}");
        assert!(json.contains("\"rows_streamed\": 2"), "{json}");
        assert!(json.contains("\"connections_rejected\": 0"), "{json}");
        assert!(json.contains("\"deadline_aborts\": 1"), "{json}");
        assert!(json.contains("\"queries_cancelled\": 0"), "{json}");
        assert!(json.contains("\"budget_aborts\": 0"), "{json}");
    }
}
