//! A blocking wire-protocol client for tests, examples and benches.

use crate::protocol::{self, ErrorCode};
use div_algebra::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Bounded retry of *retryable* server errors (`BUSY`, `TIMEOUT`,
/// `SHUTDOWN` — exactly [`ErrorCode::retryable`]), attached to a client
/// with [`Client::with_retry`].
///
/// Those codes all mean "the request was fine, the server just would not
/// take it right now", and the server closes the connection after sending
/// them — so each retry reconnects and resends after an exponentially
/// growing, jittered backoff. Non-retryable errors (including the
/// governance aborts `CANCELLED`/`DEADLINE`/`MEMORY`) surface immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub attempts: u32,
    /// Backoff before retry `n` is `base_delay × 2ⁿ`, jittered down by up
    /// to 50% so synchronized clients do not stampede in lockstep.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(10));
        // Jitter in [1/2, 1): xorshift over the subsecond clock — good
        // enough for decorrelating retries, and dependency-free.
        let mut x = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
            .unwrap_or(0x9e37_79b9)
            | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let scale = 512 + (x % 512) as u32; // of 1024
        exp * scale / 1024
    }
}

/// A blocking connection to a [`Server`](crate::Server).
///
/// One request is in flight at a time (the protocol is strictly
/// request/response); methods block until the terminal `OK`/`ERR` line.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    /// The resolved peer, kept for reconnects (`None` only if resolution
    /// yielded nothing the connect could still use).
    addr: Option<SocketAddr>,
    read_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
}

/// A collected query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Result column names, from the `SCHEMA` line.
    pub columns: Vec<String>,
    /// Result tuples, in server (sorted-set) order.
    pub rows: Vec<Vec<Value>>,
    /// The terminal `OK` detail (e.g. `"3 rows"`).
    pub detail: String,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed before a terminal line arrived.
    Io(io::Error),
    /// The server answered `ERR <code> <message>`.
    Server {
        /// The typed error code (None when the token is unknown to this
        /// client version).
        code: Option<ErrorCode>,
        /// The raw code token as sent.
        code_token: String,
        /// The human-readable message.
        message: String,
    },
    /// The server sent something outside the protocol grammar.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::Server {
                code_token,
                message,
                ..
            } => write!(f, "server error {code_token}: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl ClientError {
    /// `true` when the failure is the server's typed, retryable overload /
    /// drain signal (`BUSY`, `TIMEOUT`, `SHUTDOWN`).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: Some(code),
                ..
            } if code.retryable()
        )
    }
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        Ok(Client {
            reader: BufReader::new(stream),
            addr: peer,
            read_timeout: None,
            retry: None,
        })
    }

    /// Connect with a socket read timeout (so a dead server surfaces as an
    /// [`io::Error`] instead of a hang).
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let mut client = Client::connect(addr)?;
        client.reader.get_ref().set_read_timeout(Some(timeout))?;
        client.read_timeout = Some(timeout);
        Ok(client)
    }

    /// This client retrying retryable server errors under `policy`
    /// (reconnect + jittered exponential backoff). See [`RetryPolicy`].
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    /// Re-establish the connection to the peer this client first connected
    /// to, preserving the configured read timeout.
    fn reconnect(&mut self) -> io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "peer address unknown; cannot reconnect",
            )
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Send one raw request line and collect the raw response lines, the
    /// terminal (`OK ...` or `ERR ...`) included. This is the byte-level
    /// surface differential tests compare against direct engine output; the
    /// typed methods below are built on it.
    pub fn exchange(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        self.read_response()
    }

    /// Read response lines up to and including the terminal line (used by
    /// `exchange`, and directly for the `ERR BUSY` greeting an admission-
    /// rejected connection receives without having sent anything).
    pub fn read_response(&mut self) -> Result<Vec<String>, ClientError> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before terminal line",
                )));
            }
            let line = line.trim_end_matches(['\n', '\r']).to_string();
            let terminal = line == "OK" || line.starts_with("OK ") || line.starts_with("ERR ");
            lines.push(line);
            if terminal {
                return Ok(lines);
            }
        }
    }

    /// `exchange`, then split a terminal `ERR` into [`ClientError::Server`].
    fn request_once(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        let lines = self.exchange(line)?;
        let terminal = lines
            .last()
            .expect("read_response always yields a terminal");
        if let Some(err) = terminal.strip_prefix("ERR ") {
            let (token, message) = err.split_once(' ').unwrap_or((err, ""));
            return Err(ClientError::Server {
                code: ErrorCode::parse(token),
                code_token: token.to_string(),
                message: message.to_string(),
            });
        }
        Ok(lines)
    }

    /// `true` for I/O failures that mean the connection itself dropped —
    /// the race where an admission-rejected peer closes before our request
    /// line even lands. The server always writes a terminal before closing
    /// in non-crash paths, so a dropped connection implies the request was
    /// not executed and resending is safe.
    fn connection_dropped(err: &ClientError) -> bool {
        matches!(err, ClientError::Io(e) if matches!(
            e.kind(),
            io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::NotConnected
        ))
    }

    /// [`Client::request_once`] under the configured [`RetryPolicy`]:
    /// retryable server errors (and dropped connections) sleep through a
    /// jittered backoff, reconnect (the server closes the connection after
    /// `BUSY`/`TIMEOUT`/`SHUTDOWN`) and resend. Safe even for `MUTATE`: a
    /// retryable code means the request was never executed.
    fn request(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        let Some(policy) = self.retry.clone() else {
            return self.request_once(line);
        };
        let mut attempt = 0u32;
        loop {
            match self.request_once(line) {
                Ok(lines) => return Ok(lines),
                Err(err)
                    if (err.is_retryable() || Self::connection_dropped(&err))
                        && attempt < policy.attempts => {}
                Err(err) => return Err(err),
            }
            // Back off, then reconnect — spending further attempts if the
            // server is also rejecting fresh connections right now.
            loop {
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
                match self.reconnect() {
                    Ok(()) => break,
                    Err(_) if attempt < policy.attempts => continue,
                    Err(io_err) => return Err(ClientError::Io(io_err)),
                }
            }
        }
    }

    fn collect_result(lines: Vec<String>) -> Result<QueryResult, ClientError> {
        let mut columns = Vec::new();
        let mut rows = Vec::new();
        let mut detail = String::new();
        for line in lines {
            if let Some(schema) = line.strip_prefix("SCHEMA ") {
                columns = schema.split('\t').map(str::to_string).collect();
            } else if let Some(row) = line.strip_prefix("ROW ") {
                let mut values = Vec::new();
                for token in row.split('\t') {
                    values.push(
                        protocol::parse_value(token).map_err(|e| ClientError::Protocol(e.0))?,
                    );
                }
                rows.push(values);
            } else if line == "OK" || line.starts_with("OK ") {
                detail = line.strip_prefix("OK").unwrap_or("").trim().to_string();
            } else {
                return Err(ClientError::Protocol(format!(
                    "unexpected data line `{line}`"
                )));
            }
        }
        Ok(QueryResult {
            columns,
            rows,
            detail,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("PING").map(|_| ())
    }

    /// Run ad-hoc SQL and collect the streamed result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult, ClientError> {
        let lines = self.request(&format!("QUERY {sql}"))?;
        Self::collect_result(lines)
    }

    /// Prepare `sql` under `name` for later [`Client::execute`] calls on
    /// this connection.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<(), ClientError> {
        self.request(&format!("PREPARE {name} {sql}")).map(|_| ())
    }

    /// Execute a prepared statement with `$name=value` bindings.
    pub fn execute(
        &mut self,
        name: &str,
        params: &[(&str, Value)],
    ) -> Result<QueryResult, ClientError> {
        let mut line = format!("EXECUTE {name}");
        for (key, value) in params {
            line.push_str(&format!(" ${key}={}", protocol::encode_value(value)));
        }
        let lines = self.request(&line)?;
        Self::collect_result(lines)
    }

    /// Fetch the `EXPLAIN` (or `EXPLAIN ANALYZE`) rendering of `sql`.
    pub fn explain(&mut self, sql: &str, analyze: bool) -> Result<String, ClientError> {
        let verb = if analyze {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        };
        let lines = self.request(&format!("{verb} {sql}"))?;
        let mut out = String::new();
        for line in lines {
            if let Some(plan) = line.strip_prefix("PLAN ") {
                out.push_str(plan);
                out.push('\n');
            }
        }
        Ok(out)
    }

    /// Fetch the combined server+engine metrics JSON object.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let lines = self.request("METRICS")?;
        lines
            .iter()
            .find_map(|l| l.strip_prefix("METRICS ").map(str::to_string))
            .ok_or_else(|| ClientError::Protocol("METRICS reply carried no payload".into()))
    }

    /// Register (or replace) a table on the served engine's catalog.
    pub fn register(
        &mut self,
        table: &str,
        columns: &[&str],
        rows: &[Vec<Value>],
    ) -> Result<(), ClientError> {
        let encoded_rows: Vec<String> = rows
            .iter()
            .map(|row| {
                let values: Vec<String> = row.iter().map(protocol::encode_value).collect();
                format!("({})", values.join(", "))
            })
            .collect();
        let line = format!(
            "MUTATE REGISTER {table} ({}) VALUES {}",
            columns.join(", "),
            encoded_rows.join("; ")
        );
        self.request(&line).map(|_| ())
    }

    /// Attach a persistent `div_storage` columnar table file (a path on
    /// the *server's* filesystem) as a file-backed table.
    pub fn attach(&mut self, table: &str, path: &str) -> Result<(), ClientError> {
        self.request(&format!("MUTATE ATTACH {table} {path}"))
            .map(|_| ())
    }

    /// Drop a table from the served engine's catalog.
    pub fn drop_table(&mut self, table: &str) -> Result<(), ClientError> {
        self.request(&format!("MUTATE DROP {table}")).map(|_| ())
    }

    /// This connection's server-side session id (from `SESSION`), the
    /// handle another connection passes to [`Client::cancel`].
    pub fn session_id(&mut self) -> Result<u64, ClientError> {
        let lines = self.request("SESSION")?;
        lines
            .last()
            .and_then(|l| l.strip_prefix("OK session "))
            .and_then(|id| id.trim().parse().ok())
            .ok_or_else(|| ClientError::Protocol("SESSION reply carried no id".into()))
    }

    /// Cancel the statement session `id` is currently running (on another
    /// connection). Returns `true` when a statement was actually in flight.
    pub fn cancel(&mut self, id: u64) -> Result<bool, ClientError> {
        let lines = self.request(&format!("CANCEL {id}"))?;
        match lines.last().map(String::as_str) {
            Some(line) if line.starts_with("OK cancelled") => Ok(true),
            Some(line) if line.starts_with("OK idle") => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "unexpected CANCEL reply {other:?}"
            ))),
        }
    }

    /// End the session cleanly.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.request("CLOSE").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_jitters_within_half() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(100),
        };
        for attempt in 0..4u32 {
            let full = Duration::from_millis(100) * (1 << attempt);
            for _ in 0..8 {
                let delay = policy.backoff(attempt);
                assert!(
                    delay >= full / 2,
                    "attempt {attempt}: {delay:?} < {full:?}/2"
                );
                assert!(delay < full, "attempt {attempt}: {delay:?} >= {full:?}");
            }
        }
    }

    #[test]
    fn backoff_shift_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            attempts: u32::MAX,
            base_delay: Duration::from_millis(1),
        };
        // Far past the 2¹⁰ cap: must not panic or wrap.
        let delay = policy.backoff(40);
        assert!(delay <= Duration::from_millis(1024));
    }
}
