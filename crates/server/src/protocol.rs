//! The line-delimited wire protocol of [`div_server`](crate).
//!
//! Every request is one UTF-8 text line; every response is a (possibly
//! empty) sequence of *data lines* followed by exactly one *terminal line*.
//! The terminal line is either `OK [detail]` or `ERR <CODE> <message>`, so a
//! client always knows where a response ends — even mid-stream errors
//! terminate with an `ERR` line. Data lines are prefixed by their kind:
//!
//! | prefix    | carries                                                |
//! |-----------|--------------------------------------------------------|
//! | `SCHEMA`  | tab-separated result column names                      |
//! | `ROW`     | tab-separated [`Value`] literals (one result tuple)    |
//! | `PLAN`    | one line of an `EXPLAIN` rendering                     |
//! | `METRICS` | one JSON object (engine + server registries)           |
//!
//! Values use SQL-literal syntax: `NULL`, `TRUE`/`FALSE`, decimal integers,
//! and single-quoted strings with `''` doubling plus `\n`/`\r`/`\\` escapes
//! (the escapes keep the one-line-per-message framing airtight for values
//! that contain newlines). [`encode_value`] and [`parse_value`] are exact
//! inverses for every value the engine can return except sets, which encode
//! but do not parse (no wire command accepts a set literal).

use div_algebra::Value;
use std::fmt;

/// Machine-readable error class of an `ERR <CODE> <message>` terminal line.
///
/// `BUSY`, `TIMEOUT` and `SHUTDOWN` are *retryable*: the request itself was
/// fine and may be resent (to this server later, or to another). The rest
/// are request errors that retrying verbatim cannot fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not match any command grammar.
    Malformed,
    /// The request line exceeded the server's size limit.
    TooLarge,
    /// The SQL text did not parse.
    Parse,
    /// Translation, optimization, planning or execution failed.
    Plan,
    /// A declared `$parameter` has no bound value.
    UnboundParameter,
    /// A binding names a parameter the statement does not declare.
    UnknownParameter,
    /// The prepared plan is stale and transparent re-prepare also failed.
    StalePlan,
    /// `EXECUTE` named a statement this session never prepared.
    UnknownStatement,
    /// Admission control rejected the connection: the server is at
    /// capacity. Retryable.
    Busy,
    /// The connection sat idle past the server's read timeout. Retryable.
    Timeout,
    /// The server is draining for shutdown. Retryable elsewhere.
    Shutdown,
    /// The statement was cancelled (`CANCEL <session>` from another
    /// connection, or the token was tripped server-side). Not retryable:
    /// somebody asked for this statement to stop.
    Cancelled,
    /// The statement ran past its wall-clock deadline. Not retryable
    /// verbatim — the same statement would time out again.
    Deadline,
    /// The statement's resident-row footprint exceeded its memory budget.
    /// Not retryable verbatim.
    Memory,
}

impl ErrorCode {
    /// The wire spelling (the token after `ERR`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::TooLarge => "TOO_LARGE",
            ErrorCode::Parse => "PARSE",
            ErrorCode::Plan => "PLAN",
            ErrorCode::UnboundParameter => "UNBOUND_PARAMETER",
            ErrorCode::UnknownParameter => "UNKNOWN_PARAMETER",
            ErrorCode::StalePlan => "STALE_PLAN",
            ErrorCode::UnknownStatement => "UNKNOWN_STATEMENT",
            ErrorCode::Busy => "BUSY",
            ErrorCode::Timeout => "TIMEOUT",
            ErrorCode::Shutdown => "SHUTDOWN",
            ErrorCode::Cancelled => "CANCELLED",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Memory => "MEMORY",
        }
    }

    /// `true` when the client may simply retry the same request later.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Timeout | ErrorCode::Shutdown
        )
    }

    /// Parse a wire spelling back to the code.
    pub fn parse(token: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Malformed,
            ErrorCode::TooLarge,
            ErrorCode::Parse,
            ErrorCode::Plan,
            ErrorCode::UnboundParameter,
            ErrorCode::UnknownParameter,
            ErrorCode::StalePlan,
            ErrorCode::UnknownStatement,
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::Shutdown,
            ErrorCode::Cancelled,
            ErrorCode::Deadline,
            ErrorCode::Memory,
        ]
        .into_iter()
        .find(|c| c.as_str() == token)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Map an engine error to its wire code.
pub fn code_for(err: &div_sql::Error) -> ErrorCode {
    match err {
        div_sql::Error::Parse(_) => ErrorCode::Parse,
        div_sql::Error::Plan(_) => ErrorCode::Plan,
        div_sql::Error::UnboundParameter { .. } => ErrorCode::UnboundParameter,
        div_sql::Error::UnknownParameter { .. } => ErrorCode::UnknownParameter,
        div_sql::Error::StalePlan { .. } => ErrorCode::StalePlan,
        div_sql::Error::Cancelled { .. } => ErrorCode::Cancelled,
        div_sql::Error::DeadlineExceeded { .. } => ErrorCode::Deadline,
        div_sql::Error::MemoryBudget { .. } => ErrorCode::Memory,
    }
}

/// Render an `ERR` terminal line (newlines in the message are flattened to
/// keep the one-line framing).
pub fn err_line(code: ErrorCode, message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {code} {flat}")
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with `OK pong`.
    Ping,
    /// Run ad-hoc SQL and stream the result.
    Query(String),
    /// Compile SQL under a session-local statement name.
    Prepare {
        /// Session-local statement name (no whitespace).
        name: String,
        /// The SQL text (may contain `$name` parameters).
        sql: String,
    },
    /// Execute a previously prepared statement with `$name=value` bindings.
    Execute {
        /// The statement name given to `PREPARE`.
        name: String,
        /// The parameter bindings, in request order.
        params: Vec<(String, Value)>,
    },
    /// Compile SQL and return the optimizer/plan report without running it.
    Explain {
        /// The SQL text.
        sql: String,
        /// `true` for `EXPLAIN ANALYZE`: also execute and annotate with
        /// measured statistics.
        analyze: bool,
    },
    /// Return the engine and server metrics registries as one JSON object.
    Metrics,
    /// Register (or replace) a table: `MUTATE REGISTER t (a, b) VALUES
    /// (1, 'x'); (2, 'y')`.
    Register {
        /// Table name.
        table: String,
        /// Column names.
        columns: Vec<String>,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// Drop a table: `MUTATE DROP t`.
    Drop(String),
    /// Attach a persistent `div_storage` columnar table file as an external
    /// (file-backed) table: `MUTATE ATTACH t /path/to/t.divcol`. Queries
    /// stream the file chunk-at-a-time with zone-map skipping instead of
    /// loading it into catalog memory.
    Attach {
        /// Table name to register the file under.
        table: String,
        /// Filesystem path of the columnar table file (no whitespace).
        path: String,
    },
    /// Report this connection's session id (`OK session <id>`), the handle
    /// another connection needs to `CANCEL` this session's statements.
    Session,
    /// Trip the cancellation token of the statement session `<id>` is
    /// currently running. Idempotent: answers `OK cancelled <id>` when a
    /// statement was in flight, `OK idle <id>` otherwise (including ids
    /// that never existed — by the time the answer arrives the statement
    /// could have finished anyway, so "unknown" and "idle" are the same
    /// observable fact).
    Cancel(u64),
    /// End the session; the server answers `OK bye` and closes.
    Close,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedRequest(pub String);

impl fmt::Display for MalformedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for MalformedRequest {}

fn malformed(msg: impl Into<String>) -> MalformedRequest {
    MalformedRequest(msg.into())
}

/// Parse one request line. The verb is case-sensitive (uppercase), matching
/// the examples in the crate docs; SQL text after the verb is passed through
/// verbatim.
pub fn parse_request(line: &str) -> Result<Request, MalformedRequest> {
    let line = line.trim();
    if line.is_empty() {
        return Err(malformed("empty request line"));
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "PING" => expect_no_rest("PING", rest, Request::Ping),
        "QUERY" => {
            if rest.is_empty() {
                return Err(malformed("QUERY requires SQL text"));
            }
            Ok(Request::Query(rest.to_string()))
        }
        "PREPARE" => {
            let (name, sql) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| malformed("usage: PREPARE <name> <sql>"))?;
            let sql = sql.trim();
            if sql.is_empty() {
                return Err(malformed("usage: PREPARE <name> <sql>"));
            }
            Ok(Request::Prepare {
                name: name.to_string(),
                sql: sql.to_string(),
            })
        }
        "EXECUTE" => {
            let mut parts = Tokenizer::new(rest);
            let name = match parts.next_token()? {
                Some(Token::Word(w)) => w,
                _ => return Err(malformed("usage: EXECUTE <name> [$param=value ...]")),
            };
            let mut params = Vec::new();
            while let Some(token) = parts.next_token()? {
                match token {
                    Token::Binding(key, value) => params.push((key, value)),
                    _ => return Err(malformed("EXECUTE bindings must look like $name=value")),
                }
            }
            Ok(Request::Execute { name, params })
        }
        "EXPLAIN" => {
            if rest.is_empty() {
                return Err(malformed("EXPLAIN requires SQL text"));
            }
            match rest.strip_prefix("ANALYZE") {
                Some(sql) if sql.starts_with(char::is_whitespace) => Ok(Request::Explain {
                    sql: sql.trim().to_string(),
                    analyze: true,
                }),
                _ => Ok(Request::Explain {
                    sql: rest.to_string(),
                    analyze: false,
                }),
            }
        }
        "METRICS" => expect_no_rest("METRICS", rest, Request::Metrics),
        "MUTATE" => parse_mutate(rest),
        "SESSION" => expect_no_rest("SESSION", rest, Request::Session),
        "CANCEL" => rest
            .parse::<u64>()
            .map(Request::Cancel)
            .map_err(|_| malformed("usage: CANCEL <session-id>")),
        "CLOSE" => expect_no_rest("CLOSE", rest, Request::Close),
        other => Err(malformed(format!("unknown command `{other}`"))),
    }
}

fn expect_no_rest(verb: &str, rest: &str, request: Request) -> Result<Request, MalformedRequest> {
    if rest.is_empty() {
        Ok(request)
    } else {
        Err(malformed(format!("{verb} takes no arguments")))
    }
}

fn parse_mutate(rest: &str) -> Result<Request, MalformedRequest> {
    let (action, rest) = rest
        .split_once(char::is_whitespace)
        .map(|(a, r)| (a, r.trim()))
        .unwrap_or((rest, ""));
    match action {
        "DROP" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                return Err(malformed("usage: MUTATE DROP <table>"));
            }
            Ok(Request::Drop(rest.to_string()))
        }
        "REGISTER" => parse_register(rest),
        "ATTACH" => {
            let (table, path) = rest
                .split_once(char::is_whitespace)
                .map(|(t, p)| (t, p.trim()))
                .ok_or_else(|| malformed("usage: MUTATE ATTACH <table> <path>"))?;
            if table.is_empty() || path.is_empty() || path.contains(char::is_whitespace) {
                return Err(malformed("usage: MUTATE ATTACH <table> <path>"));
            }
            Ok(Request::Attach {
                table: table.to_string(),
                path: path.to_string(),
            })
        }
        _ => Err(malformed(
            "usage: MUTATE REGISTER ... | MUTATE ATTACH <table> <path> | MUTATE DROP <table>",
        )),
    }
}

/// `<table> (<col>, ...) VALUES (<value>, ...)[; (<value>, ...)]...`
fn parse_register(rest: &str) -> Result<Request, MalformedRequest> {
    const USAGE: &str = "usage: MUTATE REGISTER <table> (<col>, ...) VALUES (<row>); (<row>) ...";
    let (table, rest) = rest.split_once('(').ok_or_else(|| malformed(USAGE))?;
    let table = table.trim();
    if table.is_empty() || table.contains(char::is_whitespace) {
        return Err(malformed(USAGE));
    }
    let (cols, rest) = rest.split_once(')').ok_or_else(|| malformed(USAGE))?;
    let columns: Vec<String> = cols
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if columns.is_empty() {
        return Err(malformed("MUTATE REGISTER needs at least one column"));
    }
    let rest = rest.trim();
    let values = rest
        .strip_prefix("VALUES")
        .ok_or_else(|| malformed(USAGE))?
        .trim();
    let mut rows = Vec::new();
    if !values.is_empty() {
        for group in SemicolonGroups::new(values) {
            let group = group?;
            let group = group.trim();
            let inner = group
                .strip_prefix('(')
                .and_then(|g| g.strip_suffix(')'))
                .ok_or_else(|| malformed("each row must be parenthesized"))?;
            let mut row = Vec::new();
            let mut tok = Tokenizer::new(inner);
            while let Some(v) = tok.next_value_in_list()? {
                row.push(v);
            }
            if row.len() != columns.len() {
                return Err(malformed(format!(
                    "row has {} values but {} columns were declared",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
        }
    }
    Ok(Request::Register {
        table: table.to_string(),
        columns,
        rows,
    })
}

/// Split on `;` outside single-quoted strings.
struct SemicolonGroups<'a> {
    rest: &'a str,
    done: bool,
}

impl<'a> SemicolonGroups<'a> {
    fn new(s: &'a str) -> Self {
        SemicolonGroups {
            rest: s,
            done: false,
        }
    }
}

impl<'a> Iterator for SemicolonGroups<'a> {
    type Item = Result<&'a str, MalformedRequest>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut in_quote = false;
        let mut prev_backslash = false;
        for (i, c) in self.rest.char_indices() {
            match c {
                '\'' if !prev_backslash => in_quote = !in_quote,
                ';' if !in_quote => {
                    let (head, tail) = self.rest.split_at(i);
                    self.rest = &tail[1..];
                    return Some(Ok(head));
                }
                _ => {}
            }
            prev_backslash = c == '\\' && !prev_backslash;
        }
        self.done = true;
        if in_quote {
            return Some(Err(malformed("unterminated string literal")));
        }
        Some(Ok(self.rest))
    }
}

/// Encode one value as its wire literal.
pub fn encode_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\'' => out.push_str("''"),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('\'');
            out
        }
        Value::Set(items) => {
            let inner: Vec<String> = items.iter().map(encode_value).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Encode one result tuple as a `ROW` data line.
pub fn encode_row(values: &[Value]) -> String {
    let mut out = String::from("ROW ");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        out.push_str(&encode_value(v));
    }
    out
}

/// Encode a result schema as a `SCHEMA` data line.
pub fn encode_schema(names: &[&str]) -> String {
    format!("SCHEMA {}", names.join("\t"))
}

/// Parse one wire value literal (the inverse of [`encode_value`], except for
/// sets, which no command accepts).
pub fn parse_value(token: &str) -> Result<Value, MalformedRequest> {
    let token = token.trim();
    match token {
        "NULL" => return Ok(Value::Null),
        "TRUE" => return Ok(Value::Bool(true)),
        "FALSE" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(inner) = token.strip_prefix('\'') {
        let inner = inner
            .strip_suffix('\'')
            .ok_or_else(|| malformed("unterminated string literal"))?;
        return parse_quoted_body(inner);
    }
    token
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| malformed(format!("unparseable value literal `{token}`")))
}

fn parse_quoted_body(inner: &str) -> Result<Value, MalformedRequest> {
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(malformed(format!("unknown escape `\\{other}`")));
                }
                None => return Err(malformed("dangling escape at end of literal")),
            },
            '\'' => match chars.next() {
                Some('\'') => out.push('\''),
                Some(_) | None => {
                    return Err(malformed("stray quote inside string literal"));
                }
            },
            other => out.push(other),
        }
    }
    Ok(Value::from(out))
}

/// Token of the `EXECUTE` argument grammar.
enum Token {
    Word(String),
    Binding(String, Value),
}

/// A whitespace/comma tokenizer that keeps single-quoted literals (with
/// their escapes) intact.
struct Tokenizer<'a> {
    rest: &'a str,
}

impl<'a> Tokenizer<'a> {
    fn new(s: &'a str) -> Self {
        Tokenizer { rest: s }
    }

    /// The byte length of the literal starting at the front of `s` (which
    /// must start with `'`), including both quotes.
    ///
    /// The byte walk cannot hand a non-boundary length to `split_at`: the
    /// returned length always ends on a `'` byte (0x27), which in UTF-8
    /// only ever encodes the quote character itself — continuation bytes
    /// are ≥ 0x80. A `\` that skips into the middle of a multi-byte
    /// character merely lands on a continuation byte that matches neither
    /// arm, so the scan resynchronizes at the next quote.
    fn quoted_len(s: &str) -> Result<usize, MalformedRequest> {
        debug_assert!(s.starts_with('\''));
        let bytes = s.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2; // doubled quote stays inside the literal
                    } else {
                        return Ok(i + 1);
                    }
                }
                _ => i += 1,
            }
        }
        Err(malformed("unterminated string literal"))
    }

    /// Next whitespace-delimited token: a bare word or a `$name=value`
    /// binding (whose value may be a quoted literal containing spaces).
    fn next_token(&mut self) -> Result<Option<Token>, MalformedRequest> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Ok(None);
        }
        if let Some(binding) = self.rest.strip_prefix('$') {
            let (key, after) = binding
                .split_once('=')
                .ok_or_else(|| malformed("EXECUTE bindings must look like $name=value"))?;
            if key.is_empty() || key.contains(char::is_whitespace) {
                return Err(malformed("EXECUTE bindings must look like $name=value"));
            }
            let (raw, rest) = if after.starts_with('\'') {
                let len = Self::quoted_len(after)?;
                after.split_at(len)
            } else {
                match after.find(char::is_whitespace) {
                    Some(i) => after.split_at(i),
                    None => (after, ""),
                }
            };
            self.rest = rest;
            let value = parse_value(raw)?;
            return Ok(Some(Token::Binding(key.to_string(), value)));
        }
        let (word, rest) = match self.rest.find(char::is_whitespace) {
            Some(i) => self.rest.split_at(i),
            None => (self.rest, ""),
        };
        self.rest = rest;
        Ok(Some(Token::Word(word.to_string())))
    }

    /// Next comma-separated value in a row literal, or `None` at the end.
    fn next_value_in_list(&mut self) -> Result<Option<Value>, MalformedRequest> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Ok(None);
        }
        let (raw, rest) = if self.rest.starts_with('\'') {
            let len = Self::quoted_len(self.rest)?;
            self.rest.split_at(len)
        } else {
            match self.rest.find(',') {
                Some(i) => self.rest.split_at(i),
                None => (self.rest, ""),
            }
        };
        let value = parse_value(raw)?;
        let rest = rest.trim_start();
        self.rest = match rest.strip_prefix(',') {
            Some(tail) => tail,
            None if rest.is_empty() => rest,
            None => return Err(malformed("row values must be comma-separated")),
        };
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_codec_round_trips() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::from("plain"),
            Value::from("it's got 'quotes'"),
            Value::from("tabs\tnewlines\nreturns\rback\\slash"),
            Value::from(""),
        ];
        for v in values {
            let encoded = encode_value(&v);
            assert!(!encoded.contains('\n'), "framing-safe: {encoded:?}");
            assert_eq!(parse_value(&encoded).unwrap(), v, "via {encoded:?}");
        }
    }

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("QUERY SELECT a FROM t").unwrap(),
            Request::Query("SELECT a FROM t".into())
        );
        assert_eq!(
            parse_request("PREPARE q1 SELECT a FROM t WHERE b = $b").unwrap(),
            Request::Prepare {
                name: "q1".into(),
                sql: "SELECT a FROM t WHERE b = $b".into()
            }
        );
        assert_eq!(
            parse_request("EXECUTE q1 $b='it''s a test' $n=3").unwrap(),
            Request::Execute {
                name: "q1".into(),
                params: vec![
                    ("b".into(), Value::from("it's a test")),
                    ("n".into(), Value::Int(3)),
                ],
            }
        );
        assert_eq!(
            parse_request("EXPLAIN ANALYZE SELECT a FROM t").unwrap(),
            Request::Explain {
                sql: "SELECT a FROM t".into(),
                analyze: true
            }
        );
        assert_eq!(
            parse_request("MUTATE REGISTER t (a, b) VALUES (1, 'x; y'); (2, NULL)").unwrap(),
            Request::Register {
                table: "t".into(),
                columns: vec!["a".into(), "b".into()],
                rows: vec![
                    vec![Value::Int(1), Value::from("x; y")],
                    vec![Value::Int(2), Value::Null],
                ],
            }
        );
        assert_eq!(
            parse_request("MUTATE DROP t").unwrap(),
            Request::Drop("t".into())
        );
        assert_eq!(
            parse_request("MUTATE ATTACH big /tmp/spool/big.divcol").unwrap(),
            Request::Attach {
                table: "big".into(),
                path: "/tmp/spool/big.divcol".into(),
            }
        );
        assert_eq!(parse_request("SESSION").unwrap(), Request::Session);
        assert_eq!(parse_request("CANCEL 42").unwrap(), Request::Cancel(42));
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "   ",
            "NOSUCH",
            "QUERY",
            "PREPARE q1",
            "EXECUTE",
            "EXECUTE q1 color=blue",
            "EXECUTE q1 $color",
            "MUTATE",
            "MUTATE DROP",
            "MUTATE DROP two words",
            "MUTATE ATTACH",
            "MUTATE ATTACH lonely",
            "MUTATE ATTACH t /path with spaces",
            "MUTATE REGISTER t () VALUES (1)",
            "MUTATE REGISTER t (a) VALUES (1, 2)",
            "MUTATE REGISTER t (a) VALUES 1",
            "MUTATE REGISTER t (a) VALUES ('unterminated)",
            "PING extra",
            "METRICS now",
            "CANCEL",
            "CANCEL not-a-number",
            "CANCEL -3",
            "SESSION 5",
        ] {
            assert!(parse_request(line).is_err(), "should reject {line:?}");
        }
    }

    #[test]
    fn governance_errors_map_to_their_wire_codes() {
        assert_eq!(
            code_for(&div_sql::Error::Cancelled {
                operator: "Scan".into()
            }),
            ErrorCode::Cancelled
        );
        assert_eq!(
            code_for(&div_sql::Error::DeadlineExceeded {
                operator: "CrossProduct".into(),
                limit_ms: 50,
            }),
            ErrorCode::Deadline
        );
        assert_eq!(
            code_for(&div_sql::Error::MemoryBudget {
                operator: "HashJoin".into(),
                budget_rows: 10,
                resident_rows: 25,
            }),
            ErrorCode::Memory
        );
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::TooLarge,
            ErrorCode::Parse,
            ErrorCode::Plan,
            ErrorCode::UnboundParameter,
            ErrorCode::UnknownParameter,
            ErrorCode::StalePlan,
            ErrorCode::UnknownStatement,
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::Shutdown,
            ErrorCode::Cancelled,
            ErrorCode::Deadline,
            ErrorCode::Memory,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert!(ErrorCode::Busy.retryable());
        assert!(!ErrorCode::Parse.retryable());
        // Governance aborts are deliberate outcomes, not transient overload:
        // resending the same statement verbatim would just trip again.
        assert!(!ErrorCode::Cancelled.retryable());
        assert!(!ErrorCode::Deadline.retryable());
        assert!(!ErrorCode::Memory.retryable());
        assert_eq!(
            err_line(ErrorCode::Parse, "bad\nthing"),
            "ERR PARSE bad thing"
        );
    }
}
