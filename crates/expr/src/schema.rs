//! Output schema inference for logical plans.

use crate::{ExprError, LogicalPlan, Result};
use div_algebra::Schema;

/// Source of base-table schemas, implemented by [`Catalog`](crate::Catalog)
/// and by the planner test fixtures.
pub trait SchemaProvider {
    /// The schema of the named base table, if it exists.
    fn table_schema(&self, name: &str) -> Option<Schema>;
}

/// A schema provider with no tables (useful for plans built purely from
/// [`LogicalPlan::Values`] nodes).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyProvider;

impl SchemaProvider for EmptyProvider {
    fn table_schema(&self, _name: &str) -> Option<Schema> {
        None
    }
}

/// Infer the output schema of `plan`, validating attribute references and the
/// schema preconditions of every operator along the way.
///
/// The division nodes enforce the schema rules of Section 2 of the paper:
/// for `SmallDivide` every divisor attribute must occur in the dividend and the
/// quotient attribute set `A` must be nonempty; for `GreatDivide` the shared
/// attribute set `B` must be nonempty and the output schema is `A ∪ C`.
pub fn infer_schema(plan: &LogicalPlan, provider: &dyn SchemaProvider) -> Result<Schema> {
    match plan {
        LogicalPlan::Scan { table } => {
            provider
                .table_schema(table)
                .ok_or_else(|| ExprError::UnknownTable {
                    table: table.clone(),
                })
        }
        LogicalPlan::Values { relation } => Ok(relation.schema().clone()),
        LogicalPlan::Select { input, predicate } => {
            let schema = infer_schema(input, provider)?;
            for attr in predicate.referenced_attributes() {
                if !schema.contains(&attr) {
                    return Err(ExprError::invalid(format!(
                        "selection predicate references `{attr}` which is not in the input schema {schema}"
                    )));
                }
            }
            Ok(schema)
        }
        LogicalPlan::Project { input, attributes } => {
            let schema = infer_schema(input, provider)?;
            let refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
            schema.project(&refs).map_err(ExprError::from)
        }
        LogicalPlan::Rename { input, renames } => {
            let schema = infer_schema(input, provider)?;
            for (from, _) in renames {
                if !schema.contains(from) {
                    return Err(ExprError::invalid(format!(
                        "rename references `{from}` which is not in the input schema {schema}"
                    )));
                }
            }
            schema
                .rename_with(|name| {
                    renames
                        .iter()
                        .find(|(from, _)| from == name)
                        .map(|(_, to)| to.clone())
                        .unwrap_or_else(|| name.to_string())
                })
                .map_err(ExprError::from)
        }
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right } => {
            let ls = infer_schema(left, provider)?;
            let rs = infer_schema(right, provider)?;
            if !ls.is_compatible_with(&rs) {
                return Err(ExprError::invalid(format!(
                    "{} operands must be union-compatible, got {ls} and {rs}",
                    plan.name()
                )));
            }
            Ok(ls)
        }
        LogicalPlan::Product { left, right } | LogicalPlan::ThetaJoin { left, right, .. } => {
            let ls = infer_schema(left, provider)?;
            let rs = infer_schema(right, provider)?;
            let combined = ls.concat(&rs).map_err(ExprError::from)?;
            if let LogicalPlan::ThetaJoin { predicate, .. } = plan {
                for attr in predicate.referenced_attributes() {
                    if !combined.contains(&attr) {
                        return Err(ExprError::invalid(format!(
                            "join predicate references `{attr}` which is not in the combined schema {combined}"
                        )));
                    }
                }
            }
            Ok(combined)
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let ls = infer_schema(left, provider)?;
            let rs = infer_schema(right, provider)?;
            Ok(ls.natural_union(&rs))
        }
        LogicalPlan::SemiJoin { left, right } | LogicalPlan::AntiSemiJoin { left, right } => {
            // Output schema is the left schema; the right operand only filters.
            let ls = infer_schema(left, provider)?;
            infer_schema(right, provider)?;
            Ok(ls)
        }
        LogicalPlan::SmallDivide { dividend, divisor } => {
            let ds = infer_schema(dividend, provider)?;
            let vs = infer_schema(divisor, provider)?;
            if vs.is_empty() {
                return Err(ExprError::invalid(
                    "small divide requires a divisor with at least one attribute",
                ));
            }
            for b in vs.names() {
                if !ds.contains(b) {
                    return Err(ExprError::invalid(format!(
                        "divisor attribute `{b}` does not occur in the dividend schema {ds}"
                    )));
                }
            }
            let quotient = ds.difference_attributes(&vs);
            if quotient.is_empty() {
                return Err(ExprError::invalid(
                    "small divide requires the dividend to have at least one attribute of its own (A nonempty)",
                ));
            }
            let refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
            ds.project(&refs).map_err(ExprError::from)
        }
        LogicalPlan::GreatDivide { dividend, divisor } => {
            let ds = infer_schema(dividend, provider)?;
            let vs = infer_schema(divisor, provider)?;
            let shared = ds.common_attributes(&vs);
            if shared.is_empty() {
                return Err(ExprError::invalid(
                    "great divide requires the dividend and divisor to share at least one attribute (B nonempty)",
                ));
            }
            let quotient = ds.difference_attributes(&vs);
            if quotient.is_empty() {
                return Err(ExprError::invalid(
                    "great divide requires the dividend to have at least one attribute of its own (A nonempty)",
                ));
            }
            let group = vs.difference_attributes(&ds);
            let mut names: Vec<&str> = quotient.iter().map(String::as_str).collect();
            names.extend(group.iter().map(String::as_str));
            Schema::new(names).map_err(ExprError::from)
        }
        LogicalPlan::GroupAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let schema = infer_schema(input, provider)?;
            for g in group_by {
                if !schema.contains(g) {
                    return Err(ExprError::invalid(format!(
                        "grouping attribute `{g}` is not in the input schema {schema}"
                    )));
                }
            }
            for agg in aggregates {
                if !schema.contains(&agg.input) {
                    return Err(ExprError::invalid(format!(
                        "aggregate input `{}` is not in the input schema {schema}",
                        agg.input
                    )));
                }
            }
            let mut names: Vec<String> = group_by.clone();
            names.extend(aggregates.iter().map(|a| a.output.clone()));
            Schema::new(names).map_err(ExprError::from)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, PlanBuilder};
    use div_algebra::{relation, AggregateCall, Predicate};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("supplies", relation! { ["s#", "p#"] => [1, 1] });
        c.register("parts", relation! { ["p#", "color"] => [1, "blue"] });
        c
    }

    #[test]
    fn scan_and_project_schema() {
        let c = catalog();
        let plan = PlanBuilder::scan("supplies").project(["s#"]).build();
        assert_eq!(infer_schema(&plan, &c).unwrap().names(), vec!["s#"]);
        let missing = PlanBuilder::scan("nope").build();
        assert!(matches!(
            infer_schema(&missing, &c).unwrap_err(),
            ExprError::UnknownTable { .. }
        ));
    }

    #[test]
    fn select_validates_predicate_attributes() {
        let c = catalog();
        let good = PlanBuilder::scan("parts")
            .select(Predicate::eq_value("color", "blue"))
            .build();
        assert!(infer_schema(&good, &c).is_ok());
        let bad = PlanBuilder::scan("parts")
            .select(Predicate::eq_value("weight", 1))
            .build();
        assert!(infer_schema(&bad, &c).is_err());
    }

    #[test]
    fn small_divide_schema_is_quotient_attributes() {
        let c = catalog();
        let plan = PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("parts").project(["p#"]))
            .build();
        assert_eq!(infer_schema(&plan, &c).unwrap().names(), vec!["s#"]);
    }

    #[test]
    fn small_divide_rejects_bad_schemas() {
        let c = catalog();
        // Divisor attribute `color` not in dividend.
        let bad = PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("parts"))
            .build();
        assert!(infer_schema(&bad, &c).is_err());
        // Quotient would be empty.
        let empty_quotient = PlanBuilder::scan("supplies")
            .project(["p#"])
            .divide(PlanBuilder::scan("parts").project(["p#"]))
            .build();
        assert!(infer_schema(&empty_quotient, &c).is_err());
    }

    #[test]
    fn great_divide_schema_is_a_union_c() {
        let mut c = Catalog::new();
        c.register("transactions", relation! { ["tid", "item"] => [1, 1] });
        c.register("candidates", relation! { ["item", "itemset"] => [1, 10] });
        let plan = PlanBuilder::scan("transactions")
            .great_divide(PlanBuilder::scan("candidates"))
            .build();
        assert_eq!(
            infer_schema(&plan, &c).unwrap().names(),
            vec!["tid", "itemset"]
        );
    }

    #[test]
    fn set_operations_require_union_compatibility() {
        let c = catalog();
        let bad = PlanBuilder::scan("supplies")
            .union(PlanBuilder::scan("parts"))
            .build();
        assert!(infer_schema(&bad, &c).is_err());
        let good = PlanBuilder::scan("supplies")
            .union(PlanBuilder::scan("supplies"))
            .build();
        assert!(infer_schema(&good, &c).is_ok());
    }

    #[test]
    fn rename_and_aggregate_schemas() {
        let c = catalog();
        let plan = PlanBuilder::scan("supplies")
            .rename([("p#", "part")])
            .group_aggregate(["s#"], [AggregateCall::count("part", "n")])
            .build();
        assert_eq!(infer_schema(&plan, &c).unwrap().names(), vec!["s#", "n"]);
        let bad = PlanBuilder::scan("supplies").rename([("zz", "q")]).build();
        assert!(infer_schema(&bad, &c).is_err());
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let c = catalog();
        let plan = PlanBuilder::scan("supplies")
            .semi_join(PlanBuilder::scan("parts"))
            .build();
        assert_eq!(infer_schema(&plan, &c).unwrap().names(), vec!["s#", "p#"]);
    }

    #[test]
    fn values_nodes_need_no_provider() {
        let plan = PlanBuilder::values(relation! { ["x"] => [1] }).build();
        assert_eq!(
            infer_schema(&plan, &EmptyProvider).unwrap().names(),
            vec!["x"]
        );
    }
}
