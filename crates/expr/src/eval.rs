//! The reference interpreter: evaluate a [`LogicalPlan`] against a [`Catalog`]
//! using the set-semantics operators of `div-algebra`.
//!
//! This evaluator is deliberately naive — every node fully materializes its
//! result — because its role is to be an *oracle*: the laws of `div-rewrite`
//! and the physical algorithms of `div-physical` are tested against it. It
//! additionally records per-operator statistics ([`EvalStats`]) so tests and
//! benches can observe intermediate result sizes, the quantity at the heart of
//! the paper's argument that division must be a first-class operator
//! (simulations produce quadratic intermediates, see Section 6 and \[25\]).

use crate::{Catalog, ExprError, LogicalPlan, Result};
use div_algebra::Relation;
use std::collections::BTreeMap;

/// Execution statistics of one [`evaluate_with_stats`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of plan nodes evaluated.
    pub nodes_evaluated: usize,
    /// Total number of tuples produced across all intermediate results
    /// (excluding base-table scans).
    pub intermediate_tuples: usize,
    /// The largest single intermediate result produced.
    pub max_intermediate: usize,
    /// Tuples produced per operator kind.
    pub tuples_per_operator: BTreeMap<&'static str, usize>,
}

impl EvalStats {
    fn record(&mut self, plan: &LogicalPlan, result: &Relation) {
        self.nodes_evaluated += 1;
        if !matches!(plan, LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) {
            self.intermediate_tuples += result.len();
            self.max_intermediate = self.max_intermediate.max(result.len());
        }
        *self.tuples_per_operator.entry(plan.name()).or_insert(0) += result.len();
    }
}

/// Evaluate `plan` against `catalog`, returning the result relation.
pub fn evaluate(plan: &LogicalPlan, catalog: &Catalog) -> Result<Relation> {
    let mut stats = EvalStats::default();
    eval_node(plan, catalog, &mut stats)
}

/// Evaluate `plan` against `catalog`, returning the result relation and the
/// execution statistics.
pub fn evaluate_with_stats(plan: &LogicalPlan, catalog: &Catalog) -> Result<(Relation, EvalStats)> {
    let mut stats = EvalStats::default();
    let result = eval_node(plan, catalog, &mut stats)?;
    Ok((result, stats))
}

fn eval_node(plan: &LogicalPlan, catalog: &Catalog, stats: &mut EvalStats) -> Result<Relation> {
    let result: Relation = match plan {
        LogicalPlan::Scan { table } => catalog.table(table)?.clone(),
        LogicalPlan::Values { relation } => relation.clone(),
        LogicalPlan::Select { input, predicate } => {
            eval_node(input, catalog, stats)?.select(predicate)?
        }
        LogicalPlan::Project { input, attributes } => {
            eval_node(input, catalog, stats)?.project_owned(attributes)?
        }
        LogicalPlan::Rename { input, renames } => {
            let rel = eval_node(input, catalog, stats)?;
            for (from, _) in renames {
                if !rel.schema().contains(from) {
                    return Err(ExprError::invalid(format!(
                        "rename references `{from}` which is not in the input schema {}",
                        rel.schema()
                    )));
                }
            }
            rel.rename_with(|name| {
                renames
                    .iter()
                    .find(|(from, _)| from == name)
                    .map(|(_, to)| to.clone())
                    .unwrap_or_else(|| name.to_string())
            })?
        }
        LogicalPlan::Union { left, right } => {
            eval_node(left, catalog, stats)?.union(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::Intersect { left, right } => {
            eval_node(left, catalog, stats)?.intersect(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::Difference { left, right } => {
            eval_node(left, catalog, stats)?.difference(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::Product { left, right } => {
            eval_node(left, catalog, stats)?.product(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::ThetaJoin {
            left,
            right,
            predicate,
        } => eval_node(left, catalog, stats)?
            .theta_join(&eval_node(right, catalog, stats)?, predicate)?,
        LogicalPlan::NaturalJoin { left, right } => {
            eval_node(left, catalog, stats)?.natural_join(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::SemiJoin { left, right } => {
            eval_node(left, catalog, stats)?.semi_join(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::AntiSemiJoin { left, right } => {
            eval_node(left, catalog, stats)?.anti_semi_join(&eval_node(right, catalog, stats)?)?
        }
        LogicalPlan::SmallDivide { dividend, divisor } => {
            eval_node(dividend, catalog, stats)?.divide(&eval_node(divisor, catalog, stats)?)?
        }
        LogicalPlan::GreatDivide { dividend, divisor } => eval_node(dividend, catalog, stats)?
            .great_divide(&eval_node(divisor, catalog, stats)?)?,
        LogicalPlan::GroupAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rel = eval_node(input, catalog, stats)?;
            let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
            rel.group_aggregate(&refs, aggregates)?
        }
    };
    stats.record(plan, &result);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanBuilder;
    use div_algebra::{relation, AggregateCall, CompareOp, Predicate};

    fn suppliers_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! {
                ["s#", "p#"] =>
                [1, 1], [1, 2],
                [2, 1], [2, 2], [2, 3],
                [3, 2],
            },
        );
        c.register(
            "parts",
            relation! {
                ["p#", "color"] =>
                [1, "blue"], [2, "blue"], [3, "red"],
            },
        );
        c
    }

    #[test]
    fn q2_suppliers_of_all_blue_parts() {
        // Query Q2 of the paper: suppliers that supply all blue parts.
        let catalog = suppliers_catalog();
        let plan = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        let result = evaluate(&plan, &catalog).unwrap();
        assert_eq!(result, relation! { ["s#"] => [1], [2] });
    }

    #[test]
    fn q1_great_divide_by_color_groups() {
        // Query Q1: for each color, the suppliers supplying all parts of that
        // color — a great divide of supplies by parts(p#, color).
        let catalog = suppliers_catalog();
        let plan = PlanBuilder::scan("supplies")
            .great_divide(PlanBuilder::scan("parts"))
            .build();
        let result = evaluate(&plan, &catalog).unwrap();
        let expected = relation! {
            ["s#", "color"] =>
            [1, "blue"], [2, "blue"],
            [2, "red"],
        };
        assert_eq!(result, expected);
    }

    #[test]
    fn evaluation_uses_all_operator_kinds() {
        let catalog = suppliers_catalog();
        let plan = PlanBuilder::scan("supplies")
            .natural_join(PlanBuilder::scan("parts"))
            .select(Predicate::eq_value("color", "blue"))
            .project(["s#", "p#"])
            .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
            .select(Predicate::cmp_value("n", CompareOp::GtEq, 2))
            .project(["s#"])
            .build();
        let result = evaluate(&plan, &catalog).unwrap();
        assert_eq!(result, relation! { ["s#"] => [1], [2] });
    }

    #[test]
    fn stats_track_intermediate_sizes() {
        let catalog = suppliers_catalog();
        // The basic-operator simulation of division (Healy's definition)
        // produces a product of size |π_A(r1)| * |r2|.
        let simulation = PlanBuilder::scan("supplies")
            .project(["s#"])
            .product(
                PlanBuilder::scan("parts")
                    .project(["p#"])
                    .rename([("p#", "pp")]),
            )
            .build();
        let (_, stats) = evaluate_with_stats(&simulation, &catalog).unwrap();
        assert_eq!(stats.tuples_per_operator["Product"], 9);
        assert!(stats.max_intermediate >= 9);
        assert_eq!(stats.nodes_evaluated, 6);

        // The first-class divide touches far fewer intermediate tuples.
        let divide = PlanBuilder::scan("supplies")
            .divide(PlanBuilder::scan("parts").project(["p#"]))
            .build();
        let (_, divide_stats) = evaluate_with_stats(&divide, &catalog).unwrap();
        assert!(divide_stats.max_intermediate < stats.max_intermediate);
    }

    #[test]
    fn unknown_table_and_bad_rename_error() {
        let catalog = suppliers_catalog();
        let plan = PlanBuilder::scan("nope").build();
        assert!(evaluate(&plan, &catalog).is_err());
        let bad_rename = PlanBuilder::scan("parts").rename([("zz", "q")]).build();
        assert!(evaluate(&bad_rename, &catalog).is_err());
    }

    #[test]
    fn rename_then_union_combines_compatible_tables() {
        let mut catalog = Catalog::new();
        catalog.register("r1", relation! { ["a"] => [1], [2] });
        catalog.register("r2", relation! { ["b"] => [2], [3] });
        let plan = PlanBuilder::scan("r1")
            .union(PlanBuilder::scan("r2").rename([("b", "a")]))
            .build();
        let result = evaluate(&plan, &catalog).unwrap();
        assert_eq!(result, relation! { ["a"] => [1], [2], [3] });
    }

    #[test]
    fn values_node_evaluates_to_itself() {
        let catalog = Catalog::new();
        let rel = relation! { ["x"] => [42] };
        let plan = PlanBuilder::values(rel.clone()).build();
        assert_eq!(evaluate(&plan, &catalog).unwrap(), rel);
    }
}
