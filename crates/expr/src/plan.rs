//! The logical plan tree.

use crate::Result;
use div_algebra::{AggregateCall, Predicate, Relation};
use std::fmt;

/// A logical relational-algebra expression.
///
/// Every operator of the paper's Appendix A is a node variant; in particular
/// the two division operators are *first-class* variants so that the rewrite
/// rules of `div-rewrite` can match on them directly. Plans are immutable
/// trees; the transformation helpers ([`LogicalPlan::transform_up`],
/// [`LogicalPlan::transform_down`]) rebuild the tree as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalPlan {
    /// Scan of a named base relation registered in the catalog.
    Scan {
        /// Table name.
        table: String,
    },
    /// An inline relation literal. Used for one-tuple relations in proofs,
    /// for tests, and by rewrites that materialize small constants.
    Values {
        /// The literal relation.
        relation: Relation,
    },
    /// Selection `σ_predicate(input)`.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection `π_attributes(input)` (set semantics).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Attributes to keep, in output order.
        attributes: Vec<String>,
    },
    /// Rename attributes of the input (`ρ`).
    Rename {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Pairs of `(old_name, new_name)`.
        renames: Vec<(String, String)>,
    },
    /// Set union.
    Union {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Set intersection.
    Intersect {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Set difference.
    Difference {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Cartesian product.
    Product {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Theta-join `left ⋈_θ right`.
    ThetaJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated schema.
        predicate: Predicate,
    },
    /// Natural join on all common attribute names.
    NaturalJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Left semi-join `left ⋉ right`.
    SemiJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Left anti-semi-join `left ▷ right`.
    AntiSemiJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// Small divide `dividend ÷ divisor`.
    SmallDivide {
        /// Dividend (schema `A ∪ B`).
        dividend: Box<LogicalPlan>,
        /// Divisor (schema `B`).
        divisor: Box<LogicalPlan>,
    },
    /// Great divide `dividend ÷* divisor`.
    GreatDivide {
        /// Dividend (schema `A ∪ B`).
        dividend: Box<LogicalPlan>,
        /// Divisor (schema `B ∪ C`).
        divisor: Box<LogicalPlan>,
    },
    /// Grouping with aggregation `GγF(input)`.
    GroupAggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping attributes `G`.
        group_by: Vec<String>,
        /// Aggregate list `F`.
        aggregates: Vec<AggregateCall>,
    },
}

/// Result of a single transformation attempt: either a rewritten plan or the
/// statement that nothing changed. Mirrors the convention of production
/// optimizers (e.g. DataFusion's `Transformed`) so rule application can stop
/// at a fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transformed {
    /// The rule produced a new plan.
    Yes(LogicalPlan),
    /// The rule did not apply.
    No(LogicalPlan),
}

impl Transformed {
    /// The contained plan, regardless of whether it was rewritten.
    pub fn into_plan(self) -> LogicalPlan {
        match self {
            Transformed::Yes(p) | Transformed::No(p) => p,
        }
    }

    /// `true` if the rule produced a new plan.
    pub fn is_transformed(&self) -> bool {
        matches!(self, Transformed::Yes(_))
    }
}

impl LogicalPlan {
    /// Short operator name used by displays and statistics.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Values { .. } => "Values",
            LogicalPlan::Select { .. } => "Select",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Rename { .. } => "Rename",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Intersect { .. } => "Intersect",
            LogicalPlan::Difference { .. } => "Difference",
            LogicalPlan::Product { .. } => "Product",
            LogicalPlan::ThetaJoin { .. } => "ThetaJoin",
            LogicalPlan::NaturalJoin { .. } => "NaturalJoin",
            LogicalPlan::SemiJoin { .. } => "SemiJoin",
            LogicalPlan::AntiSemiJoin { .. } => "AntiSemiJoin",
            LogicalPlan::SmallDivide { .. } => "SmallDivide",
            LogicalPlan::GreatDivide { .. } => "GreatDivide",
            LogicalPlan::GroupAggregate { .. } => "GroupAggregate",
        }
    }

    /// The children of this node, left to right.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Rename { input, .. }
            | LogicalPlan::GroupAggregate { input, .. } => vec![input],
            LogicalPlan::Union { left, right }
            | LogicalPlan::Intersect { left, right }
            | LogicalPlan::Difference { left, right }
            | LogicalPlan::Product { left, right }
            | LogicalPlan::ThetaJoin { left, right, .. }
            | LogicalPlan::NaturalJoin { left, right }
            | LogicalPlan::SemiJoin { left, right }
            | LogicalPlan::AntiSemiJoin { left, right } => vec![left, right],
            LogicalPlan::SmallDivide { dividend, divisor }
            | LogicalPlan::GreatDivide { dividend, divisor } => vec![dividend, divisor],
        }
    }

    /// Rebuild this node with new children (same arity and order as
    /// [`LogicalPlan::children`]).
    pub fn with_children(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        let mut next = || Box::new(children.remove(0));
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => self.clone(),
            LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                input: next(),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { attributes, .. } => LogicalPlan::Project {
                input: next(),
                attributes: attributes.clone(),
            },
            LogicalPlan::Rename { renames, .. } => LogicalPlan::Rename {
                input: next(),
                renames: renames.clone(),
            },
            LogicalPlan::GroupAggregate {
                group_by,
                aggregates,
                ..
            } => LogicalPlan::GroupAggregate {
                input: next(),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Union { .. } => LogicalPlan::Union {
                left: next(),
                right: next(),
            },
            LogicalPlan::Intersect { .. } => LogicalPlan::Intersect {
                left: next(),
                right: next(),
            },
            LogicalPlan::Difference { .. } => LogicalPlan::Difference {
                left: next(),
                right: next(),
            },
            LogicalPlan::Product { .. } => LogicalPlan::Product {
                left: next(),
                right: next(),
            },
            LogicalPlan::ThetaJoin { predicate, .. } => LogicalPlan::ThetaJoin {
                left: next(),
                right: next(),
                predicate: predicate.clone(),
            },
            LogicalPlan::NaturalJoin { .. } => LogicalPlan::NaturalJoin {
                left: next(),
                right: next(),
            },
            LogicalPlan::SemiJoin { .. } => LogicalPlan::SemiJoin {
                left: next(),
                right: next(),
            },
            LogicalPlan::AntiSemiJoin { .. } => LogicalPlan::AntiSemiJoin {
                left: next(),
                right: next(),
            },
            LogicalPlan::SmallDivide { .. } => LogicalPlan::SmallDivide {
                dividend: next(),
                divisor: next(),
            },
            LogicalPlan::GreatDivide { .. } => LogicalPlan::GreatDivide {
                dividend: next(),
                divisor: next(),
            },
        }
    }

    /// Apply `f` to every node bottom-up (children first), rebuilding the tree.
    /// `f` receives each (already-rewritten-below) node and may replace it.
    pub fn transform_up(
        &self,
        f: &mut impl FnMut(LogicalPlan) -> Result<Transformed>,
    ) -> Result<Transformed> {
        let mut any = false;
        let mut new_children = Vec::new();
        for child in self.children() {
            let t = child.transform_up(f)?;
            any |= t.is_transformed();
            new_children.push(t.into_plan());
        }
        let rebuilt = if new_children.is_empty() {
            self.clone()
        } else {
            self.with_children(new_children)
        };
        let result = f(rebuilt)?;
        Ok(if any || result.is_transformed() {
            Transformed::Yes(result.into_plan())
        } else {
            Transformed::No(result.into_plan())
        })
    }

    /// Apply `f` to every node top-down (node first, then its — possibly new —
    /// children), rebuilding the tree.
    pub fn transform_down(
        &self,
        f: &mut impl FnMut(LogicalPlan) -> Result<Transformed>,
    ) -> Result<Transformed> {
        let result = f(self.clone())?;
        let transformed_here = result.is_transformed();
        let plan = result.into_plan();
        let mut any = transformed_here;
        let mut new_children = Vec::new();
        for child in plan.children() {
            let t = child.transform_down(f)?;
            any |= t.is_transformed();
            new_children.push(t.into_plan());
        }
        let rebuilt = if new_children.is_empty() {
            plan.clone()
        } else {
            plan.with_children(new_children)
        };
        Ok(if any {
            Transformed::Yes(rebuilt)
        } else {
            Transformed::No(rebuilt)
        })
    }

    /// Visit every node pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        for child in self.children() {
            child.visit(f);
        }
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// `true` when the plan contains a small or great divide node.
    pub fn contains_division(&self) -> bool {
        let mut found = false;
        self.visit(&mut |node| {
            if matches!(
                node,
                LogicalPlan::SmallDivide { .. } | LogicalPlan::GreatDivide { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// The set of `$parameter` placeholder names occurring in any predicate
    /// of the plan (prepared-statement support; empty for ordinary plans).
    pub fn parameters(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.visit(&mut |node| match node {
            LogicalPlan::Select { predicate, .. } | LogicalPlan::ThetaJoin { predicate, .. } => {
                out.extend(predicate.parameters());
            }
            _ => {}
        });
        out
    }

    /// `true` when the plan contains at least one unbound `$parameter`
    /// placeholder; such plans cannot be evaluated until the placeholders are
    /// bound.
    pub fn contains_parameters(&self) -> bool {
        // Allocation-free short-circuit: this runs inside the optimizer's
        // per-candidate precondition checks.
        match self {
            LogicalPlan::Select { input, predicate } => {
                predicate.has_parameters() || input.contains_parameters()
            }
            LogicalPlan::ThetaJoin {
                left,
                right,
                predicate,
            } => {
                predicate.has_parameters()
                    || left.contains_parameters()
                    || right.contains_parameters()
            }
            other => other
                .children()
                .iter()
                .any(|child| child.contains_parameters()),
        }
    }

    /// Substitute every `$parameter` placeholder whose name appears in
    /// `bindings` with the bound constant (see
    /// [`div_algebra::Predicate::bind_parameters`]); placeholders without a
    /// binding are left in place.
    pub fn bind_parameters(
        &self,
        bindings: &std::collections::BTreeMap<String, div_algebra::Value>,
    ) -> LogicalPlan {
        if !self.contains_parameters() {
            return self.clone();
        }
        self.transform_up(&mut |node| {
            Ok(match &node {
                LogicalPlan::Select { input, predicate } if predicate.has_parameters() => {
                    Transformed::Yes(LogicalPlan::Select {
                        input: input.clone(),
                        predicate: predicate.bind_parameters(bindings),
                    })
                }
                LogicalPlan::ThetaJoin {
                    left,
                    right,
                    predicate,
                } if predicate.has_parameters() => Transformed::Yes(LogicalPlan::ThetaJoin {
                    left: left.clone(),
                    right: right.clone(),
                    predicate: predicate.bind_parameters(bindings),
                }),
                _ => Transformed::No(node),
            })
        })
        .expect("binding parameters cannot fail")
        .into_plan()
    }

    /// The names of all base tables scanned by the plan (with duplicates, in
    /// scan order) — useful for statistics and tests.
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut tables = Vec::new();
        self.visit(&mut |node| {
            if let LogicalPlan::Scan { table } = node {
                tables.push(table.clone());
            }
        });
        tables
    }

    /// Render the plan as an indented explain tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn label(&self) -> String {
        match self {
            LogicalPlan::Scan { table } => format!("Scan: {table}"),
            LogicalPlan::Values { relation } => {
                format!(
                    "Values: {} tuple(s), schema {}",
                    relation.len(),
                    relation.schema()
                )
            }
            LogicalPlan::Select { predicate, .. } => format!("Select: {predicate}"),
            LogicalPlan::Project { attributes, .. } => {
                format!("Project: {}", attributes.join(", "))
            }
            LogicalPlan::Rename { renames, .. } => {
                let pairs: Vec<String> = renames
                    .iter()
                    .map(|(from, to)| format!("{from} -> {to}"))
                    .collect();
                format!("Rename: {}", pairs.join(", "))
            }
            LogicalPlan::Union { .. } => "Union".to_string(),
            LogicalPlan::Intersect { .. } => "Intersect".to_string(),
            LogicalPlan::Difference { .. } => "Difference".to_string(),
            LogicalPlan::Product { .. } => "Product".to_string(),
            LogicalPlan::ThetaJoin { predicate, .. } => format!("ThetaJoin: {predicate}"),
            LogicalPlan::NaturalJoin { .. } => "NaturalJoin".to_string(),
            LogicalPlan::SemiJoin { .. } => "SemiJoin".to_string(),
            LogicalPlan::AntiSemiJoin { .. } => "AntiSemiJoin".to_string(),
            LogicalPlan::SmallDivide { .. } => "SmallDivide (÷)".to_string(),
            LogicalPlan::GreatDivide { .. } => "GreatDivide (÷*)".to_string(),
            LogicalPlan::GroupAggregate {
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                format!(
                    "GroupAggregate: group by [{}], aggregates [{}]",
                    group_by.join(", "),
                    aggs.join(", ")
                )
            }
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label());
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanBuilder;
    use div_algebra::Predicate;

    fn sample_plan() -> LogicalPlan {
        PlanBuilder::scan("supplies")
            .select(Predicate::eq_value("color", "blue"))
            .divide(PlanBuilder::scan("parts"))
            .project(["s#"])
            .build()
    }

    #[test]
    fn children_and_with_children_round_trip() {
        let plan = sample_plan();
        let children: Vec<LogicalPlan> = plan.children().into_iter().cloned().collect();
        let rebuilt = plan.with_children(children);
        assert_eq!(plan, rebuilt);
    }

    #[test]
    fn node_count_and_scanned_tables() {
        let plan = sample_plan();
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.scanned_tables(), vec!["supplies", "parts"]);
        assert!(plan.contains_division());
        assert!(!PlanBuilder::scan("x").build().contains_division());
    }

    #[test]
    fn transform_up_replaces_nodes() {
        // Replace every Scan of "parts" with a scan of "blue_parts".
        let plan = sample_plan();
        let rewritten = plan
            .transform_up(&mut |node| {
                Ok(match node {
                    LogicalPlan::Scan { table } if table == "parts" => {
                        Transformed::Yes(LogicalPlan::Scan {
                            table: "blue_parts".to_string(),
                        })
                    }
                    other => Transformed::No(other),
                })
            })
            .unwrap();
        assert!(rewritten.is_transformed());
        assert_eq!(
            rewritten.into_plan().scanned_tables(),
            vec!["supplies", "blue_parts"]
        );
    }

    #[test]
    fn transform_up_reports_no_change() {
        let plan = sample_plan();
        let result = plan
            .transform_up(&mut |node| Ok(Transformed::No(node)))
            .unwrap();
        assert!(!result.is_transformed());
        assert_eq!(result.into_plan(), plan);
    }

    #[test]
    fn transform_down_sees_parent_before_children() {
        let plan = sample_plan();
        let mut order = Vec::new();
        plan.transform_down(&mut |node| {
            order.push(node.name());
            Ok(Transformed::No(node))
        })
        .unwrap();
        assert_eq!(order[0], "Project");
        assert!(order.contains(&"SmallDivide"));
    }

    #[test]
    fn explain_is_indented_tree() {
        let plan = sample_plan();
        let text = plan.explain();
        assert!(text.starts_with("Project: s#"));
        assert!(text.contains("\n  SmallDivide"));
        assert!(text.contains("\n      Scan: supplies"));
        // Display delegates to explain.
        assert_eq!(plan.to_string(), text);
    }

    #[test]
    fn transformed_accessors() {
        let p = LogicalPlan::Scan { table: "t".into() };
        assert!(Transformed::Yes(p.clone()).is_transformed());
        assert!(!Transformed::No(p.clone()).is_transformed());
        assert_eq!(Transformed::Yes(p.clone()).into_plan(), p);
    }
}
