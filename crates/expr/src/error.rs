//! Errors raised while building, validating or evaluating logical plans.

use div_algebra::AlgebraError;
use std::fmt;

/// Error type of the `div-expr` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A scan referenced a table that is not registered in the catalog.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// A plan node is structurally invalid (e.g. a projection references an
    /// attribute its input does not produce).
    InvalidPlan {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An error bubbled up from the algebra layer while evaluating.
    Algebra(AlgebraError),
    /// The query's cancellation token was tripped while this operator was
    /// producing rows.
    Cancelled {
        /// Label of the operator that observed the cancellation.
        operator: String,
    },
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded {
        /// Label of the operator that observed the expired deadline.
        operator: String,
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// The query's resident-row memory budget was exceeded.
    MemoryBudget {
        /// Label of the operator whose emission tripped the budget.
        operator: String,
        /// The configured budget, in resident rows.
        budget_rows: usize,
        /// Resident rows at the moment the budget tripped.
        resident_rows: usize,
    },
    /// An error raised by the storage layer: on-disk table format
    /// corruption, checksum mismatches, or spill-file IO failures.
    Storage {
        /// Human-readable description (the storage error's display form).
        detail: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownTable { table } => {
                write!(f, "unknown table `{table}` (not registered in the catalog)")
            }
            ExprError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            ExprError::Algebra(err) => write!(f, "algebra error: {err}"),
            ExprError::Cancelled { operator } => {
                write!(f, "query cancelled (at operator {operator})")
            }
            ExprError::DeadlineExceeded { operator, limit_ms } => {
                write!(
                    f,
                    "deadline of {limit_ms}ms exceeded (at operator {operator})"
                )
            }
            ExprError::MemoryBudget {
                operator,
                budget_rows,
                resident_rows,
            } => write!(
                f,
                "memory budget of {budget_rows} resident rows exceeded \
                 ({resident_rows} resident, at operator {operator})"
            ),
            ExprError::Storage { detail } => write!(f, "storage error: {detail}"),
        }
    }
}

impl std::error::Error for ExprError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExprError::Algebra(err) => Some(err),
            _ => None,
        }
    }
}

impl From<AlgebraError> for ExprError {
    fn from(err: AlgebraError) -> Self {
        ExprError::Algebra(err)
    }
}

impl ExprError {
    /// Shorthand constructor for [`ExprError::InvalidPlan`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ExprError::InvalidPlan {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_contain_context() {
        let e = ExprError::UnknownTable {
            table: "parts".into(),
        };
        assert!(e.to_string().contains("parts"));
        let e = ExprError::invalid("projection references `z`");
        assert!(e.to_string().contains("projection"));
    }

    #[test]
    fn algebra_errors_convert_and_chain() {
        let inner = AlgebraError::ArityMismatch {
            expected: 2,
            actual: 3,
        };
        let e: ExprError = inner.clone().into();
        assert_eq!(e, ExprError::Algebra(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
