//! Errors raised while building, validating or evaluating logical plans.

use div_algebra::AlgebraError;
use std::fmt;

/// Error type of the `div-expr` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A scan referenced a table that is not registered in the catalog.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// A plan node is structurally invalid (e.g. a projection references an
    /// attribute its input does not produce).
    InvalidPlan {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An error bubbled up from the algebra layer while evaluating.
    Algebra(AlgebraError),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownTable { table } => {
                write!(f, "unknown table `{table}` (not registered in the catalog)")
            }
            ExprError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            ExprError::Algebra(err) => write!(f, "algebra error: {err}"),
        }
    }
}

impl std::error::Error for ExprError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExprError::Algebra(err) => Some(err),
            _ => None,
        }
    }
}

impl From<AlgebraError> for ExprError {
    fn from(err: AlgebraError) -> Self {
        ExprError::Algebra(err)
    }
}

impl ExprError {
    /// Shorthand constructor for [`ExprError::InvalidPlan`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        ExprError::InvalidPlan {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_contain_context() {
        let e = ExprError::UnknownTable {
            table: "parts".into(),
        };
        assert!(e.to_string().contains("parts"));
        let e = ExprError::invalid("projection references `z`");
        assert!(e.to_string().contains("projection"));
    }

    #[test]
    fn algebra_errors_convert_and_chain() {
        let inner = AlgebraError::ArityMismatch {
            expected: 2,
            actual: 3,
        };
        let e: ExprError = inner.clone().into();
        assert_eq!(e, ExprError::Algebra(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
