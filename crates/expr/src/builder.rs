//! Fluent construction of logical plans.

use crate::LogicalPlan;
use div_algebra::{AggregateCall, Predicate, Relation};

/// A small fluent builder for [`LogicalPlan`] trees.
///
/// Each method consumes the builder and wraps the current plan in a new
/// operator, so plans read top-down in the order the operators apply:
///
/// ```
/// use div_expr::PlanBuilder;
/// use div_algebra::Predicate;
///
/// let plan = PlanBuilder::scan("supplies")
///     .divide(
///         PlanBuilder::scan("parts")
///             .select(Predicate::eq_value("color", "blue"))
///             .project(["p#"]),
///     )
///     .build();
/// assert!(plan.contains_division());
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Start from a base-table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Start from an inline relation literal.
    pub fn values(relation: Relation) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Values { relation },
        }
    }

    /// Start from an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        PlanBuilder { plan }
    }

    /// Finish and return the plan.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }

    /// Wrap in a selection.
    pub fn select(self, predicate: Predicate) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Wrap in a projection.
    pub fn project<I, S>(self, attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                attributes: attributes.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// Wrap in a rename.
    pub fn rename<I, S, T>(self, renames: I) -> Self
    where
        I: IntoIterator<Item = (S, T)>,
        S: Into<String>,
        T: Into<String>,
    {
        PlanBuilder {
            plan: LogicalPlan::Rename {
                input: Box::new(self.plan),
                renames: renames
                    .into_iter()
                    .map(|(a, b)| (a.into(), b.into()))
                    .collect(),
            },
        }
    }

    /// Union with another plan.
    pub fn union(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Union {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Intersection with another plan.
    pub fn intersect(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Intersect {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Difference with another plan.
    pub fn difference(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Difference {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Cartesian product with another plan.
    pub fn product(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Product {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Theta-join with another plan.
    pub fn theta_join(self, other: PlanBuilder, predicate: Predicate) -> Self {
        PlanBuilder {
            plan: LogicalPlan::ThetaJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                predicate,
            },
        }
    }

    /// Natural join with another plan.
    pub fn natural_join(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::NaturalJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Left semi-join with another plan.
    pub fn semi_join(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::SemiJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Left anti-semi-join with another plan.
    pub fn anti_semi_join(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::AntiSemiJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Small divide: `self ÷ divisor`.
    pub fn divide(self, divisor: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::SmallDivide {
                dividend: Box::new(self.plan),
                divisor: Box::new(divisor.plan),
            },
        }
    }

    /// Great divide: `self ÷* divisor`.
    pub fn great_divide(self, divisor: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::GreatDivide {
                dividend: Box::new(self.plan),
                divisor: Box::new(divisor.plan),
            },
        }
    }

    /// Grouping with aggregation.
    pub fn group_aggregate<I, S, A>(self, group_by: I, aggregates: A) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
        A: IntoIterator<Item = AggregateCall>,
    {
        PlanBuilder {
            plan: LogicalPlan::GroupAggregate {
                input: Box::new(self.plan),
                group_by: group_by.into_iter().map(Into::into).collect(),
                aggregates: aggregates.into_iter().collect(),
            },
        }
    }
}

impl From<PlanBuilder> for LogicalPlan {
    fn from(builder: PlanBuilder) -> Self {
        builder.build()
    }
}

impl From<LogicalPlan> for PlanBuilder {
    fn from(plan: LogicalPlan) -> Self {
        PlanBuilder::from_plan(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    #[test]
    fn builder_produces_expected_tree_shape() {
        let plan = PlanBuilder::scan("r1")
            .select(Predicate::eq_value("a", 1))
            .divide(PlanBuilder::scan("r2"))
            .project(["a"])
            .build();
        assert_eq!(plan.name(), "Project");
        assert_eq!(plan.node_count(), 5);
    }

    #[test]
    fn all_binary_constructors_wire_children() {
        let l = || PlanBuilder::scan("l");
        let r = || PlanBuilder::scan("r");
        for plan in [
            l().union(r()).build(),
            l().intersect(r()).build(),
            l().difference(r()).build(),
            l().product(r()).build(),
            l().theta_join(r(), Predicate::True).build(),
            l().natural_join(r()).build(),
            l().semi_join(r()).build(),
            l().anti_semi_join(r()).build(),
            l().divide(r()).build(),
            l().great_divide(r()).build(),
        ] {
            assert_eq!(plan.children().len(), 2, "{}", plan.name());
            assert_eq!(plan.scanned_tables(), vec!["l", "r"], "{}", plan.name());
        }
    }

    #[test]
    fn values_and_conversions() {
        let plan: LogicalPlan = PlanBuilder::values(relation! { ["x"] => [1], [2] }).into();
        assert_eq!(plan.name(), "Values");
        let back: PlanBuilder = plan.clone().into();
        assert_eq!(back.build(), plan);
    }

    #[test]
    fn group_aggregate_builder() {
        let plan = PlanBuilder::scan("quotient")
            .group_aggregate(["itemset"], [AggregateCall::count("tid", "support")])
            .build();
        match &plan {
            LogicalPlan::GroupAggregate {
                group_by,
                aggregates,
                ..
            } => {
                assert_eq!(group_by, &vec!["itemset".to_string()]);
                assert_eq!(aggregates.len(), 1);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }
}
