//! # div-expr
//!
//! Logical plan representation for queries containing division operators.
//!
//! This crate sits between the relational algebra substrate
//! ([`div_algebra`]) and the rewrite rules (`div-rewrite`): it provides
//!
//! * [`LogicalPlan`] — an expression tree over the operators of the paper's
//!   Appendix A, including [`LogicalPlan::SmallDivide`] and
//!   [`LogicalPlan::GreatDivide`] as first-class nodes (the paper's central
//!   requirement: the optimizer must be able to reason about division
//!   directly, not only about its simulation),
//! * schema inference and validation for every node,
//! * a [`Catalog`] of named relations and a reference [`evaluate`] interpreter
//!   that executes a plan with the set-semantics operators of `div-algebra`,
//! * a [`PlanBuilder`] for constructing plans fluently,
//! * tree traversal / transformation utilities used by the rewrite engine, and
//! * an equivalence checker used by the law tests
//!   ([`plans_equivalent_on`]).
//!
//! ```
//! use div_algebra::relation;
//! use div_expr::{Catalog, PlanBuilder, evaluate};
//!
//! let mut catalog = Catalog::new();
//! catalog.register("supplies", relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("blue_parts", relation! { ["p#"] => [1], [2] });
//!
//! // Which suppliers supply *all* blue parts?
//! let plan = PlanBuilder::scan("supplies").divide(PlanBuilder::scan("blue_parts")).build();
//! let result = evaluate(&plan, &catalog).unwrap();
//! assert_eq!(result, relation! { ["s#"] => [1] });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod equivalence;
pub mod error;
pub mod eval;
pub mod external;
pub mod plan;
pub mod schema;

pub use builder::PlanBuilder;
pub use catalog::Catalog;
pub use equivalence::{plans_equivalent_on, EquivalenceReport};
pub use error::ExprError;
pub use eval::{evaluate, evaluate_with_stats, EvalStats};
pub use external::{ExternalScan, ExternalTable};
pub use plan::{LogicalPlan, Transformed};
pub use schema::{infer_schema, SchemaProvider};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ExprError>;
