//! External (file-backed) tables.
//!
//! The catalog normally owns its relations in RAM. An *external* table is
//! instead backed by some out-of-process store — in this workspace, the
//! `div-storage` columnar file format — and registered through
//! [`Catalog::register_external`](crate::Catalog::register_external). The
//! catalog only keeps the handle; the data stays on disk until somebody
//! asks for it, and a streaming executor never has to ask for all of it at
//! once:
//!
//! * [`ExternalTable::open_scan`] yields a chunk-at-a-time cursor
//!   ([`ExternalScan`]) that a streaming scan operator can pull from,
//!   optionally skipping whole chunks whose zone maps prove that a
//!   pushed-down predicate cannot match ([`ExternalScan::chunks_skipped`]);
//! * [`ExternalTable::materialize`] loads the whole table into a
//!   [`Relation`] for the materializing backends and metadata validation
//!   paths (`declare_unique` etc.), cached by the catalog after the first
//!   load.
//!
//! The traits live here (rather than in `div-storage`) so the catalog can
//! hold `Arc<dyn ExternalTable>` without `div-expr` depending on the
//! storage crate — `div-storage` implements them for its `TableReader`,
//! keeping the dependency arrow pointing outward.

use crate::Result;
use div_algebra::{Predicate, Relation, Schema};
use div_columnar::ColumnarBatch;
use std::fmt::Debug;

/// A table whose data lives outside the catalog (typically in a
/// `div-storage` columnar file).
///
/// Implementations must be cheap to clone the *handle* of (the catalog
/// stores them behind [`Arc`](std::sync::Arc)) and must serve concurrent
/// scans: `open_scan` takes `&self` and each returned cursor owns whatever
/// file handles it needs.
pub trait ExternalTable: Debug + Send + Sync {
    /// The table's schema, available without touching the data pages.
    fn schema(&self) -> &Schema;

    /// Total number of rows, from the file footer.
    fn row_count(&self) -> usize;

    /// Number of on-disk chunks the table is split into.
    fn chunk_count(&self) -> usize;

    /// Open a chunk-at-a-time cursor over the table. When a predicate is
    /// supplied the implementation may skip chunks whose zone maps prove
    /// no row can satisfy it; skipping is *conservative* — returned chunks
    /// may still contain non-matching rows, so the caller must re-apply
    /// the predicate.
    fn open_scan(&self, predicate: Option<&Predicate>) -> Result<Box<dyn ExternalScan>>;

    /// Load the entire table into an in-memory [`Relation`]. Used by the
    /// materializing execution backends and by catalog metadata validation;
    /// the catalog caches the result so the file is read at most once per
    /// catalog entry.
    fn materialize(&self) -> Result<Relation>;
}

/// A chunk-at-a-time cursor over an [`ExternalTable`].
pub trait ExternalScan: Send {
    /// The next chunk, or `None` when the table is exhausted. Chunks are
    /// returned in file order; chunk boundaries follow the writer's
    /// batching, not the caller's batch size.
    fn next_chunk(&mut self) -> Result<Option<ColumnarBatch>>;

    /// Number of chunks skipped so far because their zone maps excluded
    /// the pushed-down predicate. Monotonically non-decreasing across
    /// `next_chunk` calls.
    fn chunks_skipped(&self) -> usize;
}
