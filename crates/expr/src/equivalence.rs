//! Checking that two plans are equivalent on a given database.
//!
//! An algebraic law is "a logical equivalence between two different
//! representations of an algebraic expression: both representations describe
//! the same set of tuples for every possible database content" (Section 1.1).
//! Full semantic equivalence cannot be decided by testing, but the law tests
//! in this workspace check equivalence on many concrete databases — the
//! paper's own figures plus thousands of randomly generated ones — which is
//! how the property tests falsify incorrect rewrites.

use crate::{evaluate, Catalog, LogicalPlan, Result};
use div_algebra::Relation;

/// The outcome of comparing two plans on one catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Result of the left plan.
    pub left: Relation,
    /// Result of the right plan.
    pub right: Relation,
    /// Whether the two results are the same set of tuples (after conforming
    /// attribute order).
    pub equivalent: bool,
}

impl EquivalenceReport {
    /// Human-readable summary used in test failure messages.
    pub fn describe(&self) -> String {
        if self.equivalent {
            format!("equivalent ({} tuples)", self.left.len())
        } else {
            format!(
                "NOT equivalent.\nleft ({} tuples):\n{}\nright ({} tuples):\n{}",
                self.left.len(),
                self.left.to_table_string(),
                self.right.len(),
                self.right.to_table_string()
            )
        }
    }
}

/// Evaluate both plans on `catalog` and compare their results as sets of
/// tuples. Attribute order may differ between the two plans (e.g. a rewrite
/// that moves a projection); the right result is conformed to the left
/// result's attribute order before comparing.
pub fn plans_equivalent_on(
    left: &LogicalPlan,
    right: &LogicalPlan,
    catalog: &Catalog,
) -> Result<EquivalenceReport> {
    let left_result = evaluate(left, catalog)?;
    let right_result = evaluate(right, catalog)?;
    let equivalent = if left_result
        .schema()
        .is_compatible_with(right_result.schema())
    {
        right_result.conform_to(left_result.schema())? == left_result
    } else {
        false
    };
    Ok(EquivalenceReport {
        left: left_result,
        right: right_result,
        equivalent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanBuilder;
    use div_algebra::{relation, Predicate};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3] });
        c
    }

    #[test]
    fn law3_instance_is_equivalent() {
        // σ_{a=2}(r1 ÷ r2) = σ_{a=2}(r1) ÷ r2 (Law 3 on Figure 1 data).
        let c = catalog();
        let left = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 2))
            .build();
        let right = PlanBuilder::scan("r1")
            .select(Predicate::eq_value("a", 2))
            .divide(PlanBuilder::scan("r2"))
            .build();
        let report = plans_equivalent_on(&left, &right, &c).unwrap();
        assert!(report.equivalent, "{}", report.describe());
    }

    #[test]
    fn different_results_are_reported() {
        let c = catalog();
        let left = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .build();
        let right = PlanBuilder::scan("r1").project(["a"]).build();
        let report = plans_equivalent_on(&left, &right, &c).unwrap();
        assert!(!report.equivalent);
        assert!(report.describe().contains("NOT equivalent"));
    }

    #[test]
    fn attribute_order_differences_are_tolerated() {
        let c = catalog();
        let left = PlanBuilder::scan("r1").project(["a", "b"]).build();
        let right = PlanBuilder::scan("r1").project(["b", "a"]).build();
        let report = plans_equivalent_on(&left, &right, &c).unwrap();
        assert!(report.equivalent);
    }

    #[test]
    fn incompatible_schemas_are_not_equivalent() {
        let c = catalog();
        let left = PlanBuilder::scan("r1").project(["a"]).build();
        let right = PlanBuilder::scan("r1").project(["b"]).build();
        let report = plans_equivalent_on(&left, &right, &c).unwrap();
        assert!(!report.equivalent);
    }

    #[test]
    fn evaluation_errors_propagate() {
        let c = catalog();
        let bad = PlanBuilder::scan("missing").build();
        let good = PlanBuilder::scan("r1").build();
        assert!(plans_equivalent_on(&bad, &good, &c).is_err());
    }
}
