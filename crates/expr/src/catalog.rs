//! The catalog: a named collection of base relations plus the integrity
//! metadata some laws depend on.
//!
//! Laws 9, 11 and 12 have preconditions that cannot be read off the query
//! alone: Law 12 requires that "`r2.B` is a foreign key referencing `r1.B`",
//! Law 9's Example 3 uses the fact that "`r**1.b2` is a unique attribute and
//! `r2.b2` is a foreign key that references `r**1`". The catalog therefore
//! tracks declared unique keys and foreign keys alongside the table data so
//! the rewrite rules can check these preconditions the way a real optimizer
//! would (from schema metadata, not by scanning the data).

use crate::{ExprError, ExternalTable, Result, SchemaProvider};
use div_algebra::{Relation, Schema};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A declared foreign-key constraint: `from_table.from_attributes` references
/// `to_table.to_attributes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing attributes.
    pub from_attributes: Vec<String>,
    /// Referenced table.
    pub to_table: String,
    /// Referenced attributes.
    pub to_attributes: Vec<String>,
}

/// One catalog entry: either an in-memory relation or a handle to an
/// external (file-backed) table.
///
/// External entries carry a lazily-populated materialization cache so the
/// `&Relation`-returning lookups ([`Catalog::table`]) keep working: the
/// first such lookup loads the file, later ones (and catalog clones, which
/// share the [`Arc`]'d cell) reuse the loaded copy. Streaming executors
/// never touch the cache — they scan chunk-at-a-time through
/// [`Catalog::external`].
#[derive(Debug, Clone)]
enum TableEntry {
    Memory(Arc<Relation>),
    External {
        table: Arc<dyn ExternalTable>,
        cache: Arc<OnceLock<Arc<Relation>>>,
    },
}

impl TableEntry {
    /// The entry as a shared in-memory relation, materializing (and
    /// caching) an external table on first use.
    fn resolve(&self) -> Result<&Arc<Relation>> {
        match self {
            TableEntry::Memory(rel) => Ok(rel),
            TableEntry::External { table, cache } => {
                if let Some(rel) = cache.get() {
                    return Ok(rel);
                }
                let loaded = Arc::new(table.materialize()?);
                // A concurrent materialization may have won the race; both
                // loaded the same file, so either copy is fine.
                Ok(cache.get_or_init(|| loaded))
            }
        }
    }

    /// The relation if it is resident in memory (always for `Memory`
    /// entries, only after materialization for external ones).
    fn resident(&self) -> Option<&Relation> {
        match self {
            TableEntry::Memory(rel) => Some(rel),
            TableEntry::External { cache, .. } => cache.get().map(Arc::as_ref),
        }
    }

    fn schema(&self) -> &Schema {
        match self {
            TableEntry::Memory(rel) => rel.schema(),
            TableEntry::External { table, .. } => table.schema(),
        }
    }
}

/// An in-memory database: named relations plus integrity metadata.
///
/// Tables are stored behind [`Arc`]s, so cloning a catalog (the
/// copy-on-write step of `div_sql::Engine::mutate_catalog`) copies only the
/// name map, and executors can hold shared handles to the tables they scan
/// ([`Catalog::table_shared`]) that outlive subsequent catalog mutations —
/// the foundation of snapshot isolation for concurrent serving.
///
/// A table may alternatively be *external* — backed by a file through the
/// [`ExternalTable`] trait and registered with
/// [`register_external`](Catalog::register_external) — in which case the
/// catalog holds only the handle and (after first use) a cached
/// materialization.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
    unique_keys: BTreeMap<String, Vec<Vec<String>>>,
    foreign_keys: Vec<ForeignKey>,
    version: u64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            tables: BTreeMap::new(),
            unique_keys: BTreeMap::new(),
            foreign_keys: Vec::new(),
            version: next_version(),
        }
    }
}

/// Process-globally unique, monotonically increasing version stamps. Two
/// catalogs share a version only when one is a clone of the other with no
/// mutation since — in which case their contents are identical.
fn next_version() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A version stamp that changes on every mutation of the catalog (table
    /// registration or replacement, constraint declarations).
    ///
    /// Compiled artifacts that embed assumptions about the catalog — most
    /// importantly prepared statements, which cache an optimized physical
    /// plan — record the version they were compiled against and compare it
    /// before reuse, so a mutated catalog invalidates stale plans instead of
    /// silently serving them. Stamps are process-globally unique (not a
    /// per-catalog counter), so two *different* catalogs never collide: a
    /// statement prepared against one engine cannot accidentally pass the
    /// staleness check of another.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        self.tables
            .insert(name.into(), TableEntry::Memory(Arc::new(relation)));
        self.version = next_version();
        self
    }

    /// Register (or replace) a table backed by an external store (a
    /// `div-storage` file, typically). The catalog keeps only the handle;
    /// the data is read chunk-at-a-time by streaming scans
    /// ([`Catalog::external`]) and materialized into RAM at most once, on
    /// the first [`Catalog::table`]-style lookup.
    pub fn register_external(
        &mut self,
        name: impl Into<String>,
        table: Arc<dyn ExternalTable>,
    ) -> &mut Self {
        self.tables.insert(
            name.into(),
            TableEntry::External {
                table,
                cache: Arc::new(OnceLock::new()),
            },
        );
        self.version = next_version();
        self
    }

    /// The external-table handle behind `name`, if `name` is registered as
    /// an external table. In-memory tables and unknown names return `None`
    /// — callers fall back to [`Catalog::table_shared`].
    pub fn external(&self, name: &str) -> Option<Arc<dyn ExternalTable>> {
        match self.tables.get(name) {
            Some(TableEntry::External { table, .. }) => Some(Arc::clone(table)),
            _ => None,
        }
    }

    /// Remove a table (and every constraint that mentions it). Returns the
    /// removed relation (materializing an external table if it was never
    /// loaded), or an [`ExprError::UnknownTable`] error when no such table
    /// is registered. Bumps the catalog version.
    pub fn unregister(&mut self, name: &str) -> Result<Arc<Relation>> {
        let removed = self
            .tables
            .remove(name)
            .ok_or_else(|| ExprError::UnknownTable {
                table: name.to_string(),
            })?;
        self.unique_keys.remove(name);
        self.foreign_keys
            .retain(|fk| fk.from_table != name && fk.to_table != name);
        self.version = next_version();
        Ok(Arc::clone(removed.resolve()?))
    }

    /// Look up a table, materializing an external table on first use.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| ExprError::UnknownTable {
                table: name.to_string(),
            })
            .and_then(|entry| entry.resolve().map(Arc::as_ref))
    }

    /// Look up a table as a shared handle. The handle stays valid (and the
    /// data immutable) even if the catalog is mutated or dropped afterwards
    /// — streaming scans hold these so an in-flight query keeps reading the
    /// snapshot it was planned against. External tables are materialized
    /// (once) to produce the handle; streaming scans avoid this by asking
    /// for [`Catalog::external`] first.
    pub fn table_shared(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables
            .get(name)
            .ok_or_else(|| ExprError::UnknownTable {
                table: name.to_string(),
            })
            .and_then(|entry| entry.resolve().cloned())
    }

    /// `true` if a table with this name is registered.
    pub fn contains_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate over `(name, relation)` pairs in name order.
    ///
    /// Only memory-resident data is yielded: external tables appear after
    /// their first materializing lookup and are silently skipped before it
    /// (this iterator cannot fail and must not do IO).
    pub fn tables(&self) -> impl Iterator<Item = (&str, &Relation)> + '_ {
        self.tables
            .iter()
            .filter_map(|(n, entry)| entry.resident().map(|r| (n.as_str(), r)))
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Declare a uniqueness constraint on `table(attributes)`.
    ///
    /// The constraint is validated against the current contents of the table
    /// (a real system would enforce it on writes).
    pub fn declare_unique(&mut self, table: &str, attributes: &[&str]) -> Result<()> {
        let rel = self.table(table)?;
        let projected = rel.project(attributes)?;
        if projected.len() != rel.len() {
            return Err(ExprError::invalid(format!(
                "cannot declare {table}({}) unique: {} tuples share key values",
                attributes.join(", "),
                rel.len() - projected.len()
            )));
        }
        self.unique_keys
            .entry(table.to_string())
            .or_default()
            .push(attributes.iter().map(|s| s.to_string()).collect());
        self.version = next_version();
        Ok(())
    }

    /// `true` if `attributes` is a declared unique key of `table`.
    pub fn is_unique(&self, table: &str, attributes: &[&str]) -> bool {
        self.unique_keys
            .get(table)
            .map(|keys| {
                keys.iter().any(|key| {
                    key.len() == attributes.len()
                        && key.iter().all(|k| attributes.contains(&k.as_str()))
                })
            })
            .unwrap_or(false)
    }

    /// Declare a foreign key and validate it against the current data.
    pub fn declare_foreign_key(
        &mut self,
        from_table: &str,
        from_attributes: &[&str],
        to_table: &str,
        to_attributes: &[&str],
    ) -> Result<()> {
        if from_attributes.len() != to_attributes.len() {
            return Err(ExprError::invalid(
                "foreign key attribute lists must have the same length",
            ));
        }
        let from = self.table(from_table)?.project(from_attributes)?;
        let to = self.table(to_table)?.project(to_attributes)?;
        // Conform attribute names so the subset test can run.
        let renamed = from.rename_with(|n| {
            let idx = from_attributes
                .iter()
                .position(|a| *a == n)
                .expect("projected attr");
            to_attributes[idx].to_string()
        })?;
        if !renamed.is_subset_of(&to)? {
            return Err(ExprError::invalid(format!(
                "foreign key violation: {from_table}({}) contains values not present in {to_table}({})",
                from_attributes.join(", "),
                to_attributes.join(", ")
            )));
        }
        self.foreign_keys.push(ForeignKey {
            from_table: from_table.to_string(),
            from_attributes: from_attributes.iter().map(|s| s.to_string()).collect(),
            to_table: to_table.to_string(),
            to_attributes: to_attributes.iter().map(|s| s.to_string()).collect(),
        });
        self.version = next_version();
        Ok(())
    }

    /// `true` if a foreign key `from_table(from_attributes) → to_table(to_attributes)`
    /// has been declared.
    pub fn has_foreign_key(
        &self,
        from_table: &str,
        from_attributes: &[&str],
        to_table: &str,
        to_attributes: &[&str],
    ) -> bool {
        self.foreign_keys.iter().any(|fk| {
            fk.from_table == from_table
                && fk.to_table == to_table
                && fk.from_attributes.len() == from_attributes.len()
                && fk.from_attributes.iter().zip(to_attributes.iter()).count()
                    == from_attributes.len()
                && fk
                    .from_attributes
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    == from_attributes
                && fk
                    .to_attributes
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    == to_attributes
        })
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }
}

impl SchemaProvider for Catalog {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.tables.get(name).map(|entry| entry.schema().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "red"] },
        );
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = catalog();
        assert_eq!(c.table_count(), 2);
        assert!(c.contains_table("parts"));
        assert_eq!(c.table("supplies").unwrap().len(), 3);
        assert!(matches!(
            c.table("nope").unwrap_err(),
            ExprError::UnknownTable { .. }
        ));
    }

    #[test]
    fn schema_provider_reports_schemas() {
        let c = catalog();
        assert_eq!(
            c.table_schema("parts").unwrap().names(),
            vec!["p#", "color"]
        );
        assert!(c.table_schema("nope").is_none());
    }

    #[test]
    fn unique_declaration_is_validated() {
        let mut c = catalog();
        c.declare_unique("parts", &["p#"]).unwrap();
        assert!(c.is_unique("parts", &["p#"]));
        assert!(!c.is_unique("parts", &["color"]));
        // s# is not unique in supplies (supplier 1 appears twice).
        assert!(c.declare_unique("supplies", &["s#"]).is_err());
    }

    #[test]
    fn foreign_key_declaration_is_validated() {
        let mut c = catalog();
        c.declare_foreign_key("supplies", &["p#"], "parts", &["p#"])
            .unwrap();
        assert!(c.has_foreign_key("supplies", &["p#"], "parts", &["p#"]));
        assert!(!c.has_foreign_key("parts", &["p#"], "supplies", &["p#"]));
        // Violated foreign key: parts.color -> supplies.s# makes no sense.
        assert!(c
            .declare_foreign_key("parts", &["color"], "supplies", &["s#"])
            .is_err());
    }

    #[test]
    fn version_changes_on_every_mutation() {
        let mut c = Catalog::new();
        let v0 = c.version();
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "red"] },
        );
        let v1 = c.version();
        assert_ne!(v0, v1);
        // Replacing an existing table is a mutation too.
        c.register("parts", relation! { ["p#", "color"] => [1, "blue"] });
        let v2 = c.version();
        assert_ne!(v1, v2);
        c.declare_unique("parts", &["p#"]).unwrap();
        let v3 = c.version();
        assert_ne!(v2, v3);
        // Failed declarations do not bump the version.
        assert!(c.declare_unique("missing", &["x"]).is_err());
        assert_eq!(c.version(), v3);
        // A clone starts at the same stamp (identical contents) and diverges
        // on its first mutation, leaving the original untouched.
        let mut clone = c.clone();
        assert_eq!(clone.version(), v3);
        clone.register("other", relation! { ["x"] => [1] });
        assert_ne!(clone.version(), v3);
        assert_eq!(c.version(), v3);
        // Two independently built catalogs never share a stamp, even with
        // identical mutation histories.
        let mut a = Catalog::new();
        let mut b = Catalog::new();
        a.register("t", relation! { ["x"] => [1] });
        b.register("t", relation! { ["x"] => [1] });
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn unregister_removes_table_and_its_constraints() {
        let mut c = catalog();
        c.declare_unique("parts", &["p#"]).unwrap();
        c.declare_foreign_key("supplies", &["p#"], "parts", &["p#"])
            .unwrap();
        let before = c.version();
        let removed = c.unregister("parts").unwrap();
        assert_eq!(removed.schema().names(), vec!["p#", "color"]);
        assert!(!c.contains_table("parts"));
        assert!(!c.is_unique("parts", &["p#"]));
        assert!(c.foreign_keys().is_empty());
        assert_ne!(c.version(), before);
        assert!(matches!(
            c.unregister("parts").unwrap_err(),
            ExprError::UnknownTable { .. }
        ));
    }

    #[test]
    fn shared_table_handles_survive_catalog_mutation() {
        let mut c = catalog();
        let snapshot = c.table_shared("parts").unwrap();
        assert_eq!(snapshot.len(), 2);
        // Replacing the table gives later readers the new data, while the
        // handle keeps reading the relation it was taken from.
        c.register("parts", relation! { ["p#", "color"] => [9, "green"] });
        assert_eq!(snapshot.len(), 2);
        assert_eq!(c.table("parts").unwrap().len(), 1);
        // Dropping the table entirely does not invalidate the handle either.
        c.unregister("parts").unwrap();
        assert_eq!(snapshot.len(), 2);
    }

    #[test]
    fn tables_iterates_in_name_order() {
        let c = catalog();
        let names: Vec<&str> = c.tables().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["parts", "supplies"]);
    }
}
