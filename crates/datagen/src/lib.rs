//! # div-datagen
//!
//! Workload generators for the *division-laws* benchmarks and property tests.
//!
//! Two scenario families appear in the paper:
//!
//! * the **suppliers-and-parts** database of Section 4 (queries Q1–Q3), and
//! * the **market-basket** transactions/candidates tables of Section 3
//!   (frequent itemset discovery).
//!
//! [`suppliers_parts`] and [`baskets`] generate those schemas at arbitrary
//! scale with controllable selectivities and Zipf-skewed popularity, and
//! [`partition`] provides the horizontal partitioning helpers used by the
//! parallel-law experiments (Laws 2 and 13).
//!
//! [`scenarios`] adds three *realistic* division families beyond the paper's
//! examples — RBAC role coverage, course completion, feature-flag rollout —
//! with tunable cardinality, skew, divisor selectivity and null density.
//! They are shared by the conformance fuzzer (`crates/conformance`), the
//! integration tests and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baskets;
pub mod partition;
pub mod scenarios;
pub mod suppliers_parts;
pub mod zipf;

pub use baskets::{BasketConfig, BasketData};
pub use scenarios::{ScenarioConfig, ScenarioData, ScenarioFamily, ScenarioNames};
pub use suppliers_parts::{SuppliersPartsConfig, SuppliersPartsData};
pub use zipf::ZipfSampler;
