//! A small Zipf-distribution sampler.
//!
//! Market-basket data is classically skewed: a few items occur in most
//! transactions while the long tail is rare. The basket generator uses this
//! sampler to draw item identifiers with probability `P(rank k) ∝ 1/k^s`.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` ranks with skew exponent `s`.
    ///
    /// `s = 0.0` degenerates to the uniform distribution; larger values skew
    /// harder toward low ranks. `n` must be at least 1.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize to [0, 1].
        for value in &mut cumulative {
            *value /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if the sampler has exactly one rank (degenerate).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("probabilities are finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let sampler = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 10);
        }
        assert_eq!(sampler.len(), 10);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn skewed_sampler_prefers_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Rank 0 must be sampled far more often than rank 50.
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "counts {counts:?}");
        }
    }

    #[test]
    fn degenerate_single_rank() {
        let sampler = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), 0);
    }
}
