//! Realistic division scenario families.
//!
//! The paper's suppliers-and-parts schema is the *textbook* division
//! workload; real systems meet the same "for all" shape in access control,
//! curriculum tracking and rollout tooling. This module generates three such
//! families behind one knob set, so the fuzzer, the conformance tests and the
//! benches all draw from the same distributions:
//!
//! * **RBAC** — `user_roles(user, role)` ÷ `required_roles(role)`: which
//!   users hold *all* required roles; the great divide against
//!   `dept_roles(role, dept)` asks it per department.
//! * **Course completion** — `completions(student, course)` ÷
//!   `required_courses(course)`, grouped by `program_courses(course,
//!   program)`.
//! * **Feature flags** — `service_flags(service, flag)` ÷
//!   `required_flags(flag)`, grouped by `platform_flags(flag, platform)`.
//!
//! Knobs: cardinality (`entities`, `items`, `groups`), Zipf `skew` of item
//! popularity, `divisor_selectivity` (fraction of items that are required),
//! `null_density` (dirty rows whose item key is NULL) and `full_entities`
//! (guaranteed quotient members). All generation is deterministic per
//! `seed`.

use crate::zipf::ZipfSampler;
use div_algebra::{Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The scenario family: fixes table/column names and key value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// Users holding ALL required roles (string entity and item keys).
    Rbac,
    /// Students having completed ALL required courses (integer keys).
    Courses,
    /// Services enabling ALL required feature flags (string entity,
    /// integer item keys).
    FeatureFlags,
}

impl ScenarioFamily {
    /// All families, for sweeping tests and benches.
    pub const ALL: [ScenarioFamily; 3] = [
        ScenarioFamily::Rbac,
        ScenarioFamily::Courses,
        ScenarioFamily::FeatureFlags,
    ];

    /// Stable lowercase name (used by golden-file `scenario` directives).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::Rbac => "rbac",
            ScenarioFamily::Courses => "courses",
            ScenarioFamily::FeatureFlags => "flags",
        }
    }

    /// Parse a [`ScenarioFamily::name`] back to the family.
    pub fn parse(name: &str) -> Option<ScenarioFamily> {
        ScenarioFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The table and column names of this family's schema.
    pub fn names(&self) -> ScenarioNames {
        match self {
            ScenarioFamily::Rbac => ScenarioNames {
                dividend_table: "user_roles",
                divisor_table: "required_roles",
                grouped_divisor_table: "dept_roles",
                entity_column: "user",
                item_column: "role",
                group_column: "dept",
            },
            ScenarioFamily::Courses => ScenarioNames {
                dividend_table: "completions",
                divisor_table: "required_courses",
                grouped_divisor_table: "program_courses",
                entity_column: "student",
                item_column: "course",
                group_column: "program",
            },
            ScenarioFamily::FeatureFlags => ScenarioNames {
                dividend_table: "service_flags",
                divisor_table: "required_flags",
                grouped_divisor_table: "platform_flags",
                entity_column: "service",
                item_column: "flag",
                group_column: "platform",
            },
        }
    }

    fn entity_value(&self, i: usize) -> Value {
        match self {
            ScenarioFamily::Rbac => Value::from(format!("u{i:03}")),
            ScenarioFamily::Courses => Value::from(i as i64),
            ScenarioFamily::FeatureFlags => Value::from(format!("svc-{i:02}")),
        }
    }

    fn item_value(&self, j: usize) -> Value {
        match self {
            ScenarioFamily::Rbac => Value::from(format!("role{j}")),
            ScenarioFamily::Courses => Value::from(100 + j as i64),
            ScenarioFamily::FeatureFlags => Value::from(j as i64),
        }
    }

    fn group_value(&self, g: usize) -> Value {
        match self {
            ScenarioFamily::Rbac => Value::from(format!("dept{g}")),
            ScenarioFamily::Courses => Value::from(format!("prog{g}")),
            ScenarioFamily::FeatureFlags => Value::from(format!("os{g}")),
        }
    }
}

/// Table and column names of one scenario family.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioNames {
    /// Membership (dividend) table.
    pub dividend_table: &'static str,
    /// Required-items (small-divide divisor) table.
    pub divisor_table: &'static str,
    /// Per-group required-items (great-divide divisor) table.
    pub grouped_divisor_table: &'static str,
    /// Quotient attribute of the dividend.
    pub entity_column: &'static str,
    /// Shared (divisor) attribute.
    pub item_column: &'static str,
    /// Group attribute of the grouped divisor.
    pub group_column: &'static str,
}

/// Configuration of the scenario generator.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Which family to generate.
    pub family: ScenarioFamily,
    /// Number of entities (users / students / services).
    pub entities: usize,
    /// Number of items (roles / courses / flags).
    pub items: usize,
    /// Number of divisor groups (departments / programs / platforms).
    pub groups: usize,
    /// Mean probability that an entity holds a given item.
    pub membership: f64,
    /// Zipf exponent of item popularity (0 = uniform).
    pub skew: f64,
    /// Fraction of items in the small-divide divisor, and the per-group
    /// inclusion probability in the grouped divisor. `0.0` yields an empty
    /// divisor (a legal edge case with well-defined semantics).
    pub divisor_selectivity: f64,
    /// Probability that a dividend row's item key is NULL (dirty data).
    pub null_density: f64,
    /// Fraction of entities that hold *every* item: guaranteed quotient
    /// members, so results stay nonempty at low membership.
    pub full_entities: f64,
    /// RNG seed; generation is deterministic per seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            family: ScenarioFamily::Rbac,
            entities: 50,
            items: 12,
            groups: 3,
            membership: 0.5,
            skew: 0.8,
            divisor_selectivity: 0.4,
            null_density: 0.0,
            full_entities: 0.1,
            seed: 42,
        }
    }
}

/// The generated tables of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// The family generated.
    pub family: ScenarioFamily,
    /// Membership table `(entity, item)` — the dividend.
    pub dividend: Relation,
    /// Required-items table `(item)` — the small-divide divisor.
    pub divisor: Relation,
    /// Per-group requirements `(item, group)` — the great-divide divisor.
    pub grouped_divisor: Relation,
}

impl ScenarioData {
    /// The names of the generated tables and columns.
    pub fn names(&self) -> ScenarioNames {
        self.family.names()
    }

    /// Register the three tables into a catalog under their family names.
    pub fn register_into(&self, catalog: &mut div_expr::Catalog) {
        let names = self.names();
        catalog.register(names.dividend_table, self.dividend.clone());
        catalog.register(names.divisor_table, self.divisor.clone());
        catalog.register(names.grouped_divisor_table, self.grouped_divisor.clone());
    }

    /// A fresh catalog holding the three tables.
    pub fn catalog(&self) -> div_expr::Catalog {
        let mut catalog = div_expr::Catalog::new();
        self.register_into(&mut catalog);
        catalog
    }

    /// `DIVIDE BY` SQL for the family's small divide: which entities hold
    /// all required items.
    pub fn small_divide_sql(&self) -> String {
        let n = self.names();
        format!(
            "SELECT {entity} FROM {dividend} AS m DIVIDE BY {divisor} AS r ON m.{item} = r.{item}",
            entity = n.entity_column,
            dividend = n.dividend_table,
            divisor = n.divisor_table,
            item = n.item_column,
        )
    }

    /// `DIVIDE BY` SQL for the family's great divide: which entities hold
    /// all items of each group.
    pub fn great_divide_sql(&self) -> String {
        let n = self.names();
        format!(
            "SELECT {entity}, {group} FROM {dividend} AS m \
             DIVIDE BY {grouped} AS g ON m.{item} = g.{item}",
            entity = n.entity_column,
            group = n.group_column,
            dividend = n.dividend_table,
            grouped = n.grouped_divisor_table,
            item = n.item_column,
        )
    }
}

/// Generate one scenario.
pub fn generate(config: &ScenarioConfig) -> ScenarioData {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ce7_a51a_b1e5_0000);
    let family = config.family;
    let names = family.names();
    let items = config.items;
    let entities = config.entities;

    // Per-item membership probability: Zipf-weighted so popular items are
    // held by most entities while the tail is rare, with the configured mean.
    let sampler = ZipfSampler::new(items.max(1), config.skew);
    let mut popularity = vec![0.0f64; items.max(1)];
    {
        // Recover the per-rank masses from the sampler's cumulative table by
        // resampling would be noisy; recompute the normalized weights
        // directly (same formula as the sampler).
        let mut total = 0.0;
        for (k, slot) in popularity.iter_mut().enumerate() {
            *slot = 1.0 / ((k + 1) as f64).powf(config.skew);
            total += *slot;
        }
        for slot in &mut popularity {
            *slot /= total;
        }
        debug_assert_eq!(popularity.len(), sampler.len());
    }
    let prob =
        |j: usize| -> f64 { (config.membership * items as f64 * popularity[j]).clamp(0.0, 1.0) };

    let full = ((config.full_entities * entities as f64).ceil() as usize).min(entities);
    let mut dividend_rows: Vec<Vec<Value>> = Vec::new();
    for e in 0..entities {
        let is_full = e < full;
        for j in 0..items {
            if is_full || rng.gen_bool(prob(j)) {
                let item = if !is_full && rng.gen_bool(config.null_density.clamp(0.0, 1.0)) {
                    Value::Null
                } else {
                    family.item_value(j)
                };
                dividend_rows.push(vec![family.entity_value(e), item]);
            }
        }
    }
    let dividend = Relation::from_rows([names.entity_column, names.item_column], dividend_rows)
        .expect("valid dividend rows");

    // Small-divide divisor: an evenly strided subset of the items, sized by
    // the selectivity knob (deterministic, so the quotient is predictable
    // from the knobs alone).
    let wanted = ((config.divisor_selectivity.clamp(0.0, 1.0)) * items as f64).ceil() as usize;
    let mut divisor_rows: Vec<Vec<Value>> = Vec::new();
    if wanted > 0 && items > 0 {
        let stride = (items / wanted).max(1);
        for j in (0..items).step_by(stride).take(wanted) {
            divisor_rows.push(vec![family.item_value(j)]);
        }
    }
    let divisor =
        Relation::from_rows([names.item_column], divisor_rows).expect("valid divisor rows");

    // Grouped divisor: each (item, group) pair joins with the selectivity
    // probability; group g is guaranteed item g mod items so no group is
    // accidentally empty (an empty group simply would not appear).
    let mut grouped_rows: Vec<Vec<Value>> = Vec::new();
    for g in 0..config.groups {
        for j in 0..items {
            let forced = items > 0 && j == g % items;
            if forced || rng.gen_bool(config.divisor_selectivity.clamp(0.0, 1.0)) {
                grouped_rows.push(vec![family.item_value(j), family.group_value(g)]);
            }
        }
    }
    let grouped_divisor =
        Relation::from_rows([names.item_column, names.group_column], grouped_rows)
            .expect("valid grouped divisor rows");

    ScenarioData {
        family,
        dividend,
        divisor,
        grouped_divisor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::Value;

    #[test]
    fn deterministic_per_seed() {
        let config = ScenarioConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.dividend, b.dividend);
        assert_eq!(a.divisor, b.divisor);
        assert_eq!(a.grouped_divisor, b.grouped_divisor);
        let c = generate(&ScenarioConfig { seed: 7, ..config });
        assert_ne!(a.dividend, c.dividend);
    }

    #[test]
    fn full_entities_land_in_the_quotient() {
        for family in ScenarioFamily::ALL {
            let config = ScenarioConfig {
                family,
                entities: 20,
                items: 8,
                membership: 0.1,
                full_entities: 0.25,
                null_density: 0.0,
                ..ScenarioConfig::default()
            };
            let data = generate(&config);
            let names = data.names();
            let quotient = data
                .dividend
                .divide(&data.divisor)
                .expect("small divide runs");
            // The first ceil(0.25 * 20) = 5 entities hold every item.
            for e in 0..5 {
                let held = quotient
                    .tuples()
                    .any(|t| t.values()[0] == family.entity_value(e));
                assert!(
                    held,
                    "{} entity {e} missing from quotient",
                    names.dividend_table
                );
            }
        }
    }

    #[test]
    fn divisor_selectivity_controls_divisor_size() {
        let config = ScenarioConfig {
            items: 10,
            divisor_selectivity: 0.3,
            ..ScenarioConfig::default()
        };
        assert_eq!(generate(&config).divisor.len(), 3);
        let empty = ScenarioConfig {
            divisor_selectivity: 0.0,
            ..config
        };
        assert!(generate(&empty).divisor.is_empty());
    }

    #[test]
    fn null_density_injects_nulls_only_into_item_keys() {
        let config = ScenarioConfig {
            entities: 40,
            items: 10,
            membership: 0.8,
            null_density: 0.3,
            full_entities: 0.0,
            ..ScenarioConfig::default()
        };
        let data = generate(&config);
        let mut nulls = 0usize;
        for t in data.dividend.tuples() {
            assert_ne!(t.values()[0], Value::Null, "entity keys stay non-null");
            if t.values()[1] == Value::Null {
                nulls += 1;
            }
        }
        assert!(nulls > 0, "expected some NULL item keys");
    }

    #[test]
    fn sql_helpers_round_trip_through_the_engine() {
        for family in ScenarioFamily::ALL {
            let data = generate(&ScenarioConfig {
                family,
                entities: 12,
                items: 6,
                groups: 2,
                ..ScenarioConfig::default()
            });
            let engine = div_sql::Engine::new(data.catalog());
            let small = engine
                .query_collect(&data.small_divide_sql())
                .expect("small divide SQL runs");
            let great = engine
                .query_collect(&data.great_divide_sql())
                .expect("great divide SQL runs");
            // Cross-check against the reference algebra.
            let expected_small = data
                .dividend
                .divide(&data.divisor)
                .expect("reference small divide");
            assert_eq!(small.relation, expected_small);
            assert_eq!(
                great.relation.schema().names(),
                vec![family.names().entity_column, family.names().group_column],
            );
        }
    }
}
