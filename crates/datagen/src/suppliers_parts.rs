//! The suppliers-and-parts workload of Section 4.
//!
//! Generates the `supplies(s#, p#)` and `parts(p#, color)` tables used by
//! queries Q1–Q3, with a configurable number of suppliers, parts, colors and a
//! "coverage" knob that controls how likely a supplier is to supply any given
//! part — and therefore how many suppliers end up supplying *all* parts of a
//! color (the quotient size).

use div_algebra::{Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the suppliers-parts generator.
#[derive(Debug, Clone, Copy)]
pub struct SuppliersPartsConfig {
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of distinct colors (cyclically assigned to parts).
    pub colors: usize,
    /// Probability that a given supplier supplies a given part.
    pub coverage: f64,
    /// Fraction of suppliers forced to supply *every* part (guaranteed
    /// quotient members); useful to keep results nonempty at low coverage.
    pub full_suppliers: f64,
    /// RNG seed, so workloads are reproducible.
    pub seed: u64,
}

impl Default for SuppliersPartsConfig {
    fn default() -> Self {
        SuppliersPartsConfig {
            suppliers: 100,
            parts: 50,
            colors: 5,
            coverage: 0.5,
            full_suppliers: 0.05,
            seed: 42,
        }
    }
}

/// The generated tables.
#[derive(Debug, Clone)]
pub struct SuppliersPartsData {
    /// `supplies(s#, p#)`.
    pub supplies: Relation,
    /// `parts(p#, color)`.
    pub parts: Relation,
}

/// Names of the colors used by the generator (cycled when
/// `config.colors` exceeds the list length the names get a numeric suffix).
pub const COLOR_NAMES: [&str; 6] = ["blue", "red", "green", "yellow", "black", "white"];

fn color_name(i: usize) -> String {
    if i < COLOR_NAMES.len() {
        COLOR_NAMES[i].to_string()
    } else {
        format!("color{i}")
    }
}

/// Generate a suppliers-parts database.
pub fn generate(config: &SuppliersPartsConfig) -> SuppliersPartsData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut parts_rows: Vec<Vec<Value>> = Vec::with_capacity(config.parts);
    for p in 0..config.parts {
        let color = color_name(p % config.colors.max(1));
        parts_rows.push(vec![Value::from(p as i64), Value::from(color)]);
    }
    let parts = Relation::from_rows(["p#", "color"], parts_rows).expect("valid parts rows");

    let mut supply_rows: Vec<Vec<Value>> = Vec::new();
    for s in 0..config.suppliers {
        let full = (s as f64) < config.full_suppliers * config.suppliers as f64;
        for p in 0..config.parts {
            if full || rng.gen_bool(config.coverage.clamp(0.0, 1.0)) {
                supply_rows.push(vec![Value::from(s as i64), Value::from(p as i64)]);
            }
        }
    }
    let supplies = Relation::from_rows(["s#", "p#"], supply_rows).expect("valid supply rows");
    SuppliersPartsData { supplies, parts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_respects_cardinalities() {
        let config = SuppliersPartsConfig {
            suppliers: 20,
            parts: 10,
            colors: 3,
            coverage: 1.0,
            full_suppliers: 0.0,
            seed: 1,
        };
        let data = generate(&config);
        assert_eq!(data.parts.len(), 10);
        assert_eq!(data.supplies.len(), 200);
        assert_eq!(data.parts.column("color").unwrap().len(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SuppliersPartsConfig::default();
        assert_eq!(generate(&config).supplies, generate(&config).supplies);
        let other = SuppliersPartsConfig { seed: 43, ..config };
        assert_ne!(generate(&config).supplies, generate(&other).supplies);
    }

    #[test]
    fn full_suppliers_supply_all_blue_parts() {
        let config = SuppliersPartsConfig {
            suppliers: 50,
            parts: 20,
            colors: 4,
            coverage: 0.1,
            full_suppliers: 0.1,
            seed: 9,
        };
        let data = generate(&config);
        // Q2: suppliers supplying all blue parts must include the full
        // suppliers (s# 0..5).
        let blue = data
            .parts
            .select(&div_algebra::Predicate::eq_value("color", "blue"))
            .unwrap()
            .project(&["p#"])
            .unwrap();
        let quotient = data.supplies.divide(&blue).unwrap();
        for s in 0..5i64 {
            assert!(quotient.contains(&div_algebra::Tuple::new([s])));
        }
    }

    #[test]
    fn color_names_extend_beyond_the_fixed_list() {
        assert_eq!(color_name(0), "blue");
        assert_eq!(color_name(7), "color7");
    }
}
