//! Horizontal partitioning helpers for the parallel-law experiments.
//!
//! Law 2 requires dividend partitions that satisfy condition `c2` (disjoint
//! quotient prefixes); Law 13 requires divisor partitions with disjoint group
//! values. Range partitioning on the respective key attribute guarantees both
//! by construction, which is exactly the "two parallel index scans" strategy
//! the paper sketches in Section 5.1.1.

use div_algebra::{AlgebraError, Relation, Value};

/// Split `relation` into `n` partitions by ranges of the distinct values of
/// `attribute`. Every partition keeps the full schema; the union of the
/// partitions is the input and their `attribute` projections are pairwise
/// disjoint.
pub fn range_partition(
    relation: &Relation,
    attribute: &str,
    n: usize,
) -> Result<Vec<Relation>, AlgebraError> {
    let n = n.max(1);
    let values: Vec<Value> = relation.column(attribute)?.into_iter().collect();
    let idx = relation.schema().require(attribute)?;
    let chunk = values.len().div_ceil(n).max(1);
    let mut partitions = vec![Relation::empty(relation.schema().clone()); n];
    for t in relation.tuples() {
        let v = &t.values()[idx];
        let rank = values.binary_search(v).unwrap_or_else(|i| i);
        let bucket = (rank / chunk).min(n - 1);
        partitions[bucket].insert(t.clone())?;
    }
    Ok(partitions)
}

/// Split a relation into `n` partitions round-robin (no disjointness
/// guarantees — used as the *negative* fixture for precondition tests, e.g. to
/// produce partitions that violate `c2`).
pub fn round_robin_partition(relation: &Relation, n: usize) -> Result<Vec<Relation>, AlgebraError> {
    let n = n.max(1);
    let mut partitions = vec![Relation::empty(relation.schema().clone()); n];
    for (i, t) in relation.tuples().enumerate() {
        partitions[i % n].insert(t.clone())?;
    }
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn sample() -> Relation {
        let mut rows = Vec::new();
        for a in 0..30i64 {
            for b in 0..3i64 {
                rows.push(vec![a, b]);
            }
        }
        Relation::from_rows(["a", "b"], rows).unwrap()
    }

    #[test]
    fn range_partition_covers_input_with_disjoint_keys() {
        let rel = sample();
        let parts = range_partition(&rel, "a", 4).unwrap();
        assert_eq!(parts.len(), 4);
        let mut union = Relation::empty(rel.schema().clone());
        for p in &parts {
            union = union.union(p).unwrap();
        }
        assert_eq!(union, rel);
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let a_i = parts[i].project(&["a"]).unwrap();
                let a_j = parts[j].project(&["a"]).unwrap();
                assert!(a_i.intersect(&a_j).unwrap().is_empty());
            }
        }
    }

    #[test]
    fn range_partition_single_bucket_is_identity() {
        let rel = sample();
        let parts = range_partition(&rel, "a", 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], rel);
    }

    #[test]
    fn round_robin_partitions_overlap_on_keys() {
        let rel = sample();
        let parts = round_robin_partition(&rel, 2).unwrap();
        let a_0 = parts[0].project(&["a"]).unwrap();
        let a_1 = parts[1].project(&["a"]).unwrap();
        // Round-robin deliberately breaks key disjointness.
        assert!(!a_0.intersect(&a_1).unwrap().is_empty());
    }

    #[test]
    fn unknown_attribute_errors() {
        let rel = relation! { ["a"] => [1] };
        assert!(range_partition(&rel, "zz", 2).is_err());
    }
}
