//! Market-basket workload for the frequent-itemset experiments of Section 3.
//!
//! Generates `transactions(tid, item)` with Zipf-skewed item popularity plus a
//! set of "planted" frequent itemsets that are injected into a fraction of the
//! transactions, so that the mining experiments have known frequent patterns
//! to discover — the same style of synthetic data as the classic IBM Quest
//! generator used by the association-rule literature the paper cites \[2\].

use crate::zipf::ZipfSampler;
use div_algebra::{Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of the basket generator.
#[derive(Debug, Clone, Copy)]
pub struct BasketConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Average transaction length (random items per transaction).
    pub avg_length: usize,
    /// Zipf exponent for item popularity.
    pub skew: f64,
    /// Number of planted frequent itemsets.
    pub planted_itemsets: usize,
    /// Size of each planted itemset.
    pub planted_size: usize,
    /// Probability that a transaction contains a given planted itemset.
    pub planted_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BasketConfig {
    fn default() -> Self {
        BasketConfig {
            transactions: 1_000,
            items: 100,
            avg_length: 8,
            skew: 1.0,
            planted_itemsets: 3,
            planted_size: 3,
            planted_probability: 0.3,
            seed: 7,
        }
    }
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct BasketData {
    /// `transactions(tid, item)` in the "vertical" first-normal-form layout
    /// the great-divide formulation of support counting needs.
    pub transactions: Relation,
    /// The itemsets that were planted (as sorted item lists); the mining tests
    /// assert that these are found when the support threshold is low enough.
    pub planted: Vec<Vec<i64>>,
}

/// Generate a market-basket workload.
pub fn generate(config: &BasketConfig) -> BasketData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampler = ZipfSampler::new(config.items.max(1), config.skew);

    // Plant itemsets over the *popular* end of the item range so they remain
    // frequent even with skewed noise.
    let mut planted = Vec::new();
    for p in 0..config.planted_itemsets {
        let start = (p * config.planted_size) % config.items.max(1);
        let itemset: Vec<i64> = (0..config.planted_size)
            .map(|k| ((start + k) % config.items.max(1)) as i64)
            .collect();
        planted.push(itemset);
    }

    let mut rows: Vec<Vec<Value>> = Vec::new();
    for tid in 0..config.transactions {
        let mut items: BTreeSet<i64> = BTreeSet::new();
        // Planted patterns.
        for itemset in &planted {
            if rng.gen_bool(config.planted_probability.clamp(0.0, 1.0)) {
                items.extend(itemset.iter().copied());
            }
        }
        // Random noise items.
        let length = if config.avg_length == 0 {
            0
        } else {
            rng.gen_range(1..=config.avg_length * 2)
        };
        for _ in 0..length {
            items.insert(sampler.sample(&mut rng) as i64);
        }
        for item in items {
            rows.push(vec![Value::from(tid as i64), Value::from(item)]);
        }
    }
    let transactions = Relation::from_rows(["tid", "item"], rows).expect("valid transaction rows");
    BasketData {
        transactions,
        planted,
    }
}

/// Build the `candidates(item, itemset)` relation — the "vertical"
/// representation of a collection of candidate itemsets that the great divide
/// consumes — from explicit itemsets.
pub fn candidates_relation(itemsets: &[Vec<i64>]) -> Relation {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (id, itemset) in itemsets.iter().enumerate() {
        for item in itemset {
            rows.push(vec![Value::from(*item), Value::from(id as i64)]);
        }
    }
    Relation::from_rows(["item", "itemset"], rows).expect("valid candidate rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_expected_shape() {
        let config = BasketConfig {
            transactions: 50,
            items: 20,
            ..BasketConfig::default()
        };
        let data = generate(&config);
        assert_eq!(data.transactions.schema().names(), vec!["tid", "item"]);
        assert_eq!(data.planted.len(), config.planted_itemsets);
        let tids = data.transactions.column("tid").unwrap();
        assert!(tids.len() <= 50);
        assert!(!data.transactions.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = BasketConfig::default();
        assert_eq!(
            generate(&config).transactions,
            generate(&config).transactions
        );
    }

    #[test]
    fn planted_itemsets_are_frequent() {
        let config = BasketConfig {
            transactions: 400,
            items: 60,
            planted_probability: 0.5,
            ..BasketConfig::default()
        };
        let data = generate(&config);
        let candidates = candidates_relation(&data.planted);
        // Support counting via the great divide (Section 3).
        let quotient = data.transactions.great_divide(&candidates).unwrap();
        let support = quotient
            .group_aggregate(
                &["itemset"],
                &[div_algebra::AggregateCall::count("tid", "n")],
            )
            .unwrap();
        // Every planted itemset has support well above 10% of transactions.
        assert_eq!(support.len(), data.planted.len());
        for t in support.tuples() {
            let n = t.values()[1].as_int().unwrap();
            assert!(n >= 40, "planted itemset support too low: {n}");
        }
    }

    #[test]
    fn candidates_relation_layout() {
        let rel = candidates_relation(&[vec![10, 30], vec![20]]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.schema().names(), vec!["item", "itemset"]);
    }
}
