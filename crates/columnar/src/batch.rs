//! Columnar batches: a schema plus typed column vectors.

use crate::column::Column;
use crate::hash_table::GroupIndex;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::keys::RowKey;
use crate::Result;
use div_algebra::{AlgebraError, Relation, Schema, Tuple, Value};

/// A batch of rows in columnar layout.
///
/// The columnar counterpart of [`Relation`]: the i-th column holds the values
/// of the i-th schema attribute for every row. Unlike `Relation`, a batch is
/// *ordered* and may transiently contain duplicate rows inside an operator
/// pipeline; operators that must produce set semantics (projection, union)
/// deduplicate explicitly, and [`ColumnarBatch::to_relation`] always yields a
/// canonical set.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnarBatch {
    /// Build a batch directly from parts. Panics when the column count does
    /// not match the schema arity or the columns disagree on length; callers
    /// inside this crate construct consistent parts by design.
    pub fn from_parts(schema: Schema, columns: Vec<Column>, rows: usize) -> Self {
        assert_eq!(
            schema.arity(),
            columns.len(),
            "schema/column arity mismatch"
        );
        for c in &columns {
            assert_eq!(c.len(), rows, "column length mismatch");
        }
        ColumnarBatch {
            schema,
            columns,
            rows,
        }
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Column::Int {
                values: Vec::new(),
                validity: None,
            })
            .collect();
        ColumnarBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Convert a relation to columnar layout (row order = the relation's
    /// deterministic sorted order). The conversion is lossless: see
    /// [`ColumnarBatch::to_relation`].
    pub fn from_relation(relation: &Relation) -> Self {
        let tuples: Vec<&Tuple> = relation.tuples().collect();
        let rows = tuples.len();
        let columns = (0..relation.schema().arity())
            .map(|c| Column::from_values(tuples.iter().map(|t| &t.values()[c])))
            .collect();
        ColumnarBatch {
            schema: relation.schema().clone(),
            columns,
            rows,
        }
    }

    /// Convert back to a relation (deduplicating and sorting, per set
    /// semantics).
    pub fn to_relation(&self) -> Result<Relation> {
        let mut out = Relation::empty(self.schema.clone());
        for i in 0..self.rows {
            out.insert(self.row(i))?;
        }
        Ok(out)
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Decompose the batch into its parts (schema, columns, row count) —
    /// the inverse of [`ColumnarBatch::from_parts`], letting schema-only
    /// transformations (rename) rebuild a batch without copying column
    /// data.
    pub fn into_parts(self) -> (Schema, Vec<Column>, usize) {
        (self.schema, self.columns, self.rows)
    }

    /// The column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The value at `(row, column)`.
    pub fn value_at(&self, row: usize, column: usize) -> Value {
        self.columns[column].value(row)
    }

    /// Materialize row `row` as a [`Tuple`].
    pub fn row(&self, row: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(row)))
    }

    /// The grouping/join key of `row` over the given column positions.
    pub fn key_at(&self, row: usize, key_columns: &[usize]) -> RowKey {
        RowKey::from_batch_row(self, key_columns, row)
    }

    /// Positions of the named attributes in this batch's schema.
    pub fn projection_indices(&self, names: &[&str]) -> Result<Vec<usize>> {
        self.schema.projection_indices(names)
    }

    /// A new batch holding the rows selected by `indices`, in that order.
    pub fn gather(&self, indices: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// A new batch keeping the rows whose mask entry is `true`.
    pub fn select_by_mask(&self, mask: &[bool]) -> ColumnarBatch {
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.gather(&indices)
    }

    /// A new batch with the given columns (by position), in the given order,
    /// under the given schema. Used by projection and join assembly.
    pub fn with_columns(&self, schema: Schema, column_indices: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            schema,
            columns: column_indices
                .iter()
                .map(|&i| self.columns[i].clone())
                .collect(),
            rows: self.rows,
        }
    }

    /// Deduplicate rows, keeping first occurrences in order (set semantics).
    /// Runs on the vectorized key pipeline: whole-row keys are normalized
    /// once ([`KeyVector`]) and interned into an open-addressing
    /// [`GroupIndex`] — no per-row key materialization.
    pub fn dedup(&self) -> ColumnarBatch {
        let all_columns: Vec<usize> = (0..self.columns.len()).collect();
        let keys = KeyVector::build(self, &all_columns);
        let same_row = cross_matcher(self, &all_columns, &keys, self, &all_columns, &keys);
        let mut seen = GroupIndex::with_capacity(self.rows);
        let mut keep: Vec<usize> = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let (_, is_new) = seen.intern(keys.code(i), i, |other| same_row(i, other));
            if is_new {
                keep.push(i);
            }
        }
        if keep.len() == self.rows {
            self.clone()
        } else {
            self.gather(&keep)
        }
    }

    /// Reorder columns so the schema attribute order matches `target`
    /// (which must be union-compatible), like
    /// [`Relation::conform_to`].
    pub fn conform_to(&self, target: &Schema) -> Result<ColumnarBatch> {
        if !self.schema.is_compatible_with(target) {
            return Err(AlgebraError::SchemaMismatch {
                left: self.schema.to_string(),
                right: target.to_string(),
                operation: "schema conformance",
            });
        }
        let names = target.names();
        let indices = self.schema.projection_indices(&names)?;
        Ok(self.with_columns(target.clone(), &indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn sample() -> Relation {
        relation! {
            ["s#", "color"] =>
            [1, "blue"], [2, "red"], [3, "blue"],
        }
    }

    #[test]
    fn relation_roundtrip_is_lossless() {
        let rel = sample();
        let batch = ColumnarBatch::from_relation(&rel);
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.to_relation().unwrap(), rel);
    }

    #[test]
    fn roundtrip_preserves_nulls_and_sets() {
        let rel = Relation::new(
            Schema::of(["a", "b"]),
            [
                Tuple::new([Value::Int(1), Value::Null]),
                Tuple::new([Value::Int(2), Value::set([1, 2])]),
                Tuple::new([Value::Null, Value::str("x")]),
            ],
        )
        .unwrap();
        let batch = ColumnarBatch::from_relation(&rel);
        assert_eq!(batch.to_relation().unwrap(), rel);
    }

    #[test]
    fn dedup_keeps_first_occurrences() {
        let rel = sample();
        let batch = ColumnarBatch::from_relation(&rel);
        let doubled = batch.gather(&[0, 1, 0, 2, 1]);
        let deduped = doubled.dedup();
        assert_eq!(deduped.num_rows(), 3);
        assert_eq!(deduped.to_relation().unwrap(), rel);
    }

    #[test]
    fn conform_to_reorders_columns() {
        let rel = sample();
        let batch = ColumnarBatch::from_relation(&rel);
        let target = Schema::of(["color", "s#"]);
        let conformed = batch.conform_to(&target).unwrap();
        assert_eq!(conformed.schema().names(), vec!["color", "s#"]);
        assert_eq!(conformed.value_at(0, 1), Value::Int(1));
        assert!(batch.conform_to(&Schema::of(["a", "b"])).is_err());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let rel = Relation::empty(Schema::of(["a", "b"]));
        let batch = ColumnarBatch::from_relation(&rel);
        assert_eq!(batch.num_rows(), 0);
        assert_eq!(batch.to_relation().unwrap(), rel);
        assert_eq!(ColumnarBatch::empty(Schema::of(["a", "b"])).num_rows(), 0);
    }
}
