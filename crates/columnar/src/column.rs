//! Typed column vectors with validity masks and dictionary-encoded strings.

use div_algebra::Value;
use std::collections::HashMap;

/// A single column of a [`ColumnarBatch`](crate::ColumnarBatch).
///
/// The variants are chosen for the data the paper's workloads produce: almost
/// every attribute is a small integer (`s#`, `p#`, `a`, `b`, `tid`, `item`) or
/// a low-cardinality string (`color`), so the hot representations are a plain
/// `Vec<i64>` and a dictionary of distinct strings with a `Vec<u32>` of codes.
/// `NULL`s (produced only by the left outer join) are tracked in an optional
/// validity mask so the common all-valid case costs nothing. Columns that mix
/// value kinds or hold set-valued attributes fall back to [`Column::Mixed`],
/// which keeps the conversion from [`div_algebra::Relation`] lossless for
/// every relation the algebra can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers; `validity[i] == false` marks a NULL at row `i`.
    Int {
        /// Row values (`0` at invalid positions).
        values: Vec<i64>,
        /// Per-row validity; `None` means every row is valid.
        validity: Option<Vec<bool>>,
    },
    /// Booleans; `validity[i] == false` marks a NULL at row `i`.
    Bool {
        /// Row values (`false` at invalid positions).
        values: Vec<bool>,
        /// Per-row validity; `None` means every row is valid.
        validity: Option<Vec<bool>>,
    },
    /// Dictionary-encoded strings.
    Str(StrColumn),
    /// Fallback for heterogeneous or set-valued columns: the values verbatim.
    Mixed(Vec<Value>),
}

/// A dictionary-encoded string column: every distinct string is stored once
/// in `dict` (first-occurrence order) and rows hold `u32` codes into it.
#[derive(Debug, Clone, PartialEq)]
pub struct StrColumn {
    /// Distinct strings in first-occurrence order.
    pub dict: Vec<Box<str>>,
    /// Per-row dictionary codes (`0` at invalid positions).
    pub codes: Vec<u32>,
    /// Per-row validity; `None` means every row is valid.
    pub validity: Option<Vec<bool>>,
}

impl StrColumn {
    /// The string at row `i`, or `None` when the row is NULL.
    pub fn get(&self, i: usize) -> Option<&str> {
        match &self.validity {
            Some(v) if !v[i] => None,
            _ => Some(&self.dict[self.codes[i] as usize]),
        }
    }
}

fn gather_validity(validity: &Option<Vec<bool>>, indices: &[usize]) -> Option<Vec<bool>> {
    validity
        .as_ref()
        .map(|v| indices.iter().map(|&i| v[i]).collect())
}

impl Column {
    /// Build the best-fitting representation for a sequence of values.
    ///
    /// Picks `Int`/`Bool`/`Str` (with a validity mask when NULLs occur) when
    /// the column is homogeneous, and falls back to [`Column::Mixed`]
    /// otherwise, so `Relation -> ColumnarBatch -> Relation` is lossless.
    pub fn from_values<'a, I>(values: I) -> Column
    where
        I: IntoIterator<Item = &'a Value> + Clone,
    {
        let (mut ints, mut bools, mut strs, mut nulls, mut others, mut len) = (0, 0, 0, 0, 0, 0);
        for v in values.clone() {
            len += 1;
            match v {
                Value::Int(_) => ints += 1,
                Value::Bool(_) => bools += 1,
                Value::Str(_) => strs += 1,
                Value::Null => nulls += 1,
                Value::Set(_) => others += 1,
            }
        }
        let validity_for = |valid_flags: Vec<bool>| -> Option<Vec<bool>> {
            if nulls > 0 {
                Some(valid_flags)
            } else {
                None
            }
        };
        if others == 0 && ints + nulls == len {
            let mut out = Vec::with_capacity(len);
            let mut valid = Vec::with_capacity(len);
            for v in values {
                match v {
                    Value::Int(i) => {
                        out.push(*i);
                        valid.push(true);
                    }
                    _ => {
                        out.push(0);
                        valid.push(false);
                    }
                }
            }
            Column::Int {
                values: out,
                validity: validity_for(valid),
            }
        } else if others == 0 && bools + nulls == len {
            let mut out = Vec::with_capacity(len);
            let mut valid = Vec::with_capacity(len);
            for v in values {
                match v {
                    Value::Bool(b) => {
                        out.push(*b);
                        valid.push(true);
                    }
                    _ => {
                        out.push(false);
                        valid.push(false);
                    }
                }
            }
            Column::Bool {
                values: out,
                validity: validity_for(valid),
            }
        } else if others == 0 && strs + nulls == len {
            let mut dict: Vec<Box<str>> = Vec::new();
            let mut lookup: HashMap<Box<str>, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(len);
            let mut valid = Vec::with_capacity(len);
            for v in values {
                match v {
                    Value::Str(s) => {
                        let code = *lookup.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        });
                        codes.push(code);
                        valid.push(true);
                    }
                    _ => {
                        codes.push(0);
                        valid.push(false);
                    }
                }
            }
            Column::Str(StrColumn {
                dict,
                codes,
                validity: validity_for(valid),
            })
        } else {
            Column::Mixed(values.into_iter().cloned().collect())
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Str(s) => s.codes.len(),
            Column::Mixed(values) => values.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { validity, .. } | Column::Bool { validity, .. } => {
                matches!(validity, Some(v) if !v[i])
            }
            Column::Str(s) => matches!(&s.validity, Some(v) if !v[i]),
            Column::Mixed(values) => values[i] == Value::Null,
        }
    }

    /// `true` when no row of the column is NULL.
    pub fn all_valid(&self) -> bool {
        match self {
            Column::Int { validity, .. } | Column::Bool { validity, .. } => validity.is_none(),
            Column::Str(s) => s.validity.is_none(),
            Column::Mixed(values) => values.iter().all(|v| *v != Value::Null),
        }
    }

    /// The row `i` value as an owned [`Value`] (NULL rows yield
    /// [`Value::Null`]).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int { values, validity } => match validity {
                Some(v) if !v[i] => Value::Null,
                _ => Value::Int(values[i]),
            },
            Column::Bool { values, validity } => match validity {
                Some(v) if !v[i] => Value::Null,
                _ => Value::Bool(values[i]),
            },
            Column::Str(s) => match s.get(i) {
                Some(string) => Value::str(string),
                None => Value::Null,
            },
            Column::Mixed(values) => values[i].clone(),
        }
    }

    /// The raw `i64` data and validity, when this is an integer column.
    pub fn as_int_slice(&self) -> Option<(&[i64], Option<&[bool]>)> {
        match self {
            Column::Int { values, validity } => Some((values, validity.as_deref())),
            _ => None,
        }
    }

    /// The dictionary view, when this is a string column.
    pub fn as_str_column(&self) -> Option<&StrColumn> {
        match self {
            Column::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A new column holding `indices`-selected rows (in the given order).
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int { values, validity } => Column::Int {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: gather_validity(validity, indices),
            },
            Column::Bool { values, validity } => Column::Bool {
                values: indices.iter().map(|&i| values[i]).collect(),
                validity: gather_validity(validity, indices),
            },
            Column::Str(s) => Column::Str(StrColumn {
                dict: s.dict.clone(),
                codes: indices.iter().map(|&i| s.codes[i]).collect(),
                validity: gather_validity(&s.validity, indices),
            }),
            Column::Mixed(values) => {
                Column::Mixed(indices.iter().map(|&i| values[i].clone()).collect())
            }
        }
    }

    /// Concatenate two columns, unifying representations.
    ///
    /// Same-typed columns merge natively (string dictionaries are remapped);
    /// mismatched types degrade to [`Column::Mixed`], never losing values.
    pub fn concat(&self, other: &Column) -> Column {
        fn concat_validity(
            a: &Option<Vec<bool>>,
            b: &Option<Vec<bool>>,
            a_len: usize,
            b_len: usize,
        ) -> Option<Vec<bool>> {
            if a.is_none() && b.is_none() {
                return None;
            }
            let mut out = a.clone().unwrap_or_else(|| vec![true; a_len]);
            out.extend(b.clone().unwrap_or_else(|| vec![true; b_len]));
            Some(out)
        }
        match (self, other) {
            (
                Column::Int {
                    values: av,
                    validity: aval,
                },
                Column::Int {
                    values: bv,
                    validity: bval,
                },
            ) => {
                let mut values = av.clone();
                values.extend_from_slice(bv);
                Column::Int {
                    values,
                    validity: concat_validity(aval, bval, av.len(), bv.len()),
                }
            }
            (
                Column::Bool {
                    values: av,
                    validity: aval,
                },
                Column::Bool {
                    values: bv,
                    validity: bval,
                },
            ) => {
                let mut values = av.clone();
                values.extend_from_slice(bv);
                Column::Bool {
                    values,
                    validity: concat_validity(aval, bval, av.len(), bv.len()),
                }
            }
            (Column::Str(a), Column::Str(b)) => {
                let mut dict = a.dict.clone();
                let mut lookup: HashMap<Box<str>, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), i as u32))
                    .collect();
                let remap: Vec<u32> = b
                    .dict
                    .iter()
                    .map(|s| {
                        *lookup.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        })
                    })
                    .collect();
                let mut codes = a.codes.clone();
                codes.extend(b.codes.iter().map(|&c| remap[c as usize]));
                Column::Str(StrColumn {
                    dict,
                    codes,
                    validity: concat_validity(
                        &a.validity,
                        &b.validity,
                        a.codes.len(),
                        b.codes.len(),
                    ),
                })
            }
            _ => {
                let mut values: Vec<Value> = (0..self.len()).map(|i| self.value(i)).collect();
                values.extend((0..other.len()).map(|i| other.value(i)));
                Column::Mixed(values)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip_and_nulls() {
        let values = vec![Value::Int(3), Value::Null, Value::Int(-1)];
        let col = Column::from_values(values.iter());
        assert!(matches!(col, Column::Int { .. }));
        assert!(!col.all_valid());
        assert!(col.is_null(1));
        assert_eq!((0..3).map(|i| col.value(i)).collect::<Vec<_>>(), values);
    }

    #[test]
    fn string_column_builds_dictionary() {
        let values = vec![
            Value::str("blue"),
            Value::str("red"),
            Value::str("blue"),
            Value::str("blue"),
        ];
        let col = Column::from_values(values.iter());
        let s = col.as_str_column().unwrap();
        assert_eq!(s.dict.len(), 2);
        assert_eq!(s.codes, vec![0, 1, 0, 0]);
        assert_eq!((0..4).map(|i| col.value(i)).collect::<Vec<_>>(), values);
    }

    #[test]
    fn heterogeneous_column_falls_back_to_mixed() {
        let values = vec![Value::Int(1), Value::str("x"), Value::set([1, 2])];
        let col = Column::from_values(values.iter());
        assert!(matches!(col, Column::Mixed(_)));
        assert_eq!((0..3).map(|i| col.value(i)).collect::<Vec<_>>(), values);
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let values = [Value::Int(10), Value::Int(20), Value::Null];
        let col = Column::from_values(values.iter());
        let picked = col.gather(&[2, 0, 0]);
        assert_eq!(picked.value(0), Value::Null);
        assert_eq!(picked.value(1), Value::Int(10));
        assert_eq!(picked.value(2), Value::Int(10));
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = Column::from_values([Value::str("blue"), Value::str("red")].iter());
        let b = Column::from_values([Value::str("red"), Value::str("green")].iter());
        let c = a.concat(&b);
        let s = c.as_str_column().unwrap();
        assert_eq!(s.dict.len(), 3);
        assert_eq!(c.value(2), Value::str("red"));
        assert_eq!(c.value(3), Value::str("green"));
    }

    #[test]
    fn concat_mismatched_types_degrades_to_mixed() {
        let a = Column::from_values([Value::Int(1)].iter());
        let b = Column::from_values([Value::str("x")].iter());
        let c = a.concat(&b);
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::str("x"));
    }
}
