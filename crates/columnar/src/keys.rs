//! Hashable row keys for grouping, joining and division.

use crate::batch::ColumnarBatch;
use div_algebra::Value;

/// A hashable key formed from one row's values over a set of key columns.
///
/// The representation depends only on the *values*, never on the column
/// encoding, so keys extracted from different batches (e.g. a dividend and a
/// divisor) are directly comparable: a non-NULL single integer is always
/// [`RowKey::Int`], any other single value is [`RowKey::Scalar`], and
/// multi-column keys are always [`RowKey::Composite`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RowKey {
    /// Single-column integer key (the hot case in every paper workload).
    Int(i64),
    /// Single-column key of any other value kind.
    Scalar(Value),
    /// Multi-column key.
    Composite(Vec<Value>),
}

impl RowKey {
    /// Extract the key of `row` over `key_columns` of `batch`.
    pub fn from_batch_row(batch: &ColumnarBatch, key_columns: &[usize], row: usize) -> RowKey {
        if let [single] = key_columns {
            match batch.value_at(row, *single) {
                Value::Int(i) => RowKey::Int(i),
                other => RowKey::Scalar(other),
            }
        } else {
            RowKey::Composite(
                key_columns
                    .iter()
                    .map(|&c| batch.value_at(row, c))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    #[test]
    fn key_representation_is_encoding_independent() {
        let a = ColumnarBatch::from_relation(&relation! { ["x"] => [7] });
        let b = ColumnarBatch::from_relation(&relation! { ["y", "x"] => [1, 7] });
        assert_eq!(a.key_at(0, &[0]), b.key_at(0, &[1]));
        assert_eq!(a.key_at(0, &[0]), RowKey::Int(7));
    }

    #[test]
    fn composite_keys_compare_by_values() {
        let a = ColumnarBatch::from_relation(&relation! { ["x", "y"] => [1, 2] });
        let b = ColumnarBatch::from_relation(&relation! { ["y", "x"] => [2, 1] });
        // Same value pair extracted in the same attribute order.
        assert_eq!(a.key_at(0, &[0, 1]), b.key_at(0, &[1, 0]));
    }
}
