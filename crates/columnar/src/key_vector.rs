//! Batch-level key normalization: one dense `u64` code per row, computed
//! once per batch.
//!
//! The first columnar backend materialized a [`RowKey`](crate::RowKey) enum
//! per row per operator — cloning [`Value`]s, allocating a `Vec<Value>` for
//! composite keys — and pushed it through SipHash `HashMap`s. The hash
//! division family (Graefe, ICDE 1989; Graefe & Cole, TODS 1995) wins
//! precisely because per-tuple hash work is cheap, so this module makes the
//! key machinery vectorized and allocation-free: [`KeyVector::build`]
//! normalizes a batch's key columns **once per batch** into dense `u64`
//! codes, and the open-addressing tables of
//! [`hash_table`](crate::hash_table) consume the codes directly.
//!
//! # Code assignment
//!
//! Codes are a pure function of the key *values*, never of the column
//! encoding, so vectors built over differently-encoded batches (a dividend
//! and a divisor, the two sides of a join) are directly comparable:
//!
//! * a non-NULL `i64` codes as its raw bits (the hot path: no hashing at
//!   all, the code *is* the key),
//! * a string codes as a byte hash computed **once per dictionary entry**
//!   and fanned out through the dictionary codes (per row: one array load),
//! * `NULL` codes as the fixed sentinel [`NULL_CODE`],
//! * booleans and set values code as fixed/combined hash constants,
//! * a multi-column (composite) key folds its column codes with
//!   [`combine`], starting from [`COMPOSITE_SEED`].
//!
//! Equal keys therefore always get equal codes. The converse holds only for
//! the raw-`i64` path: every other path can collide in the `u64` code
//! space (e.g. `Value::Int(NULL_CODE as i64)` collides with `NULL` by
//! construction). [`KeyVector::exact`] reports which case applies, and the
//! consuming tables verify candidates against the source batches (via
//! [`keys_equal`]) whenever either side is inexact.

use crate::batch::ColumnarBatch;
use crate::column::{Column, StrColumn};
use div_algebra::Value;

/// Code of the SQL `NULL` key value. Public so tests can construct forced
/// code-space collisions (`Value::Int(NULL_CODE as i64)` vs `NULL`).
pub const NULL_CODE: u64 = 0x7f4a_7c15_9e37_79b9;

/// Code of `Value::Bool(false)`. Distinct arbitrary constant; collisions
/// with raw integer codes are caught by verification (boolean key vectors
/// are never [`exact`](KeyVector::exact)).
pub const BOOL_FALSE_CODE: u64 = 0x85eb_ca6b_27d4_eb2f;

/// Code of `Value::Bool(true)`.
pub const BOOL_TRUE_CODE: u64 = 0xc2b2_ae3d_51b4_2a05;

/// Fold seed for composite (multi-column) keys.
pub const COMPOSITE_SEED: u64 = 0x51af_d7ed_558c_cd25;

/// Fold seed for set values.
const SET_SEED: u64 = 0xb492_b66f_be98_f273;

/// FNV-1a offset basis / prime for string byte hashing.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a string's bytes (FNV-1a). Computed once per dictionary entry for
/// dictionary-encoded columns.
#[inline]
pub fn str_code(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Combine an accumulated code with the next column's (or set element's)
/// code. Order-sensitive, as composite keys are.
#[inline]
pub fn combine(acc: u64, code: u64) -> u64 {
    (acc.rotate_left(5) ^ code).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The canonical code of a single [`Value`] — the contract every
/// [`KeyVector`] encoding path implements. Equal values always produce
/// equal codes; unequal values may collide (verification handles that).
pub fn value_code(value: &Value) -> u64 {
    match value {
        Value::Null => NULL_CODE,
        Value::Bool(false) => BOOL_FALSE_CODE,
        Value::Bool(true) => BOOL_TRUE_CODE,
        Value::Int(i) => *i as u64,
        Value::Str(s) => str_code(s),
        Value::Set(items) => items
            .iter()
            .fold(SET_SEED, |h, item| combine(h, value_code(item))),
    }
}

/// A batch's key columns normalized to one dense `u64` code per row.
///
/// Built once per batch per operator (or once per *partition pipeline* when
/// the physical layer reuses partition-time hashes via the `_prehashed`
/// kernel entry points). See the module docs for the code-assignment
/// contract.
#[derive(Debug, Clone)]
pub struct KeyVector {
    codes: Vec<u64>,
    exact: bool,
}

impl KeyVector {
    /// Normalize `batch`'s rows over `key_columns` (in the given order).
    ///
    /// With an empty `key_columns` list every row gets the same code
    /// ([`COMPOSITE_SEED`]) — the degenerate key under which all rows are
    /// equal, matching the semantics of grouping by nothing.
    pub fn build(batch: &ColumnarBatch, key_columns: &[usize]) -> KeyVector {
        let rows = batch.num_rows();
        if let [single] = key_columns {
            if let Column::Int {
                values,
                validity: None,
            } = batch.column(*single)
            {
                // Raw-i64 fast path: the code *is* the key (injective).
                return KeyVector {
                    codes: values.iter().map(|&v| v as u64).collect(),
                    exact: true,
                };
            }
            let mut codes = vec![0u64; rows];
            for_each_code(batch.column(*single), |i, code| codes[i] = code);
            return KeyVector {
                codes,
                exact: false,
            };
        }
        let mut codes = vec![COMPOSITE_SEED; rows];
        for &col in key_columns {
            for_each_code(batch.column(col), |i, code| {
                codes[i] = combine(codes[i], code)
            });
        }
        KeyVector {
            codes,
            exact: false,
        }
    }

    /// The code of row `row`.
    #[inline]
    pub fn code(&self, row: usize) -> u64 {
        self.codes[row]
    }

    /// All row codes, in row order.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the vector has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// `true` when code equality *implies* key equality (the raw-`i64`
    /// path). Two exact vectors can be matched on codes alone; if either
    /// side is inexact, matches must be verified against the source batches
    /// (see [`keys_equal`]).
    #[inline]
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// The codes of `indices`-selected rows, in that order — the key-vector
    /// counterpart of [`ColumnarBatch::gather`], used to carry
    /// partition-time hashes into per-partition kernels.
    pub fn gather(&self, indices: &[usize]) -> KeyVector {
        KeyVector {
            codes: indices.iter().map(|&i| self.codes[i]).collect(),
            exact: self.exact,
        }
    }
}

/// Feed `apply(row, code)` the canonical code of every row of `col`,
/// dispatching on the column encoding once (strings hash once per
/// dictionary entry, not per row).
fn for_each_code(col: &Column, mut apply: impl FnMut(usize, u64)) {
    match col {
        Column::Int { values, validity } => match validity {
            None => {
                for (i, &v) in values.iter().enumerate() {
                    apply(i, v as u64);
                }
            }
            Some(valid) => {
                for (i, &v) in values.iter().enumerate() {
                    apply(i, if valid[i] { v as u64 } else { NULL_CODE });
                }
            }
        },
        Column::Bool { values, validity } => {
            let code_of = |b: bool| if b { BOOL_TRUE_CODE } else { BOOL_FALSE_CODE };
            match validity {
                None => {
                    for (i, &v) in values.iter().enumerate() {
                        apply(i, code_of(v));
                    }
                }
                Some(valid) => {
                    for (i, &v) in values.iter().enumerate() {
                        apply(i, if valid[i] { code_of(v) } else { NULL_CODE });
                    }
                }
            }
        }
        Column::Str(s) => {
            let dict_codes: Vec<u64> = s.dict.iter().map(|entry| str_code(entry)).collect();
            match &s.validity {
                None => {
                    for (i, &c) in s.codes.iter().enumerate() {
                        apply(i, dict_codes[c as usize]);
                    }
                }
                Some(valid) => {
                    for (i, &c) in s.codes.iter().enumerate() {
                        apply(
                            i,
                            if valid[i] {
                                dict_codes[c as usize]
                            } else {
                                NULL_CODE
                            },
                        );
                    }
                }
            }
        }
        Column::Mixed(values) => {
            for (i, v) in values.iter().enumerate() {
                apply(i, value_code(v));
            }
        }
    }
}

/// Compare one column's row against another column's row without
/// materializing [`Value`]s for the common encodings (NULLs compare equal,
/// like `Value::Null == Value::Null`). The cold fallback (`Mixed` or
/// cross-encoding) compares materialized values.
fn column_eq(a: &Column, i: usize, b: &Column, j: usize) -> bool {
    match (a, b) {
        (
            Column::Int {
                values: av,
                validity: avd,
            },
            Column::Int {
                values: bv,
                validity: bvd,
            },
        ) => {
            let a_null = matches!(avd, Some(v) if !v[i]);
            let b_null = matches!(bvd, Some(v) if !v[j]);
            if a_null || b_null {
                a_null && b_null
            } else {
                av[i] == bv[j]
            }
        }
        (
            Column::Bool {
                values: av,
                validity: avd,
            },
            Column::Bool {
                values: bv,
                validity: bvd,
            },
        ) => {
            let a_null = matches!(avd, Some(v) if !v[i]);
            let b_null = matches!(bvd, Some(v) if !v[j]);
            if a_null || b_null {
                a_null && b_null
            } else {
                av[i] == bv[j]
            }
        }
        (Column::Str(a), Column::Str(b)) => str_get(a, i) == str_get(b, j),
        _ => a.value(i) == b.value(j),
    }
}

fn str_get(col: &StrColumn, i: usize) -> Option<&str> {
    col.get(i)
}

/// `true` when row `i` of `a` (over `a_cols`) and row `j` of `b` (over
/// `b_cols`) hold equal key values, column by column. The verification
/// predicate behind every inexact code match; `a_cols` and `b_cols` must
/// pair up semantically (same attribute order), as they do for every kernel
/// key layout.
pub fn keys_equal(
    a: &ColumnarBatch,
    a_cols: &[usize],
    i: usize,
    b: &ColumnarBatch,
    b_cols: &[usize],
    j: usize,
) -> bool {
    a_cols
        .iter()
        .zip(b_cols)
        .all(|(&ca, &cb)| column_eq(a.column(ca), i, b.column(cb), j))
}

/// Build the key-equality predicate for a probe/build pairing, computing
/// the verification requirement **once** from both vectors' exactness:
/// `pred(probe_row, candidate_row)` is trivially `true` when both sides
/// are exact (code equality is key equality) and a column-wise compare
/// otherwise. Pairing the batch/column-list/vector triples here — instead
/// of hand-spelling `!verify || keys_equal(..)` at every table call site —
/// makes a mismatched pairing impossible to write per row. Pass the same
/// triple twice for self-batch grouping.
pub fn cross_matcher<'a>(
    probe: &'a ColumnarBatch,
    probe_cols: &'a [usize],
    probe_keys: &KeyVector,
    build: &'a ColumnarBatch,
    build_cols: &'a [usize],
    build_keys: &KeyVector,
) -> impl Fn(usize, usize) -> bool + 'a {
    let verify = !(probe_keys.exact() && build_keys.exact());
    move |row, candidate| {
        !verify || keys_equal(probe, probe_cols, row, build, build_cols, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation, Schema, Tuple};

    #[test]
    fn raw_int_columns_are_exact_and_identity_coded() {
        let batch = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [7, 1], [-3, 2] });
        let keys = KeyVector::build(&batch, &[0]);
        assert!(keys.exact());
        assert_eq!(keys.codes(), &[(-3i64) as u64, 7u64]);
    }

    #[test]
    fn codes_are_encoding_independent() {
        // The same key values through different batches (hence different
        // dictionaries / layouts) produce identical codes.
        let a = ColumnarBatch::from_relation(&relation! {
            ["k", "x"] => ["blue", 1], ["red", 2]
        });
        let b = ColumnarBatch::from_relation(&relation! {
            ["y", "k"] => [9, "red"], [8, "green"], [7, "blue"]
        });
        let ka = KeyVector::build(&a, &[0]);
        let kb = KeyVector::build(&b, &[1]);
        // a sorts to [blue, red]; b sorts to [blue, green, red].
        assert_eq!(ka.code(0), kb.code(0), "blue");
        assert_eq!(ka.code(1), kb.code(2), "red");
        assert_ne!(ka.code(0), ka.code(1));
    }

    #[test]
    fn null_codes_use_the_sentinel_and_collide_with_its_int() {
        let rel = Relation::new(
            Schema::of(["k"]),
            [
                Tuple::new([Value::Null]),
                Tuple::new([Value::Int(NULL_CODE as i64)]),
            ],
        )
        .unwrap();
        let batch = ColumnarBatch::from_relation(&rel);
        let keys = KeyVector::build(&batch, &[0]);
        assert!(!keys.exact(), "NULL-bearing vectors are never exact");
        // Both rows code identically — the forced collision — but
        // verification tells them apart.
        assert_eq!(keys.code(0), keys.code(1));
        assert!(!keys_equal(&batch, &[0], 0, &batch, &[0], 1));
        assert!(keys_equal(&batch, &[0], 0, &batch, &[0], 0));
    }

    #[test]
    fn composite_codes_agree_across_batches_and_differ_per_key() {
        let a = ColumnarBatch::from_relation(&relation! { ["x", "y"] => [1, 2], [2, 1] });
        let b = ColumnarBatch::from_relation(&relation! { ["y", "x"] => [2, 1] });
        let ka = KeyVector::build(&a, &[0, 1]);
        let kb = KeyVector::build(&b, &[1, 0]);
        assert!(!ka.exact());
        assert_eq!(ka.code(0), kb.code(0), "(1, 2) codes agree across batches");
        assert_ne!(
            ka.code(0),
            ka.code(1),
            "(1, 2) vs (2, 1) is order-sensitive"
        );
    }

    #[test]
    fn empty_key_column_list_codes_every_row_identically() {
        let batch = ColumnarBatch::from_relation(&relation! { ["a"] => [1], [2], [3] });
        let keys = KeyVector::build(&batch, &[]);
        assert!(keys.codes().iter().all(|&c| c == COMPOSITE_SEED));
        assert!(keys_equal(&batch, &[], 0, &batch, &[], 2));
    }

    #[test]
    fn gather_preserves_codes_and_exactness() {
        let batch = ColumnarBatch::from_relation(&relation! { ["a"] => [10], [20], [30] });
        let keys = KeyVector::build(&batch, &[0]);
        let picked = keys.gather(&[2, 0]);
        assert!(picked.exact());
        assert_eq!(picked.codes(), &[keys.code(2), keys.code(0)]);
    }

    #[test]
    fn mixed_columns_code_by_value_and_match_homogeneous_encodings() {
        // A Mixed column holding an Int must code identically to a plain Int
        // column holding the same value — codes are a function of the value.
        let mixed = Relation::new(
            Schema::of(["k"]),
            [
                Tuple::new([Value::Int(42)]),
                Tuple::new([Value::str("blue")]),
                Tuple::new([Value::set([1, 2])]),
            ],
        )
        .unwrap();
        let batch = ColumnarBatch::from_relation(&mixed);
        let keys = KeyVector::build(&batch, &[0]);
        let plain = ColumnarBatch::from_relation(&relation! { ["k"] => [42] });
        let plain_keys = KeyVector::build(&plain, &[0]);
        // Mixed sorts: Int(42) < Str("blue") < Set — relation order is
        // Int, Str, Set (variant order).
        assert_eq!(keys.code(0), plain_keys.code(0));
        assert_eq!(keys.code(1), str_code("blue"));
    }

    #[test]
    fn value_codes_distinguish_bool_null_and_ints() {
        assert_eq!(value_code(&Value::Null), NULL_CODE);
        assert_ne!(
            value_code(&Value::Bool(false)),
            value_code(&Value::Bool(true))
        );
        assert_eq!(value_code(&Value::Int(5)), 5);
        assert_eq!(
            value_code(&Value::set([1, 2])),
            value_code(&Value::set([2, 1]))
        );
        assert_ne!(
            value_code(&Value::set([1, 2])),
            value_code(&Value::set([1, 3]))
        );
    }
}
