//! Cache-friendly open-addressing hash tables over [`KeyVector`] codes.
//!
//! The complement of [`key_vector`](crate::key_vector): once a batch's keys
//! are dense `u64` codes, the kernels need tables that consume the codes
//! without re-hashing `Value`s. [`KeyTable`] is the primitive: a
//! power-of-two open-addressing table with Fibonacci (multiply-shift)
//! bucket mixing and linear probing, storing the full code in each slot as
//! a comparison tag plus a `u32` payload. A code match alone is not key
//! equality when the vectors are inexact, so every lookup takes an
//! `is_match` predicate that verifies the candidate against the source
//! batch (see [`keys_equal`](crate::key_vector::keys_equal)) — callers pass
//! the trivial predicate when both sides are
//! [`exact`](crate::KeyVector::exact).
//!
//! [`GroupIndex`] layers the ubiquitous pattern on top: assign dense group
//! ids in first-occurrence order and remember each group's representative
//! row — the shape behind grouping, deduplication, divisor-id assignment
//! and join builds.

use crate::key_vector::KeyVector;

/// Slot sentinel: no entry. Payloads must therefore be `< u32::MAX`, which
/// row indices and dense group ids always are for in-memory batches.
const EMPTY: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing (2^64 / φ, odd). Raw-`i64` codes are
/// consecutive small integers in the paper's workloads; one multiply
/// spreads them over the high bits the bucket index is taken from.
const FIB: u64 = 0x9e37_79b9_7f4a_7c15;

/// An open-addressing hash table mapping `u64` key codes to `u32` payloads.
///
/// Linear probing over a power-of-two slot array at ≤ 7/8 load. Stored
/// codes act as tags: a probe compares the slot's code first and only calls
/// the caller's `is_match` predicate on tag equality, so verification work
/// is proportional to real matches (plus astronomically rare collisions),
/// not probe length.
#[derive(Debug, Clone)]
pub struct KeyTable {
    codes: Vec<u64>,
    payloads: Vec<u32>,
    mask: usize,
    shift: u32,
    len: usize,
    limit: usize,
}

impl KeyTable {
    /// A table pre-sized for `expected` entries (no rehash below that).
    pub fn with_capacity(expected: usize) -> KeyTable {
        let capacity = (expected.saturating_mul(8) / 7 + 1)
            .next_power_of_two()
            .max(8);
        KeyTable {
            codes: vec![0; capacity],
            payloads: vec![EMPTY; capacity],
            mask: capacity - 1,
            shift: 64 - capacity.trailing_zeros(),
            len: 0,
            limit: capacity / 8 * 7,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, code: u64) -> usize {
        (code.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// The payload stored for `code`, verifying candidates with `is_match`
    /// (called with the candidate's payload).
    #[inline]
    pub fn get(&self, code: u64, mut is_match: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut idx = self.bucket(code);
        loop {
            let payload = self.payloads[idx];
            if payload == EMPTY {
                return None;
            }
            if self.codes[idx] == code && is_match(payload) {
                return Some(payload);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Find the entry for `code` (verified by `is_match`) or insert
    /// `new_payload`. Returns the resident payload and whether it was newly
    /// inserted.
    #[inline]
    pub fn get_or_insert(
        &mut self,
        code: u64,
        new_payload: u32,
        mut is_match: impl FnMut(u32) -> bool,
    ) -> (u32, bool) {
        // A payload equal to the sentinel would make the slot read as empty
        // — corrupt silently in release builds — so refuse it outright (one
        // register compare; the batch layer caps rows well below this).
        assert_ne!(new_payload, EMPTY, "payload space excludes the sentinel");
        let mut idx = self.bucket(code);
        loop {
            let payload = self.payloads[idx];
            if payload == EMPTY {
                self.codes[idx] = code;
                self.payloads[idx] = new_payload;
                self.len += 1;
                if self.len > self.limit {
                    self.grow();
                }
                return (new_payload, true);
            }
            if self.codes[idx] == code && is_match(payload) {
                return (payload, false);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Double the slot array and re-place every entry. Entries are already
    /// pairwise-distinct keys, so re-placement needs no verification.
    #[cold]
    fn grow(&mut self) {
        let capacity = (self.mask + 1) * 2;
        let mut codes = vec![0u64; capacity];
        let mut payloads = vec![EMPTY; capacity];
        let mask = capacity - 1;
        let shift = 64 - capacity.trailing_zeros();
        for slot in 0..self.codes.len() {
            let payload = self.payloads[slot];
            if payload == EMPTY {
                continue;
            }
            let code = self.codes[slot];
            let mut idx = (code.wrapping_mul(FIB) >> shift) as usize;
            while payloads[idx] != EMPTY {
                idx = (idx + 1) & mask;
            }
            codes[idx] = code;
            payloads[idx] = payload;
        }
        self.codes = codes;
        self.payloads = payloads;
        self.mask = mask;
        self.shift = shift;
        self.limit = capacity / 8 * 7;
    }
}

/// Dense group ids in first-occurrence order, with one representative row
/// per group — the shared shape of grouping, deduplication and hash-build
/// phases.
#[derive(Debug, Clone)]
pub struct GroupIndex {
    table: KeyTable,
    first_row: Vec<u32>,
}

impl GroupIndex {
    /// An index pre-sized for `expected` distinct keys.
    pub fn with_capacity(expected: usize) -> GroupIndex {
        GroupIndex {
            table: KeyTable::with_capacity(expected),
            first_row: Vec::with_capacity(expected),
        }
    }

    /// Number of distinct groups seen so far.
    pub fn len(&self) -> usize {
        self.first_row.len()
    }

    /// `true` when no group has been interned.
    pub fn is_empty(&self) -> bool {
        self.first_row.is_empty()
    }

    /// The representative (first-seen) row of group `gid`.
    #[inline]
    pub fn first_row(&self, gid: u32) -> usize {
        self.first_row[gid as usize] as usize
    }

    /// Representative rows of all groups, in group-id order.
    pub fn first_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.first_row.iter().map(|&r| r as usize)
    }

    /// Intern `row`'s key: return its group id, assigning the next dense id
    /// on first sight. `same_key` verifies a candidate group by comparing
    /// `row` against the group's representative row (pass `|_| true` when
    /// the key vector is exact).
    #[inline]
    pub fn intern(
        &mut self,
        code: u64,
        row: usize,
        mut same_key: impl FnMut(usize) -> bool,
    ) -> (u32, bool) {
        // Row indices are stored as u32; a silent `as` wrap on a ≥ 2^32-row
        // batch would point representatives at the wrong rows. Fail loudly
        // instead (release builds included).
        let row = u32::try_from(row).expect("key pipeline batches are limited to u32::MAX rows");
        let next = self.first_row.len() as u32;
        let first_row = &self.first_row;
        let (gid, is_new) = self
            .table
            .get_or_insert(code, next, |gid| same_key(first_row[gid as usize] as usize));
        if is_new {
            self.first_row.push(row);
        }
        (gid, is_new)
    }

    /// The group id of a (possibly foreign) key with this `code`, verifying
    /// candidates via `same_key` against the group's representative row.
    #[inline]
    pub fn get(&self, code: u64, mut same_key: impl FnMut(usize) -> bool) -> Option<u32> {
        self.table
            .get(code, |gid| same_key(self.first_row[gid as usize] as usize))
    }
}

/// A set of `(u32, u32)` id pairs packed into injective `u64` codes — the
/// allocation-free replacement for the `HashSet<(u32, u32)>` /
/// `HashMap<(u32, u32), _>` bookkeeping of the counting great divide.
/// Pair codes are injective, so membership needs no verification.
#[derive(Debug, Clone)]
pub struct PairTable {
    table: KeyTable,
}

/// Pack an id pair into its injective `u64` code.
#[inline]
fn pair_code(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

impl PairTable {
    /// A pair table pre-sized for `expected` pairs.
    pub fn with_capacity(expected: usize) -> PairTable {
        PairTable {
            table: KeyTable::with_capacity(expected),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Insert the pair; `true` when it was not present before.
    #[inline]
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        self.table.get_or_insert(pair_code(a, b), 0, |_| true).1
    }

    /// Map the pair to a dense slot id (first-occurrence order), for use as
    /// an index into caller-side per-pair state. Returns `(slot, is_new)`.
    #[inline]
    pub fn intern(&mut self, a: u32, b: u32) -> (u32, bool) {
        let next = self.table.len() as u32;
        self.table.get_or_insert(pair_code(a, b), next, |_| true)
    }
}

/// Mix a key code into a well-distributed hash (splitmix64 finalizer).
/// Used by partition routing, where raw-`i64` codes would otherwise land
/// consecutive keys in consecutive buckets.
#[inline]
pub fn mix(code: u64) -> u64 {
    let mut z = code;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Route a mixed hash to one of `buckets` via multiply-based fast reduction
/// (Lemire): unbiased in the bucket count without a modulo.
#[inline]
pub fn fast_range(hash: u64, buckets: usize) -> usize {
    ((u128::from(hash) * buckets as u128) >> 64) as usize
}

/// The intern loop shared by [`index_rows`] and [`index_rows_tracked`]:
/// one pass over the key vector, verifying inexact matches against `batch`
/// over `key_columns`, reporting each row's group id to `on_row`.
fn index_rows_inner(
    batch: &crate::ColumnarBatch,
    key_columns: &[usize],
    keys: &KeyVector,
    mut on_row: impl FnMut(u32),
) -> GroupIndex {
    let rows = keys.len();
    let same_key =
        crate::key_vector::cross_matcher(batch, key_columns, keys, batch, key_columns, keys);
    let mut index = GroupIndex::with_capacity(rows);
    for row in 0..rows {
        let (gid, _) = index.intern(keys.code(row), row, |other| same_key(row, other));
        on_row(gid);
    }
    index
}

/// Build a [`GroupIndex`] over every row of a key vector, verifying inexact
/// matches against `batch` over `key_columns` — the common build phase of
/// the hash kernels, factored once.
pub fn index_rows(
    batch: &crate::ColumnarBatch,
    key_columns: &[usize],
    keys: &KeyVector,
) -> GroupIndex {
    index_rows_inner(batch, key_columns, keys, |_| {})
}

/// [`index_rows`], additionally returning each row's group id (in row
/// order) — the build shape the natural join's CSR row lists need.
pub fn index_rows_tracked(
    batch: &crate::ColumnarBatch,
    key_columns: &[usize],
    keys: &KeyVector,
) -> (GroupIndex, Vec<u32>) {
    let mut gid_of = Vec::with_capacity(keys.len());
    let index = index_rows_inner(batch, key_columns, keys, |gid| gid_of.push(gid));
    (index, gid_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_vector::KeyVector;
    use crate::ColumnarBatch;
    use div_algebra::relation;

    #[test]
    fn get_or_insert_finds_and_inserts() {
        let mut table = KeyTable::with_capacity(4);
        assert_eq!(table.get_or_insert(10, 0, |_| true), (0, true));
        assert_eq!(table.get_or_insert(10, 1, |_| true), (0, false));
        assert_eq!(table.get_or_insert(11, 1, |_| true), (1, true));
        assert_eq!(table.get(10, |_| true), Some(0));
        assert_eq!(table.get(12, |_| true), None);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn colliding_codes_are_separated_by_the_match_predicate() {
        // Two distinct keys with the SAME code must coexist: the predicate
        // distinguishes them (this is the stored-hash-tag + verify design).
        let mut table = KeyTable::with_capacity(4);
        let keys = ["left", "right"];
        let is = |want: usize| move |payload: u32| keys[payload as usize] == keys[want];
        assert_eq!(table.get_or_insert(42, 0, is(0)), (0, true));
        assert_eq!(table.get_or_insert(42, 1, is(1)), (1, true), "collision");
        assert_eq!(table.get(42, is(0)), Some(0));
        assert_eq!(table.get(42, is(1)), Some(1));
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut table = KeyTable::with_capacity(0);
        for i in 0..10_000u32 {
            // Adversarial codes: multiples of a power of two stress the
            // multiply-shift bucketing.
            table.get_or_insert(u64::from(i) << 16, i, |_| true);
        }
        assert_eq!(table.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(table.get(u64::from(i) << 16, |_| true), Some(i));
        }
    }

    #[test]
    fn group_index_assigns_first_occurrence_ids() {
        let batch = ColumnarBatch::from_relation(&relation! {
            ["a", "b"] => [1, 1], [2, 1], [1, 2], [3, 1], [2, 2]
        });
        // Relation order is sorted: rows are (1,1),(1,2),(2,1),(2,2),(3,1).
        let keys = KeyVector::build(&batch, &[0]);
        let index = index_rows(&batch, &[0], &keys);
        assert_eq!(index.len(), 3);
        assert_eq!(index.first_row(0), 0);
        assert_eq!(index.first_row(1), 2);
        assert_eq!(index.first_row(2), 4);
        assert_eq!(index.get(keys.code(1), |_| true), Some(0));
    }

    #[test]
    fn pair_table_dedups_and_interns() {
        let mut pairs = PairTable::with_capacity(2);
        assert!(pairs.insert(1, 2));
        assert!(!pairs.insert(1, 2));
        assert!(pairs.insert(2, 1), "order matters");
        let mut interned = PairTable::with_capacity(2);
        assert_eq!(interned.intern(7, 7), (0, true));
        assert_eq!(interned.intern(7, 8), (1, true));
        assert_eq!(interned.intern(7, 7), (0, false));
    }

    #[test]
    fn fast_range_covers_all_buckets_roughly_evenly() {
        let buckets = 7;
        let mut counts = vec![0usize; buckets];
        for i in 0..7_000u64 {
            counts[fast_range(mix(i), buckets)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "counts: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 7_000);
    }
}
