//! Hash partitioning of columnar batches for partition-parallel execution.
//!
//! The paper attaches explicit parallelization strategies to two laws:
//!
//! * **Law 2 + condition `c2`** (Section 5.1.1): hash-partition the dividend
//!   on the quotient attributes `A`; the partitions' quotient prefixes are
//!   disjoint by construction, so each partition can be divided
//!   independently and the partial quotients unioned.
//! * **Law 13** (Section 5.2.1): hash-partition the divisor on the group
//!   attributes `C`; each node runs the great divide of the (shared)
//!   dividend against its divisor slice.
//!
//! [`hash_partition`] is the batch-level primitive both strategies share:
//! the key columns are normalized **once per batch** into a
//! [`KeyVector`] (no per-row hasher construction, no
//! per-row key materialization) and each code is routed with a
//! splitmix-mixed multiply-based fast reduction (no modulo bias), so rows
//! agreeing on the key always land in the same bucket (the disjointness
//! the laws require) regardless of the batch's column encodings.
//! [`hash_partition_keyed`] additionally returns each partition's gathered
//! key vector, so the per-partition kernels (via their `_prehashed` entry
//! points) reuse the partition-time hashes instead of hashing every row a
//! second time. [`split_even`] is the key-free variant used to parallelize
//! kernels without a partitioning key (e.g. filters), where any row
//! distribution is correct.

use crate::batch::ColumnarBatch;
use crate::hash_table::{fast_range, mix};
use crate::key_vector::KeyVector;

/// Hash-partition `batch` into `partitions` buckets on the given key
/// columns. Every output batch keeps the full schema; rows with equal keys
/// land in the same bucket, and every input row lands in exactly one bucket.
///
/// `partitions` is clamped to at least 1. With an empty `key_columns` list
/// every row hashes identically, so all rows land in one bucket — the
/// degenerate but correct behavior for key-less operators.
///
/// ```
/// use div_algebra::relation;
/// use div_columnar::{partition::hash_partition, ColumnarBatch};
///
/// let batch = ColumnarBatch::from_relation(&relation! {
///     ["a", "b"] => [1, 10], [1, 20], [2, 10], [3, 30]
/// });
/// let parts = hash_partition(&batch, &[0], 2);
/// // A partition: every row lands in exactly one bucket...
/// assert_eq!(parts.iter().map(ColumnarBatch::num_rows).sum::<usize>(), 4);
/// // ...and rows agreeing on the key (here a = 1) share a bucket.
/// assert!(parts.iter().any(|p| p.num_rows() >= 2));
/// ```
pub fn hash_partition(
    batch: &ColumnarBatch,
    key_columns: &[usize],
    partitions: usize,
) -> Vec<ColumnarBatch> {
    hash_partition_keyed(batch, key_columns, partitions)
        .into_iter()
        .map(|(part, _)| part)
        .collect()
}

/// [`hash_partition`], additionally returning each partition's key vector
/// (the partition-time row hashes gathered alongside the rows), so
/// downstream kernels can consume the codes via their `_prehashed` entry
/// points instead of re-normalizing every partition.
pub fn hash_partition_keyed(
    batch: &ColumnarBatch,
    key_columns: &[usize],
    partitions: usize,
) -> Vec<(ColumnarBatch, KeyVector)> {
    hash_partition_seeded(batch, key_columns, partitions, 0)
}

/// [`hash_partition_keyed`] with a routing seed folded into every key code
/// before mixing. Seed `0` is byte-identical to [`hash_partition_keyed`].
///
/// The seed exists for *recursive* partitioning (Graefe-style hybrid hash
/// spilling): all rows of one level-`n` partition share a routing hash by
/// construction, so re-partitioning them with the same function would put
/// everything back into a single bucket. Deriving a fresh seed per
/// recursion level re-randomizes the routing while preserving the key
/// disjointness guarantee (equal keys still land together, at every level).
pub fn hash_partition_seeded(
    batch: &ColumnarBatch,
    key_columns: &[usize],
    partitions: usize,
    seed: u64,
) -> Vec<(ColumnarBatch, KeyVector)> {
    let partitions = partitions.max(1);
    let keys = KeyVector::build(batch, key_columns);
    if partitions == 1 {
        return vec![(batch.clone(), keys)];
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for row in 0..batch.num_rows() {
        buckets[fast_range(mix(keys.code(row) ^ seed), partitions)].push(row);
    }
    buckets
        .into_iter()
        .map(|rows| (batch.gather(&rows), keys.gather(&rows)))
        .collect()
}

/// Split `batch` into `partitions` contiguous, near-equal row ranges.
///
/// Unlike [`hash_partition`] no key is consulted; use this for operators
/// (like filters) that are correct under any row distribution.
pub fn split_even(batch: &ColumnarBatch, partitions: usize) -> Vec<ColumnarBatch> {
    let partitions = partitions.max(1);
    if partitions == 1 {
        return vec![batch.clone()];
    }
    let rows = batch.num_rows();
    let chunk = rows.div_ceil(partitions).max(1);
    (0..partitions)
        .map(|p| {
            let start = (p * chunk).min(rows);
            let end = ((p + 1) * chunk).min(rows);
            let indices: Vec<usize> = (start..end).collect();
            batch.gather(&indices)
        })
        .collect()
}

/// Concatenate partition results back into one batch, in partition order.
///
/// All batches must share the first batch's schema (they do by construction
/// when they came out of [`hash_partition`] / [`split_even`] followed by a
/// schema-preserving kernel). Returns `None` for an empty slice, since there
/// is no schema to make an empty batch from.
///
/// # Panics
///
/// Panics when the batches disagree on the schema — silently gluing
/// differently-shaped columns would mislabel data.
pub fn concat_batches(batches: &[ColumnarBatch]) -> Option<ColumnarBatch> {
    let (first, rest) = batches.split_first()?;
    let mut columns = first.columns().to_vec();
    let mut rows = first.num_rows();
    for batch in rest {
        assert_eq!(batch.schema(), first.schema(), "partition schema drift");
        for (acc, col) in columns.iter_mut().zip(batch.columns()) {
            *acc = acc.concat(col);
        }
        rows += batch.num_rows();
    }
    Some(ColumnarBatch::from_parts(
        first.schema().clone(),
        columns,
        rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn sample() -> ColumnarBatch {
        let mut rows = Vec::new();
        for a in 0..20i64 {
            for b in 0..3i64 {
                rows.push(vec![a, b]);
            }
        }
        ColumnarBatch::from_relation(&div_algebra::Relation::from_rows(["a", "b"], rows).unwrap())
    }

    #[test]
    fn hash_partition_is_a_partition_with_disjoint_keys() {
        let batch = sample();
        let parts = hash_partition(&batch, &[0], 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(ColumnarBatch::num_rows).sum();
        assert_eq!(total, batch.num_rows());
        // Key disjointness (the laws' precondition): the same `a` value never
        // appears in two different partitions.
        let key_sets: Vec<std::collections::HashSet<crate::RowKey>> = parts
            .iter()
            .map(|p| (0..p.num_rows()).map(|r| p.key_at(r, &[0])).collect())
            .collect();
        for i in 0..key_sets.len() {
            for j in (i + 1)..key_sets.len() {
                assert!(key_sets[i].is_disjoint(&key_sets[j]));
            }
        }
    }

    #[test]
    fn single_partition_is_the_identity() {
        let batch = sample();
        let parts = hash_partition(&batch, &[0], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], batch);
        assert_eq!(split_even(&batch, 1)[0], batch);
    }

    #[test]
    fn split_even_covers_all_rows_in_order() {
        let batch = sample();
        for partitions in [2, 3, 7, 100] {
            let parts = split_even(&batch, partitions);
            assert_eq!(parts.len(), partitions);
            let glued = concat_batches(&parts).unwrap();
            assert_eq!(glued, batch, "partitions = {partitions}");
        }
    }

    #[test]
    fn concat_batches_restores_hash_partitions_as_a_set() {
        let batch = sample();
        let parts = hash_partition(&batch, &[0, 1], 3);
        let glued = concat_batches(&parts).unwrap();
        assert_eq!(glued.num_rows(), batch.num_rows());
        assert_eq!(
            glued.to_relation().unwrap(),
            batch.to_relation().unwrap(),
            "hash partitioning permutes rows but never loses or invents any"
        );
        assert!(concat_batches(&[]).is_none());
    }

    #[test]
    fn keyed_partitioning_carries_the_partition_time_hashes() {
        let batch = sample();
        for partitions in [1, 3] {
            for (part, keys) in hash_partition_keyed(&batch, &[0], partitions) {
                // The gathered key vector is exactly what a per-partition
                // rebuild would produce — reuse loses nothing.
                let rebuilt = crate::key_vector::KeyVector::build(&part, &[0]);
                assert_eq!(keys.codes(), rebuilt.codes());
                assert_eq!(keys.exact(), rebuilt.exact());
            }
        }
    }

    #[test]
    fn empty_key_routes_everything_to_one_bucket() {
        let batch = sample();
        let parts = hash_partition(&batch, &[], 4);
        let occupied: Vec<usize> = parts
            .iter()
            .map(ColumnarBatch::num_rows)
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(occupied, vec![batch.num_rows()]);
    }

    #[test]
    fn empty_batch_partitions_are_empty() {
        let empty = ColumnarBatch::empty(div_algebra::Schema::of(["a", "b"]));
        let parts = hash_partition(&empty, &[0], 3);
        assert!(parts.iter().all(|p| p.num_rows() == 0));
        let relation = relation! { ["a", "b"] => [1, 1] };
        let one = ColumnarBatch::from_relation(&relation);
        let parts = split_even(&one, 5);
        assert_eq!(parts.iter().map(ColumnarBatch::num_rows).sum::<usize>(), 1);
    }
}
