//! Incremental (cross-batch) grouping state for streaming operators.
//!
//! The batch kernels of [`kernels`](crate::kernels) assume they see an
//! operator's whole input as one [`ColumnarBatch`]; a streaming executor
//! feeds them *chunks* instead. Grouping-shaped state (distinct filters, the
//! divide's quotient groups) must then survive across chunks — which the
//! per-batch [`GroupIndex`](crate::GroupIndex) cannot do, because its
//! verify-on-collision step compares candidate rows against *the batch that
//! interned them*, and that batch is gone by the next chunk.
//!
//! [`GroupStore`] is the cross-batch counterpart: it interns one chunk at a
//! time, *retains the key columns of every group representative* in
//! append-only segments, and verifies inexact code matches against those
//! retained rows. Memory is proportional to the number of distinct groups —
//! the floor any grouping operator has to pay — never to the stream length.
//!
//! [`StreamingDistinct`] layers set-semantics deduplication on top: feed it
//! chunks, get back the rows never seen before. It is the state behind the
//! streaming projection and union operators of `div_physical::stream`.

use crate::batch::ColumnarBatch;
use crate::column::Column;
use crate::hash_table::KeyTable;
use crate::key_vector::{keys_equal, KeyVector};
use div_algebra::Schema;

/// Per-chunk interning result of [`GroupStore::intern_chunk`].
#[derive(Debug, Clone)]
pub struct ChunkInterned {
    /// Group id of every chunk row, in row order. Ids are dense and global
    /// across all chunks interned so far, in first-occurrence order.
    pub gids: Vec<u32>,
    /// `fresh[i]` is `true` when row `i` introduced a new group (it is the
    /// globally first occurrence of its key).
    pub fresh: Vec<bool>,
}

/// An incremental group index over a stream of batch chunks.
///
/// The cross-batch analogue of [`GroupIndex`](crate::GroupIndex): assigns
/// dense group ids in first-occurrence order and retains each group's key
/// columns so later chunks can verify inexact code matches against them.
///
/// ```
/// use div_algebra::{relation, Schema};
/// use div_columnar::{ColumnarBatch, GroupStore};
///
/// let mut store = GroupStore::new(Schema::of(["color"]), vec![0]);
/// let a = ColumnarBatch::from_relation(&relation! { ["color"] => ["blue"], ["red"] });
/// let b = ColumnarBatch::from_relation(&relation! { ["color"] => ["green"], ["red"] });
/// let first = store.intern_chunk(&a);
/// let second = store.intern_chunk(&b);
/// assert_eq!(first.fresh, vec![true, true]);
/// assert_eq!(second.fresh, vec![true, false]); // "red" was seen in chunk `a`
/// assert_eq!(store.len(), 3);
/// ```
#[derive(Debug)]
pub struct GroupStore {
    key_schema: Schema,
    key_cols: Vec<usize>,
    store_cols: Vec<usize>,
    /// Retained group representatives (key columns only), appended one
    /// segment per chunk that introduced groups; `seg_starts[i]` is the
    /// first global gid of segment `i`.
    segments: Vec<ColumnarBatch>,
    seg_starts: Vec<u32>,
    table: KeyTable,
    groups: u32,
    store_exact: bool,
}

impl GroupStore {
    /// A store grouping chunks on `key_cols` (positions in the chunk
    /// schema); `key_schema` names those columns, in the same order, and
    /// becomes the schema of [`GroupStore::rows`].
    pub fn new(key_schema: Schema, key_cols: Vec<usize>) -> GroupStore {
        assert_eq!(
            key_schema.arity(),
            key_cols.len(),
            "key schema/column arity mismatch"
        );
        let store_cols = (0..key_cols.len()).collect();
        GroupStore {
            key_schema,
            key_cols,
            store_cols,
            segments: Vec::new(),
            seg_starts: Vec::new(),
            table: KeyTable::with_capacity(0),
            groups: 0,
            store_exact: true,
        }
    }

    /// Number of distinct groups interned so far.
    pub fn len(&self) -> usize {
        self.groups as usize
    }

    /// `true` when no group has been interned.
    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }

    /// Locate the retained representative of `gid`.
    fn locate(&self, gid: u32) -> (&ColumnarBatch, usize) {
        let seg = self.seg_starts.partition_point(|&start| start <= gid) - 1;
        (&self.segments[seg], (gid - self.seg_starts[seg]) as usize)
    }

    /// Intern every row of `chunk`, assigning global group ids and
    /// retaining the key columns of newly seen groups.
    pub fn intern_chunk(&mut self, chunk: &ColumnarBatch) -> ChunkInterned {
        let rows = chunk.num_rows();
        let keys = KeyVector::build(chunk, &self.key_cols);
        let verify = !(keys.exact() && self.store_exact);
        let base = self.groups;
        let mut pending: Vec<usize> = Vec::new();
        let mut gids = Vec::with_capacity(rows);
        let mut fresh = Vec::with_capacity(rows);
        for row in 0..rows {
            let next = base + pending.len() as u32;
            // Disjoint field borrows: the verification closure reads the
            // retained segments while the table is borrowed mutably.
            let segments = &self.segments;
            let seg_starts = &self.seg_starts;
            let key_cols = &self.key_cols;
            let store_cols = &self.store_cols;
            let pending_rows = &pending;
            let (gid, is_new) = self.table.get_or_insert(keys.code(row), next, |gid| {
                if !verify {
                    return true;
                }
                if gid >= base {
                    let other = pending_rows[(gid - base) as usize];
                    return keys_equal(chunk, key_cols, row, chunk, key_cols, other);
                }
                let seg = seg_starts.partition_point(|&start| start <= gid) - 1;
                let local = (gid - seg_starts[seg]) as usize;
                keys_equal(chunk, key_cols, row, &segments[seg], store_cols, local)
            });
            if is_new {
                pending.push(row);
            }
            gids.push(gid);
            fresh.push(is_new);
        }
        if !pending.is_empty() {
            let columns: Vec<Column> = self
                .key_cols
                .iter()
                .map(|&c| chunk.column(c).gather(&pending))
                .collect();
            self.segments.push(ColumnarBatch::from_parts(
                self.key_schema.clone(),
                columns,
                pending.len(),
            ));
            self.seg_starts.push(base);
            self.groups = base + pending.len() as u32;
            self.store_exact = self.store_exact && keys.exact();
        }
        ChunkInterned { gids, fresh }
    }

    /// The group id previously assigned to row `row` of `chunk` (keyed on
    /// this store's key columns), if its key has been interned.
    pub fn get(&self, chunk: &ColumnarBatch, row: usize) -> Option<u32> {
        let keys = KeyVector::build(chunk, &self.key_cols);
        let verify = !(keys.exact() && self.store_exact);
        self.table.get(keys.code(row), |gid| {
            if !verify {
                return true;
            }
            let (segment, local) = self.locate(gid);
            keys_equal(chunk, &self.key_cols, row, segment, &self.store_cols, local)
        })
    }

    /// All group representatives (key columns only), one row per group in
    /// group-id order, under the store's key schema.
    pub fn rows(&self) -> ColumnarBatch {
        crate::partition::concat_batches(&self.segments)
            .unwrap_or_else(|| ColumnarBatch::empty(self.key_schema.clone()))
    }
}

/// Streaming set-semantics deduplication over whole rows.
///
/// Feed chunks with [`StreamingDistinct::push`]; each call returns the rows
/// whose full-row key has never been seen in any earlier chunk (or earlier
/// in the same chunk), preserving their order. The retained state is one
/// copy of every distinct row — the inherent cost of `DISTINCT` — never the
/// stream length.
#[derive(Debug)]
pub struct StreamingDistinct {
    store: GroupStore,
}

impl StreamingDistinct {
    /// A distinct filter for chunks of the given schema.
    pub fn new(schema: Schema) -> StreamingDistinct {
        let key_cols = (0..schema.arity()).collect();
        StreamingDistinct {
            store: GroupStore::new(schema, key_cols),
        }
    }

    /// The rows of `chunk` not seen before, in chunk order.
    pub fn push(&mut self, chunk: &ColumnarBatch) -> ColumnarBatch {
        let interned = self.store.intern_chunk(chunk);
        if interned.fresh.iter().all(|&f| f) {
            return chunk.clone();
        }
        chunk.select_by_mask(&interned.fresh)
    }

    /// Number of distinct rows retained so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when no row has been retained.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation};

    fn chunk(rel: &Relation) -> ColumnarBatch {
        ColumnarBatch::from_relation(rel)
    }

    #[test]
    fn group_ids_are_global_across_chunks() {
        let mut store = GroupStore::new(Schema::of(["a"]), vec![0]);
        let first = store.intern_chunk(&chunk(&relation! { ["a", "b"] => [1, 1], [2, 1] }));
        assert_eq!(first.gids, vec![0, 1]);
        let second = store.intern_chunk(&chunk(&relation! { ["a", "b"] => [2, 2], [3, 1] }));
        assert_eq!(second.gids, vec![1, 2]);
        assert_eq!(second.fresh, vec![false, true]);
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.rows().to_relation().unwrap(),
            relation! { ["a"] => [1], [2], [3] }
        );
    }

    #[test]
    fn string_keys_verify_against_retained_segments() {
        // Dictionary-encoded keys are inexact: matches across chunks must be
        // verified against the retained representatives, and chunks with
        // disjoint dictionaries must still compare by value.
        let mut store = GroupStore::new(Schema::of(["who"]), vec![0]);
        store.intern_chunk(&chunk(
            &relation! { ["who", "v"] => ["ann", 1], ["bob", 2] },
        ));
        let second =
            store.intern_chunk(&chunk(&relation! { ["who", "v"] => ["ann", 3], ["cy", 4] }));
        assert_eq!(second.fresh, vec![false, true]);
        assert_eq!(store.len(), 3);
        let lookup_chunk = chunk(&relation! { ["who", "v"] => ["bob", 9] });
        assert_eq!(store.get(&lookup_chunk, 0), Some(1));
        let missing = chunk(&relation! { ["who", "v"] => ["dee", 9] });
        assert_eq!(store.get(&missing, 0), None);
    }

    #[test]
    fn streaming_distinct_matches_batch_dedup() {
        let full = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1], [2, 2], [3, 3] };
        let batch = chunk(&full);
        // Feed overlapping chunks; the union of pushed outputs must be the
        // deduplicated whole, with nothing repeated.
        let mut distinct = StreamingDistinct::new(batch.schema().clone());
        let mut kept = Vec::new();
        for indices in [vec![0usize, 1, 1], vec![1, 2, 3], vec![0, 3, 4]] {
            let piece = batch.gather(&indices);
            let fresh = distinct.push(&piece);
            for i in 0..fresh.num_rows() {
                kept.push(fresh.row(i));
            }
        }
        assert_eq!(kept.len(), 5, "each distinct row exactly once");
        let rebuilt = Relation::new(batch.schema().clone(), kept).unwrap();
        assert_eq!(rebuilt, full);
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn composite_keys_group_across_chunks() {
        let mut store = GroupStore::new(Schema::of(["a", "b"]), vec![0, 1]);
        let c1 = store.intern_chunk(&chunk(&relation! { ["a", "b", "c"] => [1, 1, 9] }));
        let c2 = store.intern_chunk(&chunk(
            &relation! { ["a", "b", "c"] => [1, 1, 8], [1, 2, 7] },
        ));
        assert_eq!(c1.gids, vec![0]);
        assert_eq!(c2.gids, vec![0, 1]);
        assert_eq!(store.len(), 2);
    }
}
