//! Batch-native set intersection and difference.
//!
//! These close part of the row-fallback gap left by the first columnar
//! backend: `σ`/`π`-heavy plans produced by the paper's rewrite laws for
//! intersection and difference (Laws 5–7, Section 5.1.3/5.1.4) previously
//! forced the whole subtree back onto the row executor. Both kernels mirror
//! [`div_algebra::Relation::intersect`] / [`Relation::difference`]
//! semantics exactly: union-compatible schemas are required, the right
//! operand is conformed to the left operand's attribute order, and the
//! output is a duplicate-free set over the left schema.
//!
//! Duplicate safety: batches flowing through a kernel pipeline may
//! transiently hold duplicate rows. The right side is hashed into a set (so
//! right duplicates are harmless) and the retained left rows are
//! deduplicated before the batch is returned, so the output is a set even
//! for duplicate-bearing inputs.
//!
//! [`Relation::difference`]: div_algebra::Relation::difference

use crate::batch::ColumnarBatch;
use crate::hash_table::index_rows;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::Result;
use div_algebra::AlgebraError;

fn conform_right(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    operation: &'static str,
) -> Result<ColumnarBatch> {
    if !left.schema().is_compatible_with(right.schema()) {
        return Err(AlgebraError::SchemaMismatch {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
            operation,
        });
    }
    right.conform_to(left.schema())
}

fn membership_mask(left: &ColumnarBatch, right: &ColumnarBatch, keep_members: bool) -> Vec<bool> {
    // Whole rows are the key: normalize both sides once, hash the right
    // side into an open-addressing index, and probe with the left codes.
    let all_columns: Vec<usize> = (0..left.schema().arity()).collect();
    let right_keys = KeyVector::build(right, &all_columns);
    let left_keys = KeyVector::build(left, &all_columns);
    let index = index_rows(right, &all_columns, &right_keys);
    let same_row = cross_matcher(
        left,
        &all_columns,
        &left_keys,
        right,
        &all_columns,
        &right_keys,
    );
    (0..left.num_rows())
        .map(|i| {
            let member = index
                .get(left_keys.code(i), |other| same_row(i, other))
                .is_some();
            member == keep_members
        })
        .collect()
}

/// Set intersection `left ∩ right`, mirroring
/// [`div_algebra::Relation::intersect`] (the right operand is conformed to
/// the left operand's attribute order first).
pub fn intersect(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<ColumnarBatch> {
    let right = conform_right(left, right, "intersection")?;
    let mask = membership_mask(left, &right, true);
    Ok(left.select_by_mask(&mask).dedup())
}

/// Set difference `left − right`, mirroring
/// [`div_algebra::Relation::difference`] (the right operand is conformed to
/// the left operand's attribute order first).
pub fn difference(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<ColumnarBatch> {
    let right = conform_right(left, right, "difference")?;
    let mask = membership_mask(left, &right, false);
    Ok(left.select_by_mask(&mask).dedup())
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn inputs() -> (ColumnarBatch, ColumnarBatch) {
        (
            ColumnarBatch::from_relation(&relation! {
                ["a", "b"] => [1, 10], [2, 20], [3, 30]
            }),
            // Same attributes in swapped order: conformance is exercised.
            ColumnarBatch::from_relation(&relation! {
                ["b", "a"] => [10, 1], [40, 4]
            }),
        )
    }

    #[test]
    fn intersect_matches_reference() {
        let (l, r) = inputs();
        let expected = l
            .to_relation()
            .unwrap()
            .intersect(&r.to_relation().unwrap())
            .unwrap();
        let got = intersect(&l, &r).unwrap();
        assert_eq!(got.to_relation().unwrap(), expected);
        assert_eq!(got.schema(), l.schema());
    }

    #[test]
    fn difference_matches_reference() {
        let (l, r) = inputs();
        let expected = l
            .to_relation()
            .unwrap()
            .difference(&r.to_relation().unwrap())
            .unwrap();
        let got = difference(&l, &r).unwrap();
        assert_eq!(got.to_relation().unwrap(), expected);
    }

    #[test]
    fn duplicate_rows_do_not_leak_into_the_output() {
        let (l, r) = inputs();
        let doubled = l.gather(&[0, 0, 1, 2, 1]);
        assert_eq!(
            intersect(&doubled, &r).unwrap().to_relation().unwrap(),
            l.to_relation()
                .unwrap()
                .intersect(&r.to_relation().unwrap())
                .unwrap()
        );
        let diff = difference(&doubled, &r).unwrap();
        assert_eq!(diff.num_rows(), 2, "retained rows must be deduplicated");
    }

    #[test]
    fn incompatible_schemas_are_rejected() {
        let (l, _) = inputs();
        let bad = ColumnarBatch::from_relation(&relation! { ["x"] => [1] });
        assert!(intersect(&l, &bad).is_err());
        assert!(difference(&l, &bad).is_err());
    }
}
