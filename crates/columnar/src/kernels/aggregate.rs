//! Batch-native hash aggregation.
//!
//! Grouping backs the paper's counting-based strategies: Laws 11 and 12
//! (Section 5.1.7) rewrite the small divide through `γ`/`count`, and the
//! counting division and great-divide algorithms are aggregate formulations
//! at heart. This kernel mirrors [`div_algebra::Relation::group_aggregate`]
//! exactly, including its edge cases: aggregating an empty input yields an
//! empty result, and an empty `group_by` list produces one group covering
//! all rows (only when the input is nonempty, matching SQL `GROUP BY ()`
//! over sets).
//!
//! Duplicate safety: the reference operator aggregates a *set* of tuples, so
//! the input batch is deduplicated on full rows before grouping — transient
//! duplicate rows cannot inflate `count`/`sum` results.

use crate::batch::ColumnarBatch;
use crate::hash_table::GroupIndex;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::Result;
use div_algebra::{AggregateCall, Schema, Value};

/// Hash aggregation `γ_{group_by; aggregates}(batch)`, mirroring
/// [`div_algebra::Relation::group_aggregate`].
pub fn hash_aggregate(
    batch: &ColumnarBatch,
    group_by: &[&str],
    aggregates: &[AggregateCall],
) -> Result<ColumnarBatch> {
    let mut out_names: Vec<String> = group_by.iter().map(|s| s.to_string()).collect();
    for agg in aggregates {
        // Validate the input attribute exists even for COUNT, like the
        // reference operator.
        batch.schema().require(&agg.input)?;
        out_names.push(agg.output.clone());
    }
    let out_schema = Schema::new(out_names)?;
    if batch.num_rows() == 0 {
        return Ok(ColumnarBatch::empty(out_schema));
    }

    // Aggregate over the distinct rows: the reference operator groups a set.
    // Grouping runs on the vectorized key pipeline: normalize the key
    // columns once, intern codes into an open-addressing index.
    let batch = batch.dedup();
    let key_idx = batch.projection_indices(group_by)?;
    let keys = KeyVector::build(&batch, &key_idx);
    let same_key = cross_matcher(&batch, &key_idx, &keys, &batch, &key_idx, &keys);
    let mut index = GroupIndex::with_capacity(batch.num_rows());
    let mut members: Vec<Vec<usize>> = Vec::new();
    for row in 0..batch.num_rows() {
        let (gid, is_new) = index.intern(keys.code(row), row, |other| same_key(row, other));
        if is_new {
            members.push(Vec::new());
        }
        members[gid as usize].push(row);
    }
    let first_row: Vec<usize> = index.first_rows().collect();

    // Assemble column-wise: group keys from representative rows, aggregate
    // outputs evaluated per group with the reference aggregate functions.
    let mut columns = Vec::with_capacity(out_schema.arity());
    for &key_col in &key_idx {
        columns.push(batch.column(key_col).gather(&first_row));
    }
    for agg in aggregates {
        let input_idx = batch.schema().require(&agg.input)?;
        let mut outputs: Vec<Value> = Vec::with_capacity(members.len());
        for group in &members {
            let inputs: Vec<Value> = group
                .iter()
                .map(|&row| batch.value_at(row, input_idx))
                .collect();
            outputs.push(agg.function.eval(&inputs)?);
        }
        columns.push(crate::column::Column::from_values(outputs.iter()));
    }
    Ok(ColumnarBatch::from_parts(
        out_schema,
        columns,
        members.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn supplies() -> ColumnarBatch {
        ColumnarBatch::from_relation(&relation! {
            ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2]
        })
    }

    fn check(batch: &ColumnarBatch, group_by: &[&str], aggregates: &[AggregateCall]) {
        let expected = batch
            .to_relation()
            .unwrap()
            .group_aggregate(group_by, aggregates)
            .unwrap();
        let got = hash_aggregate(batch, group_by, aggregates).unwrap();
        assert_eq!(got.to_relation().unwrap(), expected);
    }

    #[test]
    fn count_and_sum_match_reference() {
        let batch = supplies();
        check(&batch, &["s#"], &[AggregateCall::count("p#", "n")]);
        check(
            &batch,
            &["s#"],
            &[
                AggregateCall::count("p#", "n"),
                AggregateCall::sum("p#", "total"),
            ],
        );
    }

    #[test]
    fn empty_group_by_makes_one_global_group() {
        let batch = supplies();
        check(&batch, &[], &[AggregateCall::count("s#", "n")]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty = ColumnarBatch::empty(div_algebra::Schema::of(["s#", "p#"]));
        let got = hash_aggregate(&empty, &[], &[AggregateCall::count("s#", "n")]).unwrap();
        assert_eq!(got.num_rows(), 0);
        check(&empty, &[], &[AggregateCall::count("s#", "n")]);
    }

    #[test]
    fn duplicate_rows_do_not_inflate_counts() {
        let batch = supplies();
        let doubled = batch.gather(&[0, 0, 1, 2, 3, 4, 5, 5]);
        let expected = batch
            .to_relation()
            .unwrap()
            .group_aggregate(&["s#"], &[AggregateCall::count("p#", "n")])
            .unwrap();
        let got = hash_aggregate(&doubled, &["s#"], &[AggregateCall::count("p#", "n")]).unwrap();
        assert_eq!(got.to_relation().unwrap(), expected);
    }

    #[test]
    fn unknown_attributes_are_rejected() {
        let batch = supplies();
        assert!(hash_aggregate(&batch, &["zz"], &[]).is_err());
        assert!(hash_aggregate(&batch, &[], &[AggregateCall::count("zz", "n")]).is_err());
    }
}
