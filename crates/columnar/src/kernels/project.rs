//! Columnar projection (with set-semantics duplicate elimination) and
//! renaming.

use crate::batch::ColumnarBatch;
use crate::Result;

/// Project `batch` onto `attributes` (kept in the requested order) and
/// deduplicate the surviving rows, mirroring
/// [`div_algebra::Relation::project`].
pub fn project(batch: &ColumnarBatch, attributes: &[&str]) -> Result<ColumnarBatch> {
    let schema = batch.schema().project(attributes)?;
    let indices = batch.schema().projection_indices(attributes)?;
    Ok(batch.with_columns(schema, &indices).dedup())
}

/// Rename attributes through `(from, to)` pairs; unmatched attributes keep
/// their names. A pure metadata operation: no column data moves.
pub fn rename(batch: &ColumnarBatch, renames: &[(String, String)]) -> Result<ColumnarBatch> {
    let schema = batch.schema().rename_with(|name| {
        renames
            .iter()
            .find(|(from, _)| from == name)
            .map(|(_, to)| to.clone())
            .unwrap_or_else(|| name.to_string())
    })?;
    let all: Vec<usize> = (0..batch.schema().arity()).collect();
    Ok(batch.with_columns(schema, &all))
}

/// Set union of two batches (right conformed to the left's attribute order,
/// then deduplicated), mirroring [`div_algebra::Relation::union`].
pub fn union(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<ColumnarBatch> {
    use div_algebra::AlgebraError;
    if !left.schema().is_compatible_with(right.schema()) {
        return Err(AlgebraError::SchemaMismatch {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
            operation: "union",
        });
    }
    let right = right.conform_to(left.schema())?;
    let columns: Vec<_> = left
        .columns()
        .iter()
        .zip(right.columns())
        .map(|(l, r)| l.concat(r))
        .collect();
    let rows = left.num_rows() + right.num_rows();
    Ok(ColumnarBatch::from_parts(left.schema().clone(), columns, rows).dedup())
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    #[test]
    fn project_deduplicates_like_the_algebra() {
        let rel = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] };
        let batch = ColumnarBatch::from_relation(&rel);
        let projected = project(&batch, &["a"]).unwrap();
        assert_eq!(projected.num_rows(), 2);
        assert_eq!(
            projected.to_relation().unwrap(),
            rel.project(&["a"]).unwrap()
        );
        assert!(project(&batch, &["z"]).is_err());
    }

    #[test]
    fn rename_is_metadata_only() {
        let rel = relation! { ["a", "b"] => [1, 2] };
        let batch = ColumnarBatch::from_relation(&rel);
        let renamed = rename(&batch, &[("b".to_string(), "b2".to_string())]).unwrap();
        assert_eq!(renamed.schema().names(), vec!["a", "b2"]);
        assert_eq!(
            renamed.to_relation().unwrap(),
            rel.rename_attribute("b", "b2").unwrap()
        );
    }

    #[test]
    fn union_conforms_and_deduplicates() {
        let l = relation! { ["a", "b"] => [1, 10], [2, 20] };
        let r = relation! { ["b", "a"] => [10, 1], [30, 3] };
        let got = union(
            &ColumnarBatch::from_relation(&l),
            &ColumnarBatch::from_relation(&r),
        )
        .unwrap()
        .to_relation()
        .unwrap();
        assert_eq!(got, l.union(&r).unwrap());
        let bad = relation! { ["x"] => [1] };
        assert!(union(
            &ColumnarBatch::from_relation(&l),
            &ColumnarBatch::from_relation(&bad)
        )
        .is_err());
    }
}
