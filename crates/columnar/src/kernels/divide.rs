//! Batch-native small divide (`÷`).
//!
//! The algorithm is Graefe-style hash-division expressed over column slices:
//! the divisor's `B`-tuples get dense ids, every dividend group (keyed on the
//! quotient attributes `A`) keeps a bitmap of the divisor ids it has covered,
//! and groups whose bitmap fills up are emitted. One pass over the dividend,
//! no intermediate tuples beyond the per-group bitmaps — exactly the
//! intermediate-result profile the paper demands from a special-purpose
//! operator.
//!
//! When both `B` key columns are plain non-NULL `i64` columns (every numeric
//! workload in the paper), the dividend pass runs directly over the primitive
//! slices with `HashMap<i64, _>` lookups — no `Value` is materialized at all.

use crate::batch::ColumnarBatch;
use crate::kernels::join::KernelOutput;
use crate::kernels::project;
use crate::Result;
use div_algebra::{AlgebraError, Schema};
use std::collections::HashMap;
use std::hash::Hash;

/// The `A`/`B` attribute partition of a division over batch schemas,
/// mirroring [`div_algebra::Relation::division_attributes`].
pub(crate) struct DivideLayout {
    /// Indices of `A` in the dividend schema (dividend order).
    pub dividend_a: Vec<usize>,
    /// Indices of `B` in the dividend schema (divisor attribute order).
    pub dividend_b: Vec<usize>,
    /// Indices of `B` in the divisor schema (divisor attribute order).
    pub divisor_b: Vec<usize>,
    /// Quotient attribute names `A`.
    pub quotient: Vec<String>,
}

impl DivideLayout {
    pub(crate) fn resolve(dividend: &Schema, divisor: &Schema) -> Result<Self> {
        let shared: Vec<String> = divisor.names().iter().map(|s| s.to_string()).collect();
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the divisor must have at least one attribute (B nonempty)".to_string(),
            });
        }
        for b in &shared {
            if !dividend.contains(b) {
                return Err(AlgebraError::InvalidDivision {
                    reason: format!(
                        "divisor attribute `{b}` does not occur in the dividend schema {dividend}"
                    ),
                });
            }
        }
        let quotient = dividend.difference_attributes(divisor);
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason:
                    "the dividend must have at least one attribute not in the divisor (A nonempty)"
                        .to_string(),
            });
        }
        let shared_refs: Vec<&str> = shared.iter().map(String::as_str).collect();
        let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
        Ok(DivideLayout {
            dividend_a: dividend.projection_indices(&quotient_refs)?,
            dividend_b: dividend.projection_indices(&shared_refs)?,
            divisor_b: divisor.projection_indices(&shared_refs)?,
            quotient,
        })
    }
}

/// Per-group divisor-coverage bitmap.
struct GroupState {
    first_row: usize,
    bits: Vec<u64>,
    covered: u32,
}

impl GroupState {
    fn new(first_row: usize, words: usize) -> Self {
        GroupState {
            first_row,
            bits: vec![0; words],
            covered: 0,
        }
    }

    fn set(&mut self, id: u32) {
        let word = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.covered += 1;
        }
    }
}

/// Hash-division over groups keyed by `K`: one pass over the dividend,
/// emitting the first row of every group whose bitmap covers all
/// `divisor_len` divisor ids.
fn divide_core<K: Eq + Hash>(
    rows: usize,
    divisor_len: usize,
    b_id_of: impl Fn(usize) -> Option<u32>,
    a_key_of: impl Fn(usize) -> K,
) -> Vec<usize> {
    let words = divisor_len.div_ceil(64);
    let mut groups: HashMap<K, GroupState> = HashMap::new();
    let mut order: Vec<K> = Vec::new();
    for row in 0..rows {
        let Some(id) = b_id_of(row) else { continue };
        let key = a_key_of(row);
        match groups.get_mut(&key) {
            Some(state) => state.set(id),
            None => {
                let mut state = GroupState::new(row, words);
                state.set(id);
                groups.insert(key, state);
                order.push(a_key_of(row));
            }
        }
    }
    order
        .iter()
        .filter_map(|key| {
            let state = &groups[key];
            (state.covered as usize == divisor_len).then_some(state.first_row)
        })
        .collect()
}

/// Batch-native small divide `dividend ÷ divisor`.
pub fn hash_divide(dividend: &ColumnarBatch, divisor: &ColumnarBatch) -> Result<KernelOutput> {
    let layout = DivideLayout::resolve(dividend.schema(), divisor.schema())?;
    let quotient_refs: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();

    // Empty divisor: the containment test is vacuously true, every dividend
    // group qualifies (matching the reference semantics).
    if divisor.num_rows() == 0 {
        return Ok(KernelOutput {
            batch: project::project(dividend, &quotient_refs)?,
            probes: 0,
        });
    }

    let rows = dividend.num_rows();
    let int_fast_path = match (&layout.dividend_b[..], &layout.divisor_b[..]) {
        ([db], [vb]) => {
            let d = dividend.column(*db).as_int_slice();
            let v = divisor.column(*vb).as_int_slice();
            match (d, v) {
                (Some((d_vals, None)), Some((v_vals, None))) => Some((d_vals, v_vals)),
                _ => None,
            }
        }
        _ => None,
    };

    let qualifying = if let Some((d_vals, v_vals)) = int_fast_path {
        // Primitive-slice path: divisor ids and the dividend pass both work
        // on raw `i64`s.
        let mut divisor_ids: HashMap<i64, u32> = HashMap::with_capacity(v_vals.len());
        for &v in v_vals {
            let next = divisor_ids.len() as u32;
            divisor_ids.entry(v).or_insert(next);
        }
        let divisor_len = divisor_ids.len();
        if let [a_col] = layout.dividend_a[..] {
            if let Some((a_vals, None)) = dividend.column(a_col).as_int_slice() {
                // Fully primitive: both A and B are plain i64 columns.
                divide_core(
                    rows,
                    divisor_len,
                    |row| divisor_ids.get(&d_vals[row]).copied(),
                    |row| a_vals[row],
                )
            } else {
                divide_core(
                    rows,
                    divisor_len,
                    |row| divisor_ids.get(&d_vals[row]).copied(),
                    |row| dividend.key_at(row, &layout.dividend_a),
                )
            }
        } else {
            divide_core(
                rows,
                divisor_len,
                |row| divisor_ids.get(&d_vals[row]).copied(),
                |row| dividend.key_at(row, &layout.dividend_a),
            )
        }
    } else {
        // Generic path: value-based keys (strings go through the dictionary,
        // NULLs and sets compare as values).
        let mut divisor_ids = HashMap::with_capacity(divisor.num_rows());
        for i in 0..divisor.num_rows() {
            let next = divisor_ids.len() as u32;
            divisor_ids
                .entry(divisor.key_at(i, &layout.divisor_b))
                .or_insert(next);
        }
        let divisor_len = divisor_ids.len();
        divide_core(
            rows,
            divisor_len,
            |row| {
                divisor_ids
                    .get(&dividend.key_at(row, &layout.dividend_b))
                    .copied()
            },
            |row| dividend.key_at(row, &layout.dividend_a),
        )
    };

    // Gather only the quotient columns; the B columns never need to move.
    let schema = dividend.schema().project(&quotient_refs)?;
    let columns = layout
        .dividend_a
        .iter()
        .map(|&c| dividend.column(c).gather(&qualifying))
        .collect();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(schema, columns, qualifying.len()),
        probes: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation};

    fn check(dividend: &Relation, divisor: &Relation) {
        let expected = dividend.divide(divisor).unwrap();
        let out = hash_divide(
            &ColumnarBatch::from_relation(dividend),
            &ColumnarBatch::from_relation(divisor),
        )
        .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn figure1_quotient() {
        let dividend = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let divisor = relation! { ["b"] => [1], [3] };
        check(&dividend, &divisor);
    }

    #[test]
    fn empty_inputs_match_reference() {
        let dividend = relation! { ["a", "b"] => [1, 1], [2, 2] };
        let empty_divisor = Relation::empty(div_algebra::Schema::of(["b"]));
        check(&dividend, &empty_divisor);
        let empty_dividend = Relation::empty(div_algebra::Schema::of(["a", "b"]));
        check(&empty_dividend, &relation! { ["b"] => [1] });
    }

    #[test]
    fn string_attributes_use_the_generic_path() {
        let dividend = relation! {
            ["who", "what"] =>
            ["ann", "x"], ["ann", "y"],
            ["bob", "x"],
        };
        let divisor = relation! { ["what"] => ["x"], ["y"] };
        check(&dividend, &divisor);
    }

    #[test]
    fn multi_attribute_divisor() {
        let dividend = relation! {
            ["a", "b1", "b2"] =>
            [1, 1, 1], [1, 2, 2],
            [2, 1, 1],
        };
        let divisor = relation! { ["b1", "b2"] => [1, 1], [2, 2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let bad = ColumnarBatch::from_relation(&relation! { ["z"] => [1] });
        assert!(hash_divide(&dividend, &bad).is_err());
        let all_shared = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        assert!(hash_divide(&dividend, &all_shared).is_err());
    }

    #[test]
    fn wide_divisor_exercises_multiword_bitmaps() {
        let mut dividend_rows = Vec::new();
        for g in 0..10i64 {
            for i in 0..100i64 {
                if g % 2 == 0 || i % 2 == 0 {
                    dividend_rows.push(vec![g, i]);
                }
            }
        }
        let dividend = Relation::from_rows(["a", "b"], dividend_rows).unwrap();
        let divisor = Relation::from_rows(["b"], (0..100i64).map(|i| vec![i])).unwrap();
        check(&dividend, &divisor);
    }
}
