//! Batch-native small divide (`÷`) on the vectorized key pipeline.
//!
//! The algorithm is Graefe-style hash-division expressed over column slices:
//! the divisor's `B`-tuples get dense ids, every dividend group (keyed on the
//! quotient attributes `A`) keeps a bitmap of the divisor ids it has covered,
//! and groups whose bitmap fills up are emitted. One pass over the dividend,
//! no intermediate tuples beyond the per-group bitmaps — exactly the
//! intermediate-result profile the paper demands from a special-purpose
//! operator.
//!
//! Both key sides run on [`KeyVector`] codes consumed by open-addressing
//! tables: a plain non-NULL `i64` column normalizes to raw codes (the former
//! explicit "fast path", now just the cheapest [`KeyVector::build`] case),
//! strings hash once per dictionary entry, and NULL/composite keys fold
//! through the sentinel/combine rules — with inexact matches verified
//! against the source batches, so collisions in the `u64` code space cannot
//! corrupt the quotient.

use crate::batch::ColumnarBatch;
use crate::hash_table::{index_rows, GroupIndex};
use crate::kernels::join::KernelOutput;
use crate::kernels::project;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::stream::GroupStore;
use crate::Result;
use div_algebra::{AlgebraError, Schema};

/// The `A`/`B` attribute partition of a division over batch schemas,
/// mirroring [`div_algebra::Relation::division_attributes`].
pub(crate) struct DivideLayout {
    /// Indices of `A` in the dividend schema (dividend order).
    pub dividend_a: Vec<usize>,
    /// Indices of `B` in the dividend schema (divisor attribute order).
    pub dividend_b: Vec<usize>,
    /// Indices of `B` in the divisor schema (divisor attribute order).
    pub divisor_b: Vec<usize>,
    /// Quotient attribute names `A`.
    pub quotient: Vec<String>,
}

impl DivideLayout {
    pub(crate) fn resolve(dividend: &Schema, divisor: &Schema) -> Result<Self> {
        let shared: Vec<String> = divisor.names().iter().map(|s| s.to_string()).collect();
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the divisor must have at least one attribute (B nonempty)".to_string(),
            });
        }
        for b in &shared {
            if !dividend.contains(b) {
                return Err(AlgebraError::InvalidDivision {
                    reason: format!(
                        "divisor attribute `{b}` does not occur in the dividend schema {dividend}"
                    ),
                });
            }
        }
        let quotient = dividend.difference_attributes(divisor);
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason:
                    "the dividend must have at least one attribute not in the divisor (A nonempty)"
                        .to_string(),
            });
        }
        let shared_refs: Vec<&str> = shared.iter().map(String::as_str).collect();
        let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
        Ok(DivideLayout {
            dividend_a: dividend.projection_indices(&quotient_refs)?,
            dividend_b: dividend.projection_indices(&shared_refs)?,
            divisor_b: divisor.projection_indices(&shared_refs)?,
            quotient,
        })
    }
}

/// Per-group divisor-coverage bitmap.
#[derive(Debug)]
struct GroupState {
    bits: Vec<u64>,
    covered: u32,
}

impl GroupState {
    fn new(words: usize) -> Self {
        GroupState {
            bits: vec![0; words],
            covered: 0,
        }
    }

    fn set(&mut self, id: u32) {
        let word = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.covered += 1;
        }
    }
}

/// Batch-native small divide `dividend ÷ divisor`.
pub fn hash_divide(dividend: &ColumnarBatch, divisor: &ColumnarBatch) -> Result<KernelOutput> {
    let layout = DivideLayout::resolve(dividend.schema(), divisor.schema())?;
    let a_keys = KeyVector::build(dividend, &layout.dividend_a);
    divide_core(dividend, divisor, &layout, &a_keys)
}

/// [`hash_divide`] with the dividend's quotient-attribute (`A`) key vector
/// precomputed — built over the `A` columns in
/// `sch(dividend) − sch(divisor)` order, exactly what the Law-2
/// partitioning step of `div_physical::parallel_columnar` already hashed.
pub fn hash_divide_prehashed(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    a_keys: &KeyVector,
) -> Result<KernelOutput> {
    let layout = DivideLayout::resolve(dividend.schema(), divisor.schema())?;
    divide_core(dividend, divisor, &layout, a_keys)
}

fn divide_core(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    layout: &DivideLayout,
    a_keys: &KeyVector,
) -> Result<KernelOutput> {
    let quotient_refs: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();

    // Empty divisor: the containment test is vacuously true, every dividend
    // group qualifies (matching the reference semantics).
    if divisor.num_rows() == 0 {
        return Ok(KernelOutput {
            batch: project::project(dividend, &quotient_refs)?,
            probes: 0,
        });
    }

    let rows = dividend.num_rows();

    // Dense ids for the divisor's distinct B-tuples.
    let divisor_b_keys = KeyVector::build(divisor, &layout.divisor_b);
    let b_index = index_rows(divisor, &layout.divisor_b, &divisor_b_keys);
    let divisor_len = b_index.len();
    let words = divisor_len.div_ceil(64);

    // One pass over the dividend: look up each row's B id, intern its A
    // group, set the bit.
    let dividend_b_keys = KeyVector::build(dividend, &layout.dividend_b);
    let same_b = cross_matcher(
        dividend,
        &layout.dividend_b,
        &dividend_b_keys,
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
    );
    let same_a = cross_matcher(
        dividend,
        &layout.dividend_a,
        a_keys,
        dividend,
        &layout.dividend_a,
        a_keys,
    );
    let mut a_index = GroupIndex::with_capacity(rows.min(1 << 20));
    let mut states: Vec<GroupState> = Vec::new();
    for row in 0..rows {
        let b_id = b_index.get(dividend_b_keys.code(row), |other| same_b(row, other));
        let Some(b_id) = b_id else { continue };
        let (gid, is_new) = a_index.intern(a_keys.code(row), row, |other| same_a(row, other));
        if is_new {
            states.push(GroupState::new(words));
        }
        states[gid as usize].set(b_id);
    }

    // Qualifying groups, in first-occurrence order.
    let qualifying: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, state)| state.covered as usize == divisor_len)
        .map(|(gid, _)| a_index.first_row(gid as u32))
        .collect();

    // Gather only the quotient columns; the B columns never need to move.
    let schema = dividend.schema().project(&quotient_refs)?;
    let columns = layout
        .dividend_a
        .iter()
        .map(|&c| dividend.column(c).gather(&qualifying))
        .collect();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(schema, columns, qualifying.len()),
        probes: rows,
    })
}

/// The quotient schema of `dividend ÷ divisor`, with the same validation
/// the kernel applies (`B` nonempty and contained in the dividend, `A`
/// nonempty) — lets a streaming executor infer and validate operator
/// schemas before any batch flows.
pub fn quotient_schema(dividend: &Schema, divisor: &Schema) -> Result<Schema> {
    let layout = DivideLayout::resolve(dividend, divisor)?;
    let quotient_refs: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
    dividend.project(&quotient_refs)
}

/// Small divide with a prebuilt divisor and a *streamed* dividend — the
/// streaming-friendly entry point behind `div_physical::stream`.
///
/// The divisor's distinct `B`-tuples are id-indexed once at construction;
/// [`StreamingDivide::consume`] then folds dividend chunks into per-group
/// coverage bitmaps without ever concatenating the dividend. Retained state
/// is one representative row per quotient group plus one bitmap per group —
/// the same profile as the one-shot [`hash_divide`] — so a deep pipeline can
/// feed the divide batch-at-a-time with memory bounded by the group count,
/// not the dividend size. The quotient itself is only known once the whole
/// dividend has been consumed: [`StreamingDivide::finish`] emits it, making
/// the operator's *output* (but not its input) a blocking boundary.
#[derive(Debug)]
pub struct StreamingDivide {
    divisor: ColumnarBatch,
    dividend_b: Vec<usize>,
    divisor_b: Vec<usize>,
    divisor_b_keys: KeyVector,
    b_index: GroupIndex,
    divisor_len: usize,
    words: usize,
    a_store: GroupStore,
    states: Vec<GroupState>,
}

impl StreamingDivide {
    /// Prepare a divide of chunks carrying `dividend_schema` by the fully
    /// materialized `divisor`.
    pub fn new(dividend_schema: &Schema, divisor: ColumnarBatch) -> Result<StreamingDivide> {
        let layout = DivideLayout::resolve(dividend_schema, divisor.schema())?;
        let quotient_refs: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
        let key_schema = dividend_schema.project(&quotient_refs)?;
        let divisor_b_keys = KeyVector::build(&divisor, &layout.divisor_b);
        let b_index = index_rows(&divisor, &layout.divisor_b, &divisor_b_keys);
        let divisor_len = b_index.len();
        Ok(StreamingDivide {
            divisor,
            dividend_b: layout.dividend_b,
            divisor_b: layout.divisor_b,
            divisor_b_keys,
            b_index,
            divisor_len,
            words: divisor_len.div_ceil(64),
            a_store: GroupStore::new(key_schema, layout.dividend_a),
            states: Vec::new(),
        })
    }

    /// Fold one dividend chunk into the per-group coverage state. Returns
    /// the probes performed — one per chunk row, or zero for an empty
    /// divisor, exactly matching [`hash_divide`]'s accounting (its
    /// empty-divisor projection path probes nothing).
    pub fn consume(&mut self, chunk: &ColumnarBatch) -> usize {
        let rows = chunk.num_rows();
        let interned = self.a_store.intern_chunk(chunk);
        while self.states.len() < self.a_store.len() {
            self.states.push(GroupState::new(self.words));
        }
        if self.divisor_len == 0 {
            return 0;
        }
        {
            let b_keys = KeyVector::build(chunk, &self.dividend_b);
            let same_b = cross_matcher(
                chunk,
                &self.dividend_b,
                &b_keys,
                &self.divisor,
                &self.divisor_b,
                &self.divisor_b_keys,
            );
            for row in 0..rows {
                let b_id = self
                    .b_index
                    .get(b_keys.code(row), |other| same_b(row, other));
                if let Some(b_id) = b_id {
                    self.states[interned.gids[row] as usize].set(b_id);
                }
            }
        }
        rows
    }

    /// Number of quotient-attribute groups retained so far.
    pub fn groups(&self) -> usize {
        self.a_store.len()
    }

    /// Emit the quotient: the retained representatives of every group whose
    /// bitmap covers the whole divisor. With an empty divisor the
    /// containment test is vacuously true and every group qualifies,
    /// matching the reference semantics.
    pub fn finish(self) -> ColumnarBatch {
        let qualifying: Vec<usize> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, state)| state.covered as usize == self.divisor_len)
            .map(|(gid, _)| gid)
            .collect();
        let representatives = self.a_store.rows();
        if qualifying.len() == representatives.num_rows() {
            representatives
        } else {
            representatives.gather(&qualifying)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation};

    fn check(dividend: &Relation, divisor: &Relation) {
        let expected = dividend.divide(divisor).unwrap();
        let out = hash_divide(
            &ColumnarBatch::from_relation(dividend),
            &ColumnarBatch::from_relation(divisor),
        )
        .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn figure1_quotient() {
        let dividend = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let divisor = relation! { ["b"] => [1], [3] };
        check(&dividend, &divisor);
    }

    #[test]
    fn empty_inputs_match_reference() {
        let dividend = relation! { ["a", "b"] => [1, 1], [2, 2] };
        let empty_divisor = Relation::empty(div_algebra::Schema::of(["b"]));
        check(&dividend, &empty_divisor);
        let empty_dividend = Relation::empty(div_algebra::Schema::of(["a", "b"]));
        check(&empty_dividend, &relation! { ["b"] => [1] });
    }

    #[test]
    fn string_attributes_use_the_hashed_code_path() {
        let dividend = relation! {
            ["who", "what"] =>
            ["ann", "x"], ["ann", "y"],
            ["bob", "x"],
        };
        let divisor = relation! { ["what"] => ["x"], ["y"] };
        check(&dividend, &divisor);
    }

    #[test]
    fn multi_attribute_divisor() {
        let dividend = relation! {
            ["a", "b1", "b2"] =>
            [1, 1, 1], [1, 2, 2],
            [2, 1, 1],
        };
        let divisor = relation! { ["b1", "b2"] => [1, 1], [2, 2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let bad = ColumnarBatch::from_relation(&relation! { ["z"] => [1] });
        assert!(hash_divide(&dividend, &bad).is_err());
        let all_shared = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        assert!(hash_divide(&dividend, &all_shared).is_err());
    }

    #[test]
    fn wide_divisor_exercises_multiword_bitmaps() {
        let mut dividend_rows = Vec::new();
        for g in 0..10i64 {
            for i in 0..100i64 {
                if g % 2 == 0 || i % 2 == 0 {
                    dividend_rows.push(vec![g, i]);
                }
            }
        }
        let dividend = Relation::from_rows(["a", "b"], dividend_rows).unwrap();
        let divisor = Relation::from_rows(["b"], (0..100i64).map(|i| vec![i])).unwrap();
        check(&dividend, &divisor);
    }

    #[test]
    fn streaming_divide_matches_the_one_shot_kernel() {
        let cases: Vec<(Relation, Relation)> = vec![
            (
                relation! {
                    ["a", "b"] =>
                    [1, 1], [1, 4],
                    [2, 1], [2, 2], [2, 3], [2, 4],
                    [3, 1], [3, 3], [3, 4],
                },
                relation! { ["b"] => [1], [3] },
            ),
            (
                relation! { ["who", "what"] => ["ann", "x"], ["ann", "y"], ["bob", "x"] },
                relation! { ["what"] => ["x"], ["y"] },
            ),
            // Empty divisor: quotient = all dividend groups.
            (
                relation! { ["a", "b"] => [1, 1], [2, 2] },
                Relation::empty(div_algebra::Schema::of(["b"])),
            ),
        ];
        for (dividend, divisor) in cases {
            let dividend = ColumnarBatch::from_relation(&dividend);
            let divisor = ColumnarBatch::from_relation(&divisor);
            let whole = hash_divide(&dividend, &divisor).unwrap();
            for chunk_size in [1, 2, 100] {
                let mut streaming =
                    StreamingDivide::new(dividend.schema(), divisor.clone()).unwrap();
                let mut probes = 0;
                let mut start = 0;
                while start < dividend.num_rows() {
                    let end = (start + chunk_size).min(dividend.num_rows());
                    let indices: Vec<usize> = (start..end).collect();
                    probes += streaming.consume(&dividend.gather(&indices));
                    start = end;
                }
                assert_eq!(probes, whole.probes, "probe accounting matches the kernel");
                assert_eq!(
                    streaming.finish().to_relation().unwrap(),
                    whole.batch.to_relation().unwrap(),
                    "chunk size {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn prehashed_entry_point_matches() {
        let dividend = ColumnarBatch::from_relation(&relation! {
            ["a", "b"] => [1, 1], [1, 2], [2, 1]
        });
        let divisor = ColumnarBatch::from_relation(&relation! { ["b"] => [1], [2] });
        let layout = DivideLayout::resolve(dividend.schema(), divisor.schema()).unwrap();
        let a_keys = KeyVector::build(&dividend, &layout.dividend_a);
        let plain = hash_divide(&dividend, &divisor).unwrap();
        let prehashed = hash_divide_prehashed(&dividend, &divisor, &a_keys).unwrap();
        assert_eq!(plain.batch, prehashed.batch);
        assert_eq!(plain.probes, prehashed.probes);
    }
}
