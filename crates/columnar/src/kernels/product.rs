//! Batch-native Cartesian product and nested-loop theta-join.
//!
//! The paper's product laws (Laws 8, 9, Section 5.1.5) and the theta-join
//! definition `r1 ⋈_θ r2 = σ_θ(r1 × r2)` (Appendix A) both bottom out in the
//! Cartesian product, which was the last join-family operator still running
//! on the row executor. The columnar product is assembled with two gathers —
//! every left row index repeated `|right|` times and the right indices tiled
//! `|left|` times — so no per-tuple `Value` allocation happens; the
//! theta-join then evaluates its predicate with the vectorized
//! [`filter`](crate::kernels::filter()) kernel (including its row-at-a-time
//! fallback, so error and short-circuit semantics match the reference
//! [`div_algebra::Relation::theta_join`] exactly).
//!
//! Duplicate safety: the product of duplicate-free inputs is duplicate-free
//! (distinct index pairs yield distinct concatenated rows). Inputs carrying
//! transient duplicates propagate them — like the hash-join kernels — and the
//! executor's set-semantic boundary ([`ColumnarBatch::to_relation`])
//! collapses them.

use crate::batch::ColumnarBatch;
use crate::kernels::filter;
use crate::kernels::join::KernelOutput;
use crate::Result;
use div_algebra::Predicate;

/// Cartesian product `left × right`, mirroring
/// [`div_algebra::Relation::product`].
///
/// # Errors
///
/// The operand schemas must be attribute-disjoint, as in the reference
/// algebra; otherwise a
/// [`DuplicateAttribute`](div_algebra::AlgebraError::DuplicateAttribute)
/// error is returned.
pub fn cross_product(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<ColumnarBatch> {
    cross_product_slice(left, 0..left.num_rows(), right)
}

/// Cartesian product of a *slice* of the left operand with the whole right
/// operand: `left[left_rows] × right`. The streaming executor's
/// `CrossProduct` operator serves its output in bounded slices through this
/// kernel, so governance limits (deadlines, memory budgets) trip within one
/// batch boundary instead of after the full `|left| · |right|` result has
/// been materialized. `cross_product` is the `0..left.num_rows()` case.
///
/// # Errors
///
/// Same schema-disjointness requirement as [`cross_product`]. An
/// out-of-bounds or inverted range is clamped to `left`'s row count.
pub fn cross_product_slice(
    left: &ColumnarBatch,
    left_rows: std::ops::Range<usize>,
    right: &ColumnarBatch,
) -> Result<ColumnarBatch> {
    let schema = left.schema().concat(right.schema())?;
    let start = left_rows.start.min(left.num_rows());
    let end = left_rows.end.min(left.num_rows()).max(start);
    let (l_rows, r_rows) = (end - start, right.num_rows());
    let mut left_indices = Vec::with_capacity(l_rows * r_rows);
    let mut right_indices = Vec::with_capacity(l_rows * r_rows);
    for i in start..end {
        for j in 0..r_rows {
            left_indices.push(i);
            right_indices.push(j);
        }
    }
    let mut columns = left.gather(&left_indices).columns().to_vec();
    columns.extend(right.gather(&right_indices).columns().iter().cloned());
    Ok(ColumnarBatch::from_parts(schema, columns, l_rows * r_rows))
}

/// Nested-loop theta-join `left ⋈_θ right = σ_θ(left × right)`, mirroring
/// [`div_algebra::Relation::theta_join`]. Reports one probe per considered
/// row pair (`|left| · |right|`), matching the row executor's accounting for
/// its `NestedLoopJoin` operator.
pub fn theta_join(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    predicate: &Predicate,
) -> Result<KernelOutput> {
    let product = cross_product(left, right)?;
    let batch = filter::filter(&product, predicate)?;
    Ok(KernelOutput {
        batch,
        probes: left.num_rows() * right.num_rows(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, CompareOp, Predicate};

    fn inputs() -> (ColumnarBatch, ColumnarBatch) {
        (
            ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 10], [2, 20] }),
            ColumnarBatch::from_relation(&relation! { ["c"] => [5], [15], [25] }),
        )
    }

    #[test]
    fn product_matches_reference() {
        let (l, r) = inputs();
        let expected = l
            .to_relation()
            .unwrap()
            .product(&r.to_relation().unwrap())
            .unwrap();
        let got = cross_product(&l, &r).unwrap();
        assert_eq!(got.num_rows(), 6);
        assert_eq!(got.to_relation().unwrap(), expected);
    }

    #[test]
    fn product_rejects_overlapping_schemas() {
        let (l, _) = inputs();
        let overlapping = ColumnarBatch::from_relation(&relation! { ["b", "c"] => [1, 2] });
        assert!(cross_product(&l, &overlapping).is_err());
    }

    #[test]
    fn theta_join_matches_reference() {
        let (l, r) = inputs();
        let pred = Predicate::cmp_attrs("b", CompareOp::Gt, "c");
        let expected = l
            .to_relation()
            .unwrap()
            .theta_join(&r.to_relation().unwrap(), &pred)
            .unwrap();
        let out = theta_join(&l, &r, &pred).unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
        assert_eq!(out.probes, 6);
    }

    #[test]
    fn theta_join_type_errors_match_reference() {
        let (l, r) = inputs();
        let bad = Predicate::eq_value("c", "blue");
        let reference = l
            .to_relation()
            .unwrap()
            .theta_join(&r.to_relation().unwrap(), &bad);
        assert_eq!(theta_join(&l, &r, &bad).is_err(), reference.is_err());
    }

    #[test]
    fn slices_concatenate_to_the_full_product() {
        let (l, r) = inputs();
        let full = cross_product(&l, &r).unwrap();
        let mut rows = Vec::new();
        for start in 0..l.num_rows() {
            let slice = cross_product_slice(&l, start..start + 1, &r).unwrap();
            assert_eq!(slice.num_rows(), r.num_rows());
            rows.extend(
                slice
                    .to_relation()
                    .unwrap()
                    .tuples()
                    .cloned()
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(rows.len(), full.num_rows());
        let full_rel = full.to_relation().unwrap();
        assert!(rows.iter().all(|row| full_rel.contains(row)));
    }

    #[test]
    fn slice_ranges_clamp_to_the_left_row_count() {
        let (l, r) = inputs();
        assert_eq!(cross_product_slice(&l, 0..99, &r).unwrap().num_rows(), 6);
        assert_eq!(cross_product_slice(&l, 5..99, &r).unwrap().num_rows(), 0);
    }

    #[test]
    fn empty_operands_yield_empty_products() {
        let (l, _) = inputs();
        let empty = ColumnarBatch::empty(div_algebra::Schema::of(["z"]));
        assert_eq!(cross_product(&l, &empty).unwrap().num_rows(), 0);
        assert_eq!(cross_product(&empty, &l).unwrap().num_rows(), 0);
    }
}
