//! Batch-native great divide (`÷*`) on the vectorized key pipeline.
//!
//! Counting formulation: give every distinct shared `B`-value a dense id,
//! group the divisor by its `C` attributes into id-sets, invert that into a
//! `B-id -> divisor groups` index, then stream the dividend once — each
//! dividend row bumps a counter for every divisor group its `B`-value belongs
//! to. A `(dividend group, divisor group)` pair qualifies exactly when its
//! counter reaches the divisor group's size. Work is proportional to
//! `|dividend| * avg(groups per B-value)` instead of the pairwise
//! `|A-groups| * |C-groups|` subset tests of the row algorithms.
//!
//! All grouping runs over [`KeyVector`] codes in open-addressing tables;
//! the pair-keyed bookkeeping (`(B, C)` and `(A, B)` dedup, `(A, C)`
//! counters) packs the dense ids into injective `u64` codes consumed by
//! [`PairTable`]s, so the dividend stream allocates nothing per row.

use crate::batch::ColumnarBatch;
use crate::hash_table::{GroupIndex, PairTable};
use crate::kernels::divide::hash_divide;
use crate::kernels::join::KernelOutput;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::Result;
use div_algebra::{AlgebraError, Schema};

struct GreatDivideLayout {
    dividend_a: Vec<usize>,
    dividend_b: Vec<usize>,
    divisor_b: Vec<usize>,
    divisor_c: Vec<usize>,
    quotient: Vec<String>,
    group: Vec<String>,
}

impl GreatDivideLayout {
    /// Mirror of [`div_algebra::Relation::great_division_attributes`] over
    /// batch schemas.
    fn resolve(dividend: &Schema, divisor: &Schema) -> Result<Self> {
        let shared = dividend.common_attributes(divisor);
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "dividend and divisor must share at least one attribute (B nonempty)"
                    .to_string(),
            });
        }
        let quotient = dividend.difference_attributes(divisor);
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the dividend must have at least one attribute of its own (A nonempty)"
                    .to_string(),
            });
        }
        let group = divisor.difference_attributes(dividend);
        let shared_refs: Vec<&str> = shared.iter().map(String::as_str).collect();
        let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
        let group_refs: Vec<&str> = group.iter().map(String::as_str).collect();
        Ok(GreatDivideLayout {
            dividend_a: dividend.projection_indices(&quotient_refs)?,
            dividend_b: dividend.projection_indices(&shared_refs)?,
            divisor_b: divisor.projection_indices(&shared_refs)?,
            divisor_c: divisor.projection_indices(&group_refs)?,
            quotient,
            group,
        })
    }
}

/// Batch-native great divide `dividend ÷* divisor`.
pub fn hash_great_divide(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
) -> Result<KernelOutput> {
    great_divide_core(dividend, divisor, None)
}

/// [`hash_great_divide`] with the divisor's group-attribute (`C`) key
/// vector precomputed — built over the `C` columns in
/// `sch(divisor) − sch(dividend)` order, exactly what the Law-13
/// partitioning step of `div_physical::parallel_columnar` already hashed.
pub fn hash_great_divide_prehashed(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    divisor_c_keys: &KeyVector,
) -> Result<KernelOutput> {
    great_divide_core(dividend, divisor, Some(divisor_c_keys))
}

fn great_divide_core(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    divisor_c_keys: Option<&KeyVector>,
) -> Result<KernelOutput> {
    let layout = GreatDivideLayout::resolve(dividend.schema(), divisor.schema())?;
    if layout.group.is_empty() {
        // Darwen & Date: with no group attributes `C` the operator *is* the
        // small divide (a prehashed C vector keys on zero columns and is of
        // no use to it).
        return hash_divide(dividend, divisor);
    }

    // Normalize the divisor's B and C key columns once per batch.
    let divisor_b_keys = KeyVector::build(divisor, &layout.divisor_b);
    let c_keys_built;
    let c_keys = match divisor_c_keys {
        Some(keys) => keys,
        None => {
            c_keys_built = KeyVector::build(divisor, &layout.divisor_c);
            &c_keys_built
        }
    };
    let same_divisor_b = cross_matcher(
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
    );
    let same_c = cross_matcher(
        divisor,
        &layout.divisor_c,
        c_keys,
        divisor,
        &layout.divisor_c,
        c_keys,
    );

    // Dense ids for the distinct shared `B` values and the `C` groups, plus
    // the inverted `B id -> divisor group ids` index.
    let divisor_rows = divisor.num_rows();
    let mut b_ids = GroupIndex::with_capacity(divisor_rows);
    let mut c_groups = GroupIndex::with_capacity(divisor_rows);
    let mut c_size: Vec<u32> = Vec::new();
    let mut groups_of_b: Vec<Vec<u32>> = Vec::new();
    let mut seen_divisor = PairTable::with_capacity(divisor_rows);
    for i in 0..divisor_rows {
        let (b_id, b_new) =
            b_ids.intern(divisor_b_keys.code(i), i, |other| same_divisor_b(i, other));
        if b_new {
            groups_of_b.push(Vec::new());
        }
        let (c_gid, c_new) = c_groups.intern(c_keys.code(i), i, |other| same_c(i, other));
        if c_new {
            c_size.push(0);
        }
        // Count each (B, C) combination once: batches fed through the public
        // kernel API may transiently hold duplicate rows.
        if seen_divisor.insert(b_id, c_gid) {
            c_size[c_gid as usize] += 1;
            groups_of_b[b_id as usize].push(c_gid);
        }
    }

    // Stream the dividend: assign dividend group ids on first sight and bump
    // the (dividend group, divisor group) counters.
    let rows = dividend.num_rows();
    let dividend_a_keys = KeyVector::build(dividend, &layout.dividend_a);
    let dividend_b_keys = KeyVector::build(dividend, &layout.dividend_b);
    let same_a = cross_matcher(
        dividend,
        &layout.dividend_a,
        &dividend_a_keys,
        dividend,
        &layout.dividend_a,
        &dividend_a_keys,
    );
    let same_b = cross_matcher(
        dividend,
        &layout.dividend_b,
        &dividend_b_keys,
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
    );
    let mut a_groups = GroupIndex::with_capacity(rows.min(1 << 20));
    let mut counters = PairTable::with_capacity(rows.min(1 << 20));
    let mut counter_pairs: Vec<(u32, u32)> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut seen_dividend = PairTable::with_capacity(rows.min(1 << 20));
    for row in 0..rows {
        let (a_gid, _) =
            a_groups.intern(dividend_a_keys.code(row), row, |other| same_a(row, other));
        let b_id = b_ids.get(dividend_b_keys.code(row), |other| same_b(row, other));
        if let Some(b_id) = b_id {
            // Likewise, a duplicate (A, B) dividend row must not inflate the
            // coverage counters.
            if seen_dividend.insert(a_gid, b_id) {
                for &c_gid in &groups_of_b[b_id as usize] {
                    let (slot, is_new) = counters.intern(a_gid, c_gid);
                    if is_new {
                        counter_pairs.push((a_gid, c_gid));
                        counts.push(0);
                    }
                    counts[slot as usize] += 1;
                }
            }
        }
    }

    // Qualifying pairs, in deterministic (dividend group, divisor group)
    // order.
    let mut qualifying: Vec<(u32, u32)> = counter_pairs
        .iter()
        .zip(&counts)
        .filter_map(|(&(a_gid, c_gid), &count)| {
            (count == c_size[c_gid as usize]).then_some((a_gid, c_gid))
        })
        .collect();
    qualifying.sort_unstable();

    // Assemble the output: A columns gathered from dividend group
    // representatives, C columns from divisor group representatives.
    let dividend_rows: Vec<usize> = qualifying
        .iter()
        .map(|&(a_gid, _)| a_groups.first_row(a_gid))
        .collect();
    let divisor_group_rows: Vec<usize> = qualifying
        .iter()
        .map(|&(_, c_gid)| c_groups.first_row(c_gid))
        .collect();
    let mut out_names: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
    out_names.extend(layout.group.iter().map(String::as_str));
    let out_schema = Schema::new(out_names)?;
    // Gather only the output columns (A from the dividend, C from the
    // divisor); the B columns never need to move.
    let mut columns = Vec::with_capacity(out_schema.arity());
    for &c in &layout.dividend_a {
        columns.push(dividend.column(c).gather(&dividend_rows));
    }
    for &c in &layout.divisor_c {
        columns.push(divisor.column(c).gather(&divisor_group_rows));
    }
    let out_rows = qualifying.len();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(out_schema, columns, out_rows),
        probes: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation};

    fn check(dividend: &Relation, divisor: &Relation) {
        let expected = dividend.great_divide(divisor).unwrap();
        let out = hash_great_divide(
            &ColumnarBatch::from_relation(dividend),
            &ColumnarBatch::from_relation(divisor),
        )
        .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn figure2_quotient() {
        let dividend = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let divisor = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn mining_workload_counts_mixed_size_candidates() {
        let transactions = relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 30],
            [3, 20], [3, 30],
            [4, 10], [4, 20], [4, 30], [4, 40],
        };
        let candidates = relation! {
            ["item", "itemset"] =>
            [10, 1], [30, 1],
            [20, 2], [30, 2],
            [40, 3],
        };
        check(&transactions, &candidates);
    }

    #[test]
    fn degenerate_divisor_is_the_small_divide() {
        let dividend = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] };
        let divisor = relation! { ["b"] => [1], [2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn empty_divisor_produces_empty_quotient() {
        let dividend = relation! { ["a", "b"] => [1, 1] };
        let divisor = Relation::empty(div_algebra::Schema::of(["b", "c"]));
        check(&dividend, &divisor);
    }

    #[test]
    fn duplicate_rows_do_not_inflate_coverage_counters() {
        // Batches built through the public API may hold duplicate rows; a
        // duplicated (a, b) pair must not make a group look like it covers
        // more of a divisor group than it does. Group a=1 covers only b=1,
        // so it must NOT qualify for the two-element divisor group c=9.
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let doubled_dividend = dividend.gather(&[0, 0]);
        let divisor = ColumnarBatch::from_relation(&relation! { ["b", "c"] => [1, 9], [2, 9] });
        let out = hash_great_divide(&doubled_dividend, &divisor).unwrap();
        assert_eq!(out.batch.num_rows(), 0);

        // Symmetrically, duplicated divisor rows must not inflate the group
        // size and suppress genuine quotient pairs.
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1], [1, 2] });
        let doubled_divisor = divisor.gather(&[0, 0, 1]);
        let out = hash_great_divide(&dividend, &doubled_divisor).unwrap();
        assert_eq!(
            out.batch.to_relation().unwrap(),
            relation! { ["a", "c"] => [1, 9] }
        );
    }

    #[test]
    fn disjoint_schemas_are_rejected() {
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let disjoint = ColumnarBatch::from_relation(&relation! { ["x", "y"] => [1, 1] });
        assert!(hash_great_divide(&dividend, &disjoint).is_err());
    }

    #[test]
    fn prehashed_entry_point_matches() {
        let dividend = ColumnarBatch::from_relation(&relation! {
            ["a", "b"] => [1, 1], [1, 2], [2, 1]
        });
        let divisor = ColumnarBatch::from_relation(&relation! {
            ["b", "c"] => [1, 1], [2, 1], [1, 2]
        });
        let c_cols = divisor
            .projection_indices(&["c"])
            .expect("group attribute resolves");
        let c_keys = KeyVector::build(&divisor, &c_cols);
        let plain = hash_great_divide(&dividend, &divisor).unwrap();
        let prehashed = hash_great_divide_prehashed(&dividend, &divisor, &c_keys).unwrap();
        assert_eq!(plain.batch, prehashed.batch);
        assert_eq!(plain.probes, prehashed.probes);
    }
}
